"""``run(spec)`` / ``sweep(grid)``: the unified execution entrypoints.

:func:`execute_spec` is the one place a :class:`RunSpec` turns into
engine runs — sync, async and fast specs all dispatch here, and the
legacy ``run_*_trial`` / ``sweep_*`` shims, the CLI and the sweep
scheduler's worker processes are all thin layers over it.  :func:`run`
executes a single-seed spec; :func:`sweep` fans a spec grid out over the
sharded scheduler (``workers=1`` degrades to a plain in-process loop and
stays bit-identical to any worker count).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from repro.sweep.scheduler import SweepCell, run_cells
from repro.sweep.spec import RunSpec

if False:  # import cycle guard: repro.analysis re-exports this module
    from repro.analysis.runner import RunRecord  # noqa: F401

__all__ = ["run", "sweep", "execute_spec"]

#: Dual-engine fault-layer algorithms: the registry lists the sync class,
#: the async twin is resolved here (mirrors the ``repro faults`` CLI).
_DUAL_ENGINE = ("monarchical", "reelect", "quorum_reelect")


def _object_factory(spec: RunSpec, engine: str) -> Callable[[], Any]:
    """The zero-argument algorithm factory an object engine consumes."""
    algorithm = spec.algorithm
    if not isinstance(algorithm, str):
        if callable(algorithm):
            return algorithm
        raise ValueError(
            f"RunSpec.algorithm must be a registry name or a zero-argument "
            f"factory for the {engine} engine, got {type(algorithm).__name__}"
        )
    name, params = algorithm, spec.params
    if spec.quorum and name != "quorum_reelect":
        # Quorum-safe wrapping: the named algorithm becomes the inner
        # election of the quorum_reelect wrapper; params configure the
        # wrapper (e.g. threshold=).
        from repro.adversary import (
            AsyncQuorumReElectionElection,
            QuorumReElectionElection,
        )

        cls = (
            QuorumReElectionElection if engine == "sync"
            else AsyncQuorumReElectionElection
        )
        return lambda: cls(inner=name, **params)
    if engine == "async" and name in _DUAL_ENGINE:
        from repro.adversary import AsyncQuorumReElectionElection
        from repro.faults import AsyncMonarchicalElection, AsyncReElectionElection

        cls = {
            "monarchical": AsyncMonarchicalElection,
            "reelect": AsyncReElectionElection,
            "quorum_reelect": AsyncQuorumReElectionElection,
        }[name]
        return lambda: cls(**params)
    from repro.core.registry import get_algorithm

    registry_spec = get_algorithm(name)
    if registry_spec.engine != engine and name not in _DUAL_ENGINE:
        raise ValueError(
            f"{name} runs on the {registry_spec.engine} engine "
            f"(spec resolved to {engine!r})"
        )
    return registry_spec.make(**params)


def _trace_recorder(spec: RunSpec, engine: str, recorder: Optional[Any]):
    """A JSONL recorder for ``spec.trace`` on the object engines."""
    if spec.trace is None or engine == "fast":
        return recorder, None
    if recorder is not None:
        raise ValueError("pass either RunSpec.trace or recorder=, not both")
    from repro.telemetry import JsonlRecorder, RunContext

    jsonl = JsonlRecorder(
        spec.trace,
        context=RunContext(
            algorithm=spec.algorithm_name or repr(spec.algorithm),
            n=spec.n,
            seed=spec.seeds[0],
            engine=engine,
            params=spec.params,
        ),
    )
    return jsonl, jsonl


def _execute_object(
    spec: RunSpec,
    engine: str,
    *,
    recorder: Optional[Any],
    scheduler: Optional[Any],
    keep_result: bool,
) -> List["RunRecord"]:
    from repro.analysis.runner import _async_record, _sync_record
    from repro.asyncnet.engine import AsyncNetwork
    from repro.sync.engine import SyncNetwork

    faults = spec.effective_faults()
    factory = _object_factory(spec, engine)
    trial_recorder, jsonl = _trace_recorder(spec, engine, recorder)
    records = []
    try:
        for seed in spec.seeds:
            if engine == "sync":
                net = SyncNetwork(
                    spec.n,
                    factory,
                    ids=spec.ids,
                    seed=seed,
                    awake=spec.awake,
                    max_rounds=spec.max_rounds,
                    faults=faults,
                    recorder=trial_recorder,
                )
                result = net.run()
                record = _sync_record(spec.n, seed, result, spec.params)
            else:
                net = AsyncNetwork(
                    spec.n,
                    factory,
                    ids=spec.ids,
                    seed=seed,
                    scheduler=scheduler,
                    wake_times=spec.wake_times,
                    max_events=spec.max_events,
                    faults=faults,
                    recorder=trial_recorder,
                )
                result = net.run()
                record = _async_record(spec.n, seed, result, spec.params)
            if keep_result:
                record.extra["result"] = result
            records.append(record)
    finally:
        if jsonl is not None:
            jsonl.close()
    if jsonl is not None:
        records[0].extra["trace"] = {
            "path": spec.trace,
            "events": jsonl.events_written,
        }
    return records


def _fast_profiler(spec: RunSpec) -> Optional[Any]:
    if not spec.profile:
        return None
    from repro.telemetry.profile import PhaseProfiler

    return PhaseProfiler()


def _execute_fast(
    spec: RunSpec, *, telemetry: Optional[Any], keep_result: bool
) -> List["RunRecord"]:
    from repro.analysis.runner import _fast_algorithm, _fast_record

    if spec.backend is not None:
        from repro.fastsync.xp import set_backend

        set_backend(spec.backend)
    from repro.fastsync import FastSyncNetwork

    faults = spec.effective_faults()
    fast_trace = telemetry
    if spec.trace is not None and fast_trace is None:
        from repro.telemetry import FastTelemetry

        fast_trace = FastTelemetry()
    records: List[RunRecord] = []

    def _run_single(seed: int, crashes: Optional[Any]) -> "RunRecord":
        profiler = _fast_profiler(spec)
        net = FastSyncNetwork(
            spec.n,
            ids=spec.ids,
            seed=seed,
            mode=spec.mode,
            max_rounds=spec.max_rounds,
            crashes=crashes,
            roots=spec.roots,
            faults=faults,
            quorum=spec.quorum,
            telemetry=fast_trace,
            profiler=profiler,
        )
        result = net.run(_fast_algorithm(spec.algorithm, spec.params))
        record = _fast_record(spec.n, seed, result, spec.params)
        if profiler is not None:
            record.extra["profile"] = profiler.as_dict()
        if keep_result:
            record.extra["result"] = result
        return record

    if spec.batch is not None and (faults is not None or spec.quorum):
        # The fault runtime (and the quorum veto it feeds) is
        # single-lane: per-edge RNG streams replay the object engine's
        # draw order, which has no lane axis.  A batched faulted spec
        # therefore serializes — one engine run per seed, same records,
        # same shard boundaries.
        for index, seed in enumerate(spec.seeds):
            crashes = spec.crashes
            if spec.lane_crashes is not None:
                crashes = spec.lane_crashes[index]
            records.append(_run_single(seed, crashes))
    elif spec.batch is not None:
        seeds = list(spec.seeds)
        for start in range(0, len(seeds), spec.batch):
            chunk = seeds[start : start + spec.batch]
            lane_crashes = None
            if spec.lane_crashes is not None:
                lane_crashes = spec.lane_crashes[start : start + spec.batch]
            profiler = _fast_profiler(spec)
            net = FastSyncNetwork(
                spec.n,
                ids=spec.ids,
                seeds=chunk,
                mode=spec.mode,
                max_rounds=spec.max_rounds,
                crashes=spec.crashes,
                lane_crashes=lane_crashes,
                roots=spec.roots,
                telemetry=fast_trace,
                profiler=profiler,
            )
            for seed, result in zip(chunk, net.run(_fast_algorithm(spec.algorithm, spec.params))):
                record = _fast_record(spec.n, seed, result, spec.params)
                record.extra["batch"] = len(chunk)
                if profiler is not None:
                    # One execution, one timer set: lanes share it.
                    record.extra["profile"] = profiler.as_dict()
                if keep_result:
                    record.extra["result"] = result
                records.append(record)
    else:
        for seed in spec.seeds:
            records.append(_run_single(seed, spec.crashes))
    if spec.trace is not None and telemetry is None:
        from repro.telemetry import JsonlRecorder, RunContext

        context = RunContext(
            algorithm=spec.algorithm_name or repr(spec.algorithm),
            n=spec.n,
            seed=spec.seeds[0],
            engine="fast",
            mode=fast_trace.mode,
            params=spec.params,
        )
        lanes = fast_trace.lanes
        with JsonlRecorder(spec.trace, context=context) as jsonl:
            for lane in lanes:
                # Single-lane traces stay annotation-free (byte-stable
                # with earlier exports); batched runs stamp each lane so
                # render_timeline(lane=...) can untangle them.
                if len(lanes) > 1:
                    jsonl.annotate(lane=lane)
                for event in fast_trace.events(lane):
                    jsonl.emit(event)
            written = jsonl.events_written
        records[0].extra["trace"] = {"path": spec.trace, "events": written}
    return records


def execute_spec(
    spec: RunSpec,
    *,
    recorder: Optional[Any] = None,
    telemetry: Optional[Any] = None,
    scheduler: Optional[Any] = None,
    keep_result: bool = False,
) -> List[RunRecord]:
    """Execute every seed of one spec in-process, one record per seed.

    The runtime-only knobs (``recorder`` event sinks, ``FastTelemetry``
    binds, async ``scheduler`` adversaries, ``keep_result`` raw-result
    stashing) are deliberately *not* spec fields: they carry live
    objects, and specs must stay picklable.  Cells carrying them run in
    the parent process.
    """
    engine = spec.resolved_engine()
    if engine == "fast":
        if recorder is not None or scheduler is not None:
            raise ValueError(
                "recorder=/scheduler= are object-engine knobs; the fast "
                "engine takes telemetry= (FastTelemetry) instead"
            )
        return _execute_fast(spec, telemetry=telemetry, keep_result=keep_result)
    if telemetry is not None:
        raise ValueError("telemetry= (FastTelemetry) needs the fast engine")
    if engine == "async":
        return _execute_object(
            spec, "async", recorder=recorder, scheduler=scheduler,
            keep_result=keep_result,
        )
    if scheduler is not None:
        raise ValueError("scheduler= adversaries need the async engine")
    return _execute_object(
        spec, "sync", recorder=recorder, scheduler=None, keep_result=keep_result,
    )


def run(
    spec: RunSpec,
    *,
    recorder: Optional[Any] = None,
    telemetry: Optional[Any] = None,
    scheduler: Optional[Any] = None,
    keep_result: bool = False,
) -> RunRecord:
    """Execute a single-seed :class:`RunSpec` and return its record."""
    if len(spec.seeds) != 1 or spec.batch is not None:
        raise ValueError(
            "run() executes exactly one seed (no batch); use sweep() for "
            "seed grids and batched lanes"
        )
    return execute_spec(
        spec,
        recorder=recorder,
        telemetry=telemetry,
        scheduler=scheduler,
        keep_result=keep_result,
    )[0]


def _shard(spec: RunSpec, workers: int) -> List[RunSpec]:
    """Split one spec into seed-block sub-specs (scheduler cells).

    Fast batched specs shard on their lane-chunk boundaries — the exact
    chunks the in-process executor would run, so lane grouping (and with
    it bit-identity) is preserved.  Everything else blocks seeds so each
    spec yields about ``4 * workers`` cells; every seed is independently
    seeded, so the block size never affects results.
    """
    seeds = spec.seeds
    if spec.batch is not None:
        out = []
        for start in range(0, len(seeds), spec.batch):
            lane_crashes = None
            if spec.lane_crashes is not None:
                lane_crashes = spec.lane_crashes[start : start + spec.batch]
            out.append(
                dataclasses.replace(
                    spec,
                    seeds=seeds[start : start + spec.batch],
                    lane_crashes=lane_crashes,
                )
            )
        return out
    if workers <= 1 or len(seeds) == 1:
        return [spec]
    block = max(1, math.ceil(len(seeds) / (workers * 4)))
    return [
        dataclasses.replace(spec, seeds=seeds[start : start + block])
        for start in range(0, len(seeds), block)
    ]


def _cell_cost(spec: RunSpec) -> float:
    """Relative cost estimate for ragged-aware ordering (big-n first)."""
    return float(spec.n) * len(spec.seeds)


def sweep(
    specs: Union[RunSpec, Iterable[RunSpec]],
    *,
    workers: int = 1,
    registry: Optional[Any] = None,
    executor_factory: Optional[Callable[[int], Any]] = None,
    monitor: Optional[Any] = None,
    progress: Optional[Any] = None,
    spool_dir: Optional[str] = None,
) -> List[RunRecord]:
    """Execute a spec grid, optionally sharded across worker processes.

    Records come back in grid order — spec-major, seed-minor — and are
    **bit-identical** for every ``workers`` value (each seed owns its
    RNG streams, so sharding never perturbs a draw; wall-clock ``extra``
    fields are the only machine-dependent bits — see
    :func:`repro.analysis.canonical_record`).  ``registry`` receives the
    merged per-worker metric streams plus the scheduler's own gauges
    (worker utilization, steal counts).  ``executor_factory`` overrides
    the ``ProcessPoolExecutor`` constructor (tests inject broken pools);
    ``workers=1`` — and any cell that cannot cross a process boundary —
    runs in-process.

    ``monitor`` is a :class:`repro.monitor.SweepMonitor`: after the
    records are collected it runs record-level invariant checks and
    theory-bound conformance over the whole grid (and appends a ledger
    entry when configured) — read ``monitor.violations`` /
    ``monitor.conformance`` afterwards.  ``progress`` is a
    :class:`repro.monitor.ProgressListener` (e.g. ``SweepProgress``)
    receiving live cell start/finish events from the scheduler.
    Neither affects the records.

    ``spool_dir`` enables cross-worker telemetry spooling: every process
    that executes a cell appends its metric/profile snapshot to that
    directory, and :func:`repro.obs.collect` merges the shards into a
    deterministic :class:`~repro.obs.SweepReport` afterwards.
    """
    if isinstance(specs, RunSpec):
        specs = [specs]
    grid = list(specs)
    for item in grid:
        if not isinstance(item, RunSpec):
            raise ValueError(
                f"sweep() takes RunSpec items, got {type(item).__name__}"
            )
    cells = []
    for spec in grid:
        for shard in _shard(spec, workers):
            cells.append(
                SweepCell(
                    index=len(cells), cost=_cell_cost(shard), payload=shard
                )
            )
    from repro.sweep.worker import run_spec_cell

    per_cell = run_cells(
        cells,
        run_spec_cell,
        workers=workers,
        registry=registry,
        executor_factory=executor_factory,
        progress=progress,
        spool_dir=spool_dir,
    )
    records = [record for cell_records in per_cell for record in cell_records]
    if monitor is not None:
        monitor.observe_sweep(grid, records)
    return records
