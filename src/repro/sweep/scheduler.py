"""Sharded, work-stealing execution of picklable cells.

The scheduler is deliberately generic: a *cell* is any picklable payload
plus an order index and a cost estimate, and a *cell function* is a
module-level callable returning ``(value, metrics_dict)``.  The RunSpec
sweep (``repro.sweep.api``) and the scenario sweep CLI both ride it.

Scheduling model
----------------

Cells are submitted to a ``ProcessPoolExecutor`` in **descending cost
order** (ragged-aware: big-``n`` cells first, so a monster cell never
lands last on an otherwise drained pool).  The pool's shared task queue
is pull-based — an idle worker takes the next pending cell — which *is*
work stealing at the cell granularity: the scheduler plans a round-robin
"home" worker per cell and counts every cell executed away from its
home as a steal (``sweep.steals`` gauge).  Per-worker utilization
gauges come from each cell's measured wall time.

Degradation is graceful and total-order preserving: ``workers=1`` (or a
single cell) never creates a pool; cells whose payloads do not pickle
run in the parent; and if the pool dies mid-sweep (``BrokenProcessPool``
— a worker was OOM-killed, say) every cell without a result is re-run
in-process.  Results are always returned in cell-index order, and
per-cell metric payloads are merged into the parent registry in that
same deterministic order.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import as_completed
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.telemetry.metrics import MetricsRegistry

__all__ = ["SweepCell", "run_cells"]


@dataclass(frozen=True)
class SweepCell:
    """One schedulable unit: order index, cost estimate, payload."""

    index: int
    cost: float
    payload: Any


def _default_executor_factory(workers: int) -> Any:
    from concurrent.futures import ProcessPoolExecutor

    return ProcessPoolExecutor(max_workers=workers)


def _pool_errors():
    from concurrent.futures.process import BrokenProcessPool

    # BrokenProcessPool for a dead worker; OSError for a pool that can't
    # spawn at all; pickle errors for payload/result marshalling.
    return (BrokenProcessPool, OSError, pickle.PicklingError, TypeError)


def _notify(progress: Any, hook: str, *args: Any) -> None:
    """Fire one progress hook; listener bugs never kill the sweep."""
    if progress is None:
        return
    method = getattr(progress, hook, None)
    if method is None:
        return
    try:
        method(*args)
    except Exception:
        pass


def run_cells(
    cells: List[SweepCell],
    fn: Callable[[Any], Any],
    *,
    workers: int = 1,
    registry: Optional[MetricsRegistry] = None,
    executor_factory: Optional[Callable[[int], Any]] = None,
    progress: Optional[Any] = None,
    spool_dir: Optional[str] = None,
) -> List[Any]:
    """Execute every cell; return their values in cell-index order.

    ``fn`` must be a module-level function (worker processes import it
    by qualified name) mapping ``payload -> (value, metrics_dict)``.
    ``registry`` collects the merged metric streams and the scheduler
    gauges; pass ``None`` to skip collection.  ``progress`` is an
    optional :class:`repro.monitor.ProgressListener` receiving cell
    start/finish events, worker slots, and wall times as the sweep runs.
    ``spool_dir`` makes every executing process (pool workers and the
    inline fallback) append per-cell snapshots to that directory —
    see :mod:`repro.obs` for the collector and frontends.
    """
    from repro.sweep.worker import invoke_cell

    start = time.perf_counter()
    _notify(
        progress, "start", len(cells), sum(cell.cost for cell in cells), workers
    )
    values: Dict[int, Any] = {}
    metric_payloads: Dict[int, Dict[str, Any]] = {}
    busy_by_slot: Dict[int, float] = {}
    steals = 0
    inline: List[SweepCell] = []
    pool_cells: List[SweepCell] = []

    by_cost = sorted(cells, key=lambda cell: (-cell.cost, cell.index))
    if workers <= 1 or len(cells) <= 1:
        inline = sorted(cells, key=lambda cell: cell.index)
    else:
        for cell in by_cost:
            try:
                pickle.dumps(cell.payload)
            except Exception:
                inline.append(cell)
            else:
                pool_cells.append(cell)

    if pool_cells:
        pid_slots: Dict[int, int] = {}
        try:
            executor = (executor_factory or _default_executor_factory)(workers)
        except _pool_errors():
            inline.extend(pool_cells)
        else:
            futures = {}
            try:
                with executor:
                    try:
                        for home, cell in enumerate(pool_cells):
                            future = executor.submit(
                                invoke_cell, fn, cell.payload, spool_dir,
                                cell.index,
                            )
                            futures[future] = (cell, home % workers)
                            _notify(progress, "cell_start", cell)
                    except _pool_errors():
                        pass  # whatever never got submitted re-runs inline
                    for future in as_completed(futures):
                        cell, home_slot = futures[future]
                        try:
                            value, metrics, pid, wall = future.result()
                        except _pool_errors():
                            continue  # picked up by the inline fallback below
                        slot = pid_slots.setdefault(
                            pid, len(pid_slots) % workers
                        )
                        busy_by_slot[slot] = busy_by_slot.get(slot, 0.0) + wall
                        steals += slot != home_slot
                        values[cell.index] = value
                        metric_payloads[cell.index] = metrics
                        _notify(progress, "cell_finish", cell, wall, slot)
            except _pool_errors():
                pass
            inline.extend(
                cell
                for cell in pool_cells
                if cell.index not in values
            )

    inline_count = len(inline)
    for cell in sorted(inline, key=lambda cell: cell.index):
        _notify(progress, "cell_start", cell)
        value, metrics, pid, wall = invoke_cell(
            fn, cell.payload, spool_dir, cell.index
        )
        busy_by_slot[0] = busy_by_slot.get(0, 0.0) + wall
        values[cell.index] = value
        metric_payloads[cell.index] = metrics
        _notify(progress, "cell_finish", cell, wall, 0)

    _notify(progress, "finish", time.perf_counter() - start)
    if registry is not None:
        for index in sorted(metric_payloads):
            registry.merge(metric_payloads[index])
        elapsed = time.perf_counter() - start
        registry.gauge("sweep.workers").set(workers)
        registry.gauge("sweep.cells").set(len(cells))
        registry.gauge("sweep.steals").set(steals)
        registry.gauge("sweep.inline_cells").set(inline_count)
        registry.gauge("sweep.elapsed_s").set(elapsed)
        for slot, busy in sorted(busy_by_slot.items()):
            registry.gauge(f"sweep.worker_utilization[{slot}]").set(
                min(1.0, busy / elapsed) if elapsed > 0 else 0.0
            )
    return [values[cell.index] for cell in sorted(cells, key=lambda c: c.index)]
