"""RunSpec: one declarative, picklable description of an election run.

The seven legacy runner entrypoints (``run_sync_trial`` …
``sweep_async``) each encoded one engine's keyword soup.  A
:class:`RunSpec` is the union of that configuration space as plain
data — algorithm, clique size, engine, seeds, parameters, fault and
adversary plans, trace/profile flags — with two properties the legacy
functions never had:

* **picklable**: a spec (and the :class:`~repro.analysis.RunRecord` rows
  it produces) crosses process boundaries, which is what lets the sweep
  scheduler shard a grid across workers (``algorithm`` is normally a
  registry *name*; zero-argument factories are accepted for in-process
  runs but pin their cells to the parent process);
* **uniform**: ``run(spec)`` and ``sweep(grid)`` replace the per-engine
  entrypoints, so every bench, table and CLI path schedules through one
  executor.

Specs are frozen; derive variants with :func:`dataclasses.replace`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = ["RunSpec", "canonical_record"]

_ENGINES = ("auto", "sync", "async", "fast")
_MODES = ("auto", "exact", "scale")
# Mirrors repro.fastsync.xp.SUPPORTED_BACKENDS without importing the
# numpy-guarded fastsync package (specs must build numpy-free).
_BACKENDS = ("numpy", "cupy", "torch")

#: ``extra`` keys that vary run-to-run on identical configurations
#: (wall clocks, profiler timings, raw engine results).  Everything
#: else in a record is seed-deterministic, which is what the sharded
#: scheduler's bit-identity contract quantifies over.
VOLATILE_EXTRA_KEYS = ("wall_time_s", "profile", "result", "trace")


def _int_tuple(value: Any, label: str) -> Optional[Tuple[int, ...]]:
    if value is None:
        return None
    return tuple(int(v) for v in value)


@dataclass(frozen=True)
class RunSpec:
    """Everything one election run (or seed-batch) needs, as data.

    ``algorithm`` is a registry name (see ``repro list``); ``engine``
    ``"auto"`` resolves to the registry engine, upgraded to ``"fast"``
    for large fault-free runs with a vectorized port.  ``seeds`` is the
    seed axis (``run()`` wants exactly one; ``sweep()`` fans out);
    ``batch`` groups fast-engine seeds into multi-lane engine runs of
    that many lanes.  ``faults``/``adversary``/``quorum`` configure the
    object engines' fault layer; ``crashes``/``lane_crashes``/``roots``
    are the fast engine's deterministic schedules; ``backend`` selects
    the :mod:`repro.fastsync.xp` array namespace inside the executing
    process; ``trace`` records the (single-seed) run to a JSONL path and
    ``profile`` attaches kernel phase timers (fast engine).
    """

    algorithm: Any
    n: int
    engine: str = "auto"
    seeds: Tuple[int, ...] = (0,)
    batch: Optional[int] = None
    params: Dict[str, Any] = field(default_factory=dict)
    ids: Optional[Tuple[int, ...]] = None
    awake: Optional[Tuple[int, ...]] = None
    wake_times: Optional[Dict[int, float]] = None
    roots: Optional[Tuple[int, ...]] = None
    mode: str = "auto"
    max_rounds: Optional[int] = None
    max_events: Optional[int] = None
    faults: Optional[Any] = None
    adversary: Optional[Any] = None
    quorum: bool = False
    crashes: Optional[Tuple[Tuple[int, float], ...]] = None
    lane_crashes: Optional[Tuple[Any, ...]] = None
    backend: Optional[str] = None
    trace: Optional[str] = None
    profile: bool = False

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"need n >= 1, got {self.n}")
        if self.engine not in _ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {_ENGINES}"
            )
        if self.mode not in _MODES:
            raise ValueError(
                f"unknown port-model mode {self.mode!r}; expected one of {_MODES}"
            )
        seeds = tuple(int(s) for s in self.seeds)
        if not seeds:
            raise ValueError("need at least one seed")
        object.__setattr__(self, "seeds", seeds)
        if self.batch is not None and self.batch < 1:
            raise ValueError(f"need batch >= 1, got {self.batch}")
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "ids", _int_tuple(self.ids, "ids"))
        object.__setattr__(self, "awake", _int_tuple(self.awake, "awake"))
        object.__setattr__(self, "roots", _int_tuple(self.roots, "roots"))
        if self.wake_times is not None:
            object.__setattr__(
                self,
                "wake_times",
                {int(u): float(t) for u, t in dict(self.wake_times).items()},
            )
        if self.crashes is not None:
            object.__setattr__(
                self,
                "crashes",
                tuple((int(node), at) for node, at in self.crashes),
            )
        if self.lane_crashes is not None:
            object.__setattr__(
                self,
                "lane_crashes",
                tuple(
                    None if lane is None else tuple(
                        (int(node), at) for node, at in lane
                    )
                    for lane in self.lane_crashes
                ),
            )
        if self.backend is not None and self.backend not in _BACKENDS:
            raise ValueError(
                f"unknown array backend {self.backend!r}; "
                f"expected one of {_BACKENDS}"
            )
        if self.faults is not None:
            from repro.faults.plan import FaultPlan

            if not isinstance(self.faults, FaultPlan):
                raise ValueError(
                    "RunSpec.faults must be a repro.faults.FaultPlan, "
                    f"got {type(self.faults).__name__}"
                )
        if self.adversary is not None:
            from repro.adversary.plan import AdversaryPlan

            if not isinstance(self.adversary, AdversaryPlan):
                raise ValueError(
                    "RunSpec.adversary must be a repro.adversary.AdversaryPlan, "
                    f"got {type(self.adversary).__name__}"
                )
            if self.faults is not None and self.faults.adversary is not None:
                raise ValueError(
                    "both RunSpec.adversary and RunSpec.faults.adversary are "
                    "set; attach the adversary in one place"
                )
        if self.trace is not None:
            if self.batch is not None:
                # A batched fast spec is ONE engine run; its trace carries
                # every lane (lane-annotated).  More seeds than lanes would
                # mean multiple engine runs overwriting the same file.
                if len(seeds) > self.batch:
                    raise ValueError(
                        "trace with batch records one batched engine run; "
                        "pass at most batch seeds"
                    )
            elif len(seeds) != 1:
                raise ValueError("trace records one run; pass exactly one seed")

    @property
    def algorithm_name(self) -> Optional[str]:
        """The registry name, or ``None`` for factory-valued specs."""
        return self.algorithm if isinstance(self.algorithm, str) else None

    def resolved_engine(self) -> str:
        """Resolve ``engine="auto"`` deterministically.

        Named algorithms default to their registry engine; a sync spec
        whose clique exceeds the exact-mode limit (2048) and whose
        algorithm has a vectorized port upgrades to ``"fast"``.  Faulted
        specs take the upgrade too when the port declares a FaultPlan
        fold (``supports_faults``), so one plan drives whichever engine
        the size calls for; quorum specs stay on the object engines
        (``quorum=`` wraps the election in ``quorum_reelect`` there,
        which has no vectorized twin — the fast engine's quorum gate is
        explicit ``engine="fast"`` territory).  Factory-valued specs
        default to ``"sync"``.
        """
        if self.engine != "auto":
            return self.engine
        if self.algorithm_name is None:
            return "sync"
        from repro.core.registry import get_algorithm

        spec = get_algorithm(self.algorithm_name)
        faulted = self.faults is not None or self.adversary is not None
        if (
            spec.engine == "sync"
            and self.n > 2048
            and not self.quorum
            and spec.has_fast
            and (not faulted or spec.has_fast_faults)
        ):
            return "fast"
        return spec.engine

    def effective_faults(self) -> Optional[Any]:
        """The fault plan the object engines receive (adversary attached)."""
        if self.adversary is None:
            return self.faults
        from repro.faults.plan import FaultPlan

        plan = self.faults if self.faults is not None else FaultPlan()
        return dataclasses.replace(plan, adversary=self.adversary)


def canonical_record(record: Any) -> Dict[str, Any]:
    """A record as comparable data: volatile fields stripped.

    Wall-clock ``extra`` entries (``wall_time_s``, ``profile`` timings,
    raw ``result`` handles, trace receipts) differ between machines and
    between runs of the *same* seed; everything else is deterministic
    per ``(n, seed, configuration)``.  The scheduler equivalence suite
    and the parallel-sweep bench compare records through this view.
    """
    return {
        "n": record.n,
        "seed": record.seed,
        "messages": record.messages,
        "time": record.time,
        "unique_leader": record.unique_leader,
        "elected_id": record.elected_id,
        "leaders": record.leaders,
        "decided": record.decided,
        "awake": record.awake,
        "params": dict(record.params),
        "extra": {
            key: value
            for key, value in record.extra.items()
            if key not in VOLATILE_EXTRA_KEYS
        },
    }
