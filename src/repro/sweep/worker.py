"""Worker-process entrypoints for the sharded sweep scheduler.

Everything here is a module-level function: ``ProcessPoolExecutor``
ships callables to workers by qualified name, so the cell functions (and
the :func:`invoke_cell` wrapper that times them) must be importable —
no lambdas, no closures.  Workers inherit the parent's environment, so
``REPRO_ARRAY_BACKEND`` selects the fastsync array backend per process;
a :class:`~repro.analysis.RunSpec` ``backend=`` field does the same from
inside :func:`run_spec_cell`.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = ["invoke_cell", "run_spec_cell", "scenario_cell"]


def invoke_cell(
    fn: Callable[[Any], Tuple[Any, Dict[str, Any]]],
    payload: Any,
    spool_dir: Optional[str] = None,
    cell_index: Optional[int] = None,
) -> Tuple[Any, Dict[str, Any], int, float]:
    """Run one cell function, returning (value, metrics, pid, wall_s).

    The pid lets the parent map cells to worker slots (steal
    accounting); the wall time feeds the utilization gauges.  With a
    ``spool_dir``, the cell's snapshot is also appended to this
    process's spool shard (see :mod:`repro.obs.spool`) before the
    result crosses the process boundary — so the spool survives a
    parent crash and is observable while the sweep runs.
    """
    start = time.perf_counter()
    value, metrics = fn(payload)
    wall = time.perf_counter() - start
    if spool_dir is not None and cell_index is not None:
        from repro.obs.spool import spool_snapshot

        spool_snapshot(
            spool_dir, cell=cell_index, wall_s=wall, metrics=metrics
        )
    return value, metrics, os.getpid(), wall


def run_spec_cell(spec: Any) -> Tuple[Any, Dict[str, Any]]:
    """Execute one seed-block :class:`~repro.analysis.RunSpec` cell.

    Returns the records plus this cell's metric stream — record and
    message counters (deterministic, so the merged parent registry is
    identical for every worker count) tagged by resolved engine.
    """
    from repro.sweep.api import execute_spec
    from repro.telemetry.metrics import MetricsRegistry

    records = execute_spec(spec)
    registry = MetricsRegistry()
    # Record-derived only: counters must sum to the same totals no
    # matter how the scheduler blocked the seeds (the bit-identity
    # contract covers the merged registry, not just the records).
    registry.counter("sweep.records").inc(len(records))
    registry.counter("sweep.messages").inc(sum(r.messages for r in records))
    registry.counter(f"sweep.records[{spec.resolved_engine()}]").inc(len(records))
    if getattr(spec, "profile", False):
        # Fold the kernel-phase timings into the metric stream here, in
        # the process that measured them — ``record.extra["profile"]``
        # alone never crosses back into the parent registry, so
        # ``profile=True`` sweeps used to lose all child-process kernel
        # costs.  Batched lanes share one profiler dict; fold each
        # distinct profiler once.
        seen_profiles = set()
        for record in records:
            prof = record.extra.get("profile")
            if not prof or id(prof) in seen_profiles:
                continue
            seen_profiles.add(id(prof))
            for phase, agg in prof.items():
                hist = registry.histogram(f"profile.{phase}")
                hist.count += int(agg.get("calls", 0))
                hist.total += float(agg.get("total_s", 0.0))
    return records, registry.as_dict()


def scenario_cell(payload: Tuple[str, int, int, str, Any, float, bool]):
    """Execute one ``repro scenarios sweep`` cell in a worker process.

    ``payload`` is ``(scenario_json, n, seed, engine, inner, lag,
    quorum)`` — the scenario crosses the process boundary as its JSON
    DSL form (lossless round-trip, see ``repro.scenarios.dsl``) and the
    convergence metrics come back as a plain dict.
    """
    scenario_json, n, seed, engine, inner, lag, quorum = payload
    from repro.scenarios import ScenarioRunner, scenario_from_json
    from repro.telemetry.metrics import MetricsRegistry

    scenario = scenario_from_json(scenario_json)
    runner = ScenarioRunner(
        scenario, n, engine=engine, seed=seed, inner=inner, lag=lag,
        quorum=quorum,
    )
    m = runner.run().metrics
    registry = MetricsRegistry()
    registry.counter("sweep.records").inc(1)
    registry.counter("sweep.messages").inc(int(m.total_messages))
    registry.counter("sweep.records[scenario]").inc(1)
    value = {
        "elections": m.elections,
        "epoch_churn": m.epoch_churn,
        "mean_failover_latency": m.mean_failover_latency,
        "agreed_fraction": m.agreed_fraction,
        "total_messages": m.total_messages,
        "message_overhead": m.message_overhead,
        "final_agreed": m.final_agreed,
    }
    return value, registry.as_dict()
