"""Synchronous clique simulator (the model of Section 2 of the paper).

Computation proceeds in rounds ``1, 2, ...``.  In each round an awake,
non-terminated node may send (possibly distinct) messages over any of its
ports; a message sent in round ``r`` is delivered at the start of round
``r + 1``.  An asleep node wakes when a message is delivered to it and
takes its first step in that same round (this matches the paper's "wakes
up at the end of a round if it received a message in that round").

Complexity accounting follows the paper:

* *message complexity* — total number of messages sent;
* *time complexity* — the last round in which any message was sent
  (:attr:`SyncMetrics.last_send_round`); silent decision steps after the
  final sends are free, exactly as in the paper's round counts.
"""

from repro.sync.algorithm import SyncAlgorithm
from repro.sync.engine import SyncContext, SyncNetwork, SyncRunResult
from repro.sync.metrics import SyncMetrics
from repro.sync.wakeup import (
    adversarial_wakeup,
    random_wakeup,
    simultaneous_wakeup,
    single_wakeup,
)

__all__ = [
    "SyncAlgorithm",
    "SyncContext",
    "SyncNetwork",
    "SyncRunResult",
    "SyncMetrics",
    "simultaneous_wakeup",
    "adversarial_wakeup",
    "single_wakeup",
    "random_wakeup",
]
