"""Base class for synchronous per-node algorithms."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sync.engine import SyncContext

# An inbox entry: (receive_port, payload).  Plain tuples are used because
# simulations move millions of messages; the convention is documented in
# repro.sync.engine as well.
Inbox = List[Tuple[int, Any]]


class SyncAlgorithm:
    """One node's synchronous protocol.

    The engine instantiates one object per node (via the factory passed to
    :class:`repro.sync.SyncNetwork`), so instance attributes are the
    node-local state.  The engine calls:

    * :meth:`on_wake` exactly once, at the start of the node's first round
      (round 1 for initially-awake nodes, or the round a first message is
      delivered);
    * :meth:`on_round` every round while the node is awake and has not
      halted, with the messages delivered at the start of that round.

    All interaction with the network goes through the
    :class:`repro.sync.SyncContext` handed to these methods.
    """

    def on_wake(self, ctx: "SyncContext") -> None:
        """Hook invoked once when the node wakes up (before ``on_round``)."""

    def on_round(self, ctx: "SyncContext", inbox: Inbox) -> None:
        """One synchronous step; ``inbox`` holds (port, payload) pairs."""
        raise NotImplementedError
