"""The synchronous round engine.

Semantics (Section 2 of the paper):

* All nodes share a global round counter ``1, 2, ...``.
* In round ``r`` every awake, non-halted node takes one step
  (:meth:`repro.sync.SyncAlgorithm.on_round`) and may send messages over
  its ports; every message sent in round ``r`` is delivered at the start
  of round ``r + 1``.
* An asleep node wakes when a message is delivered to it, and takes its
  first step in the delivery round with that message in its inbox.
* Port endpoints are resolved lazily through a
  :class:`repro.net.ports.PortMap`, so the adversarial KT0 semantics are
  preserved: a node learns nothing about a port until it uses it.

The engine is fully deterministic given ``(seed, ids, port map policy,
wake-up set, algorithm factory)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.common import (
    Decision,
    ProtocolError,
    SimulationLimitExceeded,
    SurvivorAccounting,
    message_kind,
)
from repro.net.ports import LazyPortMap, PortMap, RandomPortPolicy
from repro.sync.algorithm import SyncAlgorithm
from repro.sync.metrics import SyncMetrics
from repro.sync.wakeup import simultaneous_wakeup

__all__ = ["SyncContext", "SyncNetwork", "SyncRunResult"]


class SyncContext:
    """Per-node handle through which an algorithm interacts with the clique.

    One context object exists per node for the lifetime of a run; the
    engine refreshes its round number before each step.
    """

    __slots__ = ("_net", "node", "my_id", "n", "rng", "round", "wake_round")

    def __init__(self, net: "SyncNetwork", node: int, my_id: int, rng: random.Random):
        self._net = net
        self.node = node
        self.my_id = my_id
        self.n = net.n
        self.rng = rng
        self.round = 0
        self.wake_round = 0

    # ------------------------------------------------------------------ #
    # topology

    @property
    def port_count(self) -> int:
        """Number of ports (``n - 1``)."""
        return self.n - 1

    def all_ports(self) -> range:
        """All port numbers, ``0 .. n-2``."""
        return range(self.n - 1)

    def sample_ports(self, m: int) -> List[int]:
        """``m`` distinct ports sampled uniformly at random (no replacement)."""
        if m > self.port_count:
            raise ValueError(f"cannot sample {m} of {self.port_count} ports")
        return self.rng.sample(range(self.port_count), m)

    # ------------------------------------------------------------------ #
    # communication

    def send(self, port: int, payload: Any) -> None:
        """Send ``payload`` over ``port``; delivered at the start of round+1."""
        self._net._send(self.node, port, payload)

    def send_many(self, ports: Sequence[int], payload: Any) -> None:
        """Send the same payload over each port in ``ports``."""
        for port in ports:
            self._net._send(self.node, port, payload)

    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` over every port (``n - 1`` messages)."""
        self.send_many(range(self.port_count), payload)

    # ------------------------------------------------------------------ #
    # decisions

    @property
    def decision(self) -> Optional[Decision]:
        """This node's decision so far (``None`` while undecided)."""
        return self._net.decisions[self.node]

    def decide_leader(self) -> None:
        """Irrevocably output LEADER."""
        self._net._decide(self.node, Decision.LEADER, self.my_id)

    def decide_follower(self, leader_id: Optional[int] = None) -> None:
        """Irrevocably output NON_LEADER (optionally naming the leader)."""
        self._net._decide(self.node, Decision.NON_LEADER, leader_id)

    def halt(self) -> None:
        """Terminate this node; it takes no further steps."""
        self._net._halt(self.node)

    # ------------------------------------------------------------------ #
    # failure detection (faults subsystem)

    @property
    def detector(self):
        """This node's failure-detector oracle (see :mod:`repro.faults`).

        Always available; without a fault plan it is a perfect detector
        over a crash-free run (it never suspects anyone).
        """
        return self._net.detector_for(self.node)


@dataclass
class SyncRunResult(SurvivorAccounting):
    """Summary of one synchronous execution."""

    n: int
    ids: List[int]
    rounds_executed: int
    messages: int
    last_send_round: int
    leaders: List[int]
    decisions: List[Optional[Decision]]
    outputs: List[Optional[int]]
    awake_count: int
    halted_count: int
    dropped_deliveries: int
    metrics: SyncMetrics
    crashed: List[int] = field(default_factory=list)
    fault_metrics: Optional[Any] = None  # FaultMetrics when a plan was active

    @property
    def leader_ids(self) -> List[int]:
        """IDs of the nodes that decided LEADER."""
        return [self.ids[u] for u in self.leaders]

    @property
    def unique_leader(self) -> bool:
        """Exactly one node decided LEADER."""
        return len(self.leaders) == 1

    @property
    def elected_id(self) -> Optional[int]:
        """The elected ID if the election produced a unique leader."""
        return self.ids[self.leaders[0]] if self.unique_leader else None

    @property
    def decided_count(self) -> int:
        return sum(1 for d in self.decisions if d is not None)

    def explicit_agreement(self) -> bool:
        """Explicit-election check: every decided non-leader names the leader.

        Nodes that decided NON_LEADER with ``leader_id=None`` (implicit
        election) do not count against agreement.
        """
        if not self.unique_leader:
            return False
        expected = self.elected_id
        for u, decision in enumerate(self.decisions):
            if decision is Decision.NON_LEADER and self.outputs[u] is not None:
                if self.outputs[u] != expected:
                    return False
        return True


class SyncNetwork:
    """A synchronous ``n``-clique executing one algorithm instance per node."""

    def __init__(
        self,
        n: int,
        algorithm_factory: Callable[[], SyncAlgorithm],
        *,
        ids: Optional[Sequence[int]] = None,
        seed: int = 0,
        port_map: Optional[PortMap] = None,
        awake: Optional[Sequence[int]] = None,
        max_rounds: Optional[int] = None,
        recorder: Optional[Any] = None,
        faults: Optional[Any] = None,
    ) -> None:
        if n < 1:
            raise ValueError("need n >= 1")
        self.n = n
        self.seed = seed
        master = random.Random(seed)
        if ids is None:
            ids = list(range(1, n + 1))
        if len(ids) != n:
            raise ValueError(f"need {n} IDs, got {len(ids)}")
        if len(set(ids)) != n:
            raise ValueError("IDs must be distinct")
        self.ids = list(ids)
        if port_map is None:
            port_map = LazyPortMap(n, RandomPortPolicy(random.Random(master.getrandbits(64))))
        self.port_map = port_map
        self.recorder = recorder
        self.max_rounds = max_rounds if max_rounds is not None else max(4096, 32 * n)

        self.algorithms: List[SyncAlgorithm] = [algorithm_factory() for _ in range(n)]
        self.contexts: List[SyncContext] = [
            SyncContext(self, u, self.ids[u], random.Random(master.getrandbits(64)))
            for u in range(n)
        ]
        self.decisions: List[Optional[Decision]] = [None] * n
        self.outputs: List[Optional[int]] = [None] * n
        self.leaders: List[int] = []
        self.metrics = SyncMetrics()

        self.fault_plan = faults
        self.fault_runtime = None
        if faults is not None:
            from repro.faults.runtime import FaultRuntime

            self.fault_runtime = FaultRuntime(faults, n, self.ids, seed)
        self._detectors: Dict[int, Any] = {}

        self._awake: List[bool] = [False] * n
        self._halted: List[bool] = [False] * n
        self._crashed: List[bool] = [False] * n
        self._active: Set[int] = set()
        self._used_send_ports: List[Set[int]] = [set() for _ in range(n)]
        self._inboxes_next: Dict[int, List[Tuple[int, Any]]] = {}
        self._dropped_deliveries = 0
        self.round = 0

        wake_set = simultaneous_wakeup(n) if awake is None else frozenset(awake)
        if not wake_set:
            raise ValueError("at least one node must be awake initially")
        if not all(0 <= u < n for u in wake_set):
            raise ValueError("initially-awake node indices must be in [0, n)")
        self._initial_wake = wake_set

    # ------------------------------------------------------------------ #
    # engine internals (called by contexts)

    def _send(self, u: int, port: int, payload: Any) -> None:
        if self._halted[u] or self._crashed[u]:
            raise ProtocolError(f"halted/crashed node {u} attempted to send")
        v, j = self.port_map.resolve(u, port)
        opened = port not in self._used_send_ports[u]
        if opened:
            self._used_send_ports[u].add(port)
        kind = message_kind(payload)
        self.metrics.record_send(self.round, kind, opened)
        if self.recorder is not None:
            self.recorder.on_send(self.round, u, port, v, j, payload)
        if self.fault_runtime is None:
            self._inboxes_next.setdefault(v, []).append((j, payload))
            return
        self.fault_runtime.observe_send(self.round, u, kind)
        for delivered in self.fault_runtime.delivered_payloads(
            u, v, kind, payload, self.round
        ):
            # Byzantine rewrites (and replayed stale copies) are traced
            # separately: on_send above logged what the sender handed
            # the network, on_tamper logs what the receiver will see.
            if (
                delivered is not payload
                and self.recorder is not None
                and hasattr(self.recorder, "on_tamper")
            ):
                self.recorder.on_tamper(self.round, u, v, payload, delivered)
            self._inboxes_next.setdefault(v, []).append((j, delivered))

    def _decide(self, u: int, decision: Decision, output: Optional[int]) -> None:
        previous = self.decisions[u]
        if previous is not None:
            if previous is decision and self.outputs[u] == output:
                return
            raise ProtocolError(
                f"node {u} tried to change its decision from {previous} to {decision}"
            )
        self.decisions[u] = decision
        self.outputs[u] = output
        if decision is Decision.LEADER:
            self.leaders.append(u)
        if self.recorder is not None:
            self.recorder.on_decide(self.round, u, decision, output)

    def _halt(self, u: int) -> None:
        if not self._halted[u]:
            self._halted[u] = True
            self._active.discard(u)

    def _crash(self, u: int, when: Optional[float] = None) -> None:
        """Crash-stop ``u`` (at the start of the current round by default)."""
        if when is None:
            when = self.round
        self._crashed[u] = True
        self._active.discard(u)
        self.fault_runtime.note_crash(u, when)
        if self.recorder is not None and hasattr(self.recorder, "on_crash"):
            self.recorder.on_crash(when, u)

    def _apply_due_crashes(self) -> None:
        if self.fault_runtime is None:
            return
        for u in self.fault_runtime.due_crashes(self.round):
            if self.fault_runtime.approve_crash(u):
                self._crash(u)

    def detector_for(self, u: int):
        """The failure-detector oracle of node ``u`` (cached per run)."""
        detector = self._detectors.get(u)
        if detector is None:
            from repro.faults.detectors import engine_detector

            detector = engine_detector(
                self.fault_plan, u, self.ids, self.fault_runtime, port_map=self.port_map
            )
            self._detectors[u] = detector
        return detector

    def _wake(self, u: int) -> None:
        if self._awake[u] or self._halted[u] or self._crashed[u]:
            return
        self._awake[u] = True
        self._active.add(u)
        self.metrics.wake_count += 1
        ctx = self.contexts[u]
        ctx.round = self.round
        ctx.wake_round = self.round
        if self.recorder is not None:
            self.recorder.on_wake(self.round, u)
        self.algorithms[u].on_wake(ctx)

    # ------------------------------------------------------------------ #
    # execution

    def run(self) -> SyncRunResult:
        """Execute rounds until every non-asleep node has halted."""
        self.round = 1
        self._apply_due_crashes()
        for u in sorted(self._initial_wake):
            self._wake(u)
        while True:
            if self.round > self.max_rounds:
                raise SimulationLimitExceeded(
                    f"no termination after {self.max_rounds} rounds "
                    f"(n={self.n}, active={len(self._active)})"
                )
            inboxes = self._inboxes_next
            self._inboxes_next = {}
            # Deliveries wake sleeping destinations (in index order, for
            # determinism of the wake hooks).
            for v in sorted(inboxes):
                if self._halted[v] or self._crashed[v]:
                    self._dropped_deliveries += len(inboxes[v])
                elif not self._awake[v]:
                    self._wake(v)
            self.metrics.rounds_executed = self.round
            for u in sorted(self._active):
                ctx = self.contexts[u]
                ctx.round = self.round
                self.algorithms[u].on_round(ctx, inboxes.get(u, []))
            if not self._active and not self._inboxes_next:
                break
            self.round += 1
            self._apply_due_crashes()
        # Post-quiescence crashes still happen (to the machines, not the
        # protocol): record them so survivor accounting matches reality.
        if self.fault_runtime is not None:
            for at, u in self.fault_runtime.drain_pending():
                if self.fault_runtime.approve_crash(u):
                    self._crash(u, when=at)
        return self._result()

    def _result(self) -> SyncRunResult:
        return SyncRunResult(
            n=self.n,
            ids=self.ids,
            rounds_executed=self.metrics.rounds_executed,
            messages=self.metrics.messages_total,
            last_send_round=self.metrics.last_send_round,
            leaders=list(self.leaders),
            decisions=list(self.decisions),
            outputs=list(self.outputs),
            awake_count=sum(self._awake),
            halted_count=sum(self._halted),
            dropped_deliveries=self._dropped_deliveries,
            metrics=self.metrics,
            crashed=[u for u in range(self.n) if self._crashed[u]],
            fault_metrics=(
                self.fault_runtime.metrics if self.fault_runtime is not None else None
            ),
        )
