"""Message/time accounting for synchronous executions.

The counters mirror the quantities the paper reasons about:

* total messages (message complexity),
* the last round with a send (time complexity under the paper's
  convention that a ``k``-round algorithm sends in rounds ``1..k``),
* per-round send counts (used by the Lemma 3.9 adversary experiments),
* per-kind counts (used by benches to split e.g. wake-up vs compete
  traffic),
* *port opens* — first use of a port by its owner, the quantity the
  Ω(n log n) argument of Theorem 3.11 counts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["SyncMetrics"]


@dataclass
class SyncMetrics:
    messages_total: int = 0
    last_send_round: int = 0
    rounds_executed: int = 0
    wake_count: int = 0
    port_opens: int = 0
    sends_by_round: Dict[int, int] = field(default_factory=dict)
    messages_by_kind: Counter = field(default_factory=Counter)

    def record_send(self, round_no: int, kind: str, opened_port: bool) -> None:
        self.messages_total += 1
        if round_no > self.last_send_round:
            self.last_send_round = round_no
        self.sends_by_round[round_no] = self.sends_by_round.get(round_no, 0) + 1
        self.messages_by_kind[kind] += 1
        if opened_port:
            self.port_opens += 1

    def summary(self) -> str:
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(self.messages_by_kind.items()))
        return (
            f"messages={self.messages_total} last_send_round={self.last_send_round} "
            f"rounds={self.rounds_executed} port_opens={self.port_opens} [{kinds}]"
        )
