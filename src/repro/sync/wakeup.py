"""Wake-up schedules for the synchronous clique.

The paper considers two regimes:

* **simultaneous wake-up** (Section 3): every node starts executing in
  round 1;
* **adversarial wake-up** (Section 4): the adversary wakes an arbitrary
  nonempty subset in round 1; every other node sleeps until it receives a
  message.  (The paper notes that restricting the adversary to round-1
  wake-ups only is without loss of generality for its results; we adopt
  the same convention.)
"""

from __future__ import annotations

import random
from typing import FrozenSet, Iterable

__all__ = [
    "simultaneous_wakeup",
    "adversarial_wakeup",
    "single_wakeup",
    "random_wakeup",
]


def simultaneous_wakeup(n: int) -> FrozenSet[int]:
    """All ``n`` nodes awake in round 1."""
    return frozenset(range(n))


def adversarial_wakeup(nodes: Iterable[int]) -> FrozenSet[int]:
    """An explicit adversary-chosen initially-awake set (must be nonempty)."""
    awake = frozenset(nodes)
    if not awake:
        raise ValueError("the adversary must wake at least one node")
    return awake


def single_wakeup(node: int = 0) -> FrozenSet[int]:
    """Only one node awake — the hardest case for wake-up style bounds."""
    return frozenset({node})


def random_wakeup(n: int, size: int, rng: random.Random) -> FrozenSet[int]:
    """A uniformly random initially-awake subset of the given size."""
    if not 1 <= size <= n:
        raise ValueError("need 1 <= size <= n")
    return frozenset(rng.sample(range(n), size))
