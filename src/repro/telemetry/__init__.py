"""Unified observability layer spanning all three engines.

The pieces:

* :mod:`repro.telemetry.jsonl` — schema-versioned JSONL trace export
  (:class:`JsonlRecorder` / :func:`load_trace`), pluggable anywhere a
  recorder goes today.
* :mod:`repro.telemetry.metrics` — counters/gauges/histograms and
  :func:`run_metrics`, merged into ``RunRecord.extra["metrics"]`` by
  ``analysis.runner``.
* :mod:`repro.telemetry.fast` — lane-aware aggregate counters for the
  vectorized engine (:class:`FastTelemetry`) and the sampled-lane tracer
  (:func:`trace_fast_lane`) that replays one lane on the object engine
  over identical wiring.
* :mod:`repro.telemetry.profile` — wall-clock phase timers around the
  fastsync kernels (:class:`PhaseProfiler`).
* :mod:`repro.telemetry.stats` — trace summaries, first-divergence
  diffs and the lane-aware ASCII timeline backing ``repro trace``.
* :mod:`repro.telemetry.causal` — happens-before analysis over loaded
  traces: Lamport clocks, the causal DAG, :func:`critical_path` and the
  :func:`explain` summary backing ``repro trace causal``.

Everything here imports without numpy; only :func:`trace_fast_lane`
needs the fast engine, and it imports it lazily.
"""

from repro.telemetry.causal import (
    CausalGraph,
    CriticalPath,
    build_graph,
    critical_path,
    explain,
    lamport_clocks,
)
from repro.telemetry.context import RunContext
from repro.telemetry.fast import AGGREGATE_NODE, FastTelemetry, LaneTrace, trace_fast_lane
from repro.telemetry.jsonl import (
    SCHEMA,
    SCHEMA_VERSION,
    JsonlRecorder,
    Trace,
    TraceSchemaError,
    dump_events,
    load_trace,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry, run_metrics
from repro.telemetry.profile import NULL_PROFILE, PhaseProfiler
from repro.telemetry.stats import (
    TraceDiff,
    TraceStats,
    diff_traces,
    filter_lane,
    render_timeline,
    trace_lanes,
    trace_stats,
)

__all__ = [
    "AGGREGATE_NODE",
    "CausalGraph",
    "Counter",
    "CriticalPath",
    "FastTelemetry",
    "Gauge",
    "Histogram",
    "JsonlRecorder",
    "LaneTrace",
    "MetricsRegistry",
    "NULL_PROFILE",
    "PhaseProfiler",
    "RunContext",
    "SCHEMA",
    "SCHEMA_VERSION",
    "Trace",
    "TraceDiff",
    "TraceSchemaError",
    "TraceStats",
    "build_graph",
    "critical_path",
    "diff_traces",
    "dump_events",
    "explain",
    "filter_lane",
    "lamport_clocks",
    "load_trace",
    "render_timeline",
    "run_metrics",
    "trace_fast_lane",
    "trace_lanes",
    "trace_stats",
]
