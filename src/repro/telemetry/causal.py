"""Happens-before analysis: Lamport clocks, causal DAG, critical path.

The trace recorders already capture everything a causal analysis needs —
no schema change: event streams are written in chronological order, so
the happens-before DAG is derived per :class:`~repro.telemetry.Trace`
from two edge families:

* **local program order** — consecutive events of the same node;
* **message edges** — async traces carry explicit ``deliver`` events,
  matched FIFO to their ``send`` (same destination, peer port and
  payload); sync traces have no deliver events, but the engine contract
  is exact — a message sent at round *r* is processed at round *r + 1* —
  so each ``send`` anchors to the destination's first event at any later
  round (its wake, if the delivery is what woke it).

Lamport clocks fall out of one pass over the DAG (events are stored
chronologically, which is a topological order): ``clock(e) = 1 +
max(clock(pred))``.  :func:`critical_path` runs the dual longest-path
sweep — for each event, the chain reaching it whose *start* is earliest
(maximizing the round span; message hops break ties) — and reads off
the chain ending at the decide event.  In exact mode the critical
path's round length equals the observed decide round, which the causal
test suite pins for every sync algorithm.

Everything here is pure post-hoc analysis over loaded traces: nothing
on any engine's hot path, O(events) plus FIFO matching.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.common import Decision
from repro.telemetry.jsonl import Trace
from repro.trace.events import TraceEvent

__all__ = [
    "CausalGraph",
    "CriticalPath",
    "PathHop",
    "build_graph",
    "lamport_clocks",
    "critical_path",
    "explain",
]


def payload_kind(payload: Any) -> str:
    """The message-kind tag of one send/deliver payload."""
    kind = getattr(payload, "kind", None)
    if kind is None and isinstance(payload, tuple) and payload:
        kind = payload[0]
    return str(kind) if kind is not None else "?"


def _send_dst(event: TraceEvent) -> Optional[int]:
    """Destination node of a ``send`` event (detail = port, v, peer, payload)."""
    if len(event.detail) < 2:
        return None
    try:
        return int(event.detail[1])
    except (TypeError, ValueError):
        return None


@dataclass
class CausalGraph:
    """The happens-before DAG of one trace, with derived Lamport clocks.

    ``preds[i]`` lists the indices of the events that happen-before
    event ``i`` by a direct edge; ``message_edges`` maps the delivery
    anchor (or explicit ``deliver`` event) back to its ``send`` along
    with the payload kind, so paths can attribute their message hops.
    """

    trace: Trace
    preds: List[List[int]]
    clocks: List[int]
    #: (src_index, dst_index) -> payload kind, message edges only.
    message_edges: Dict[Tuple[int, int], str] = field(default_factory=dict)

    @property
    def events(self) -> List[TraceEvent]:
        return self.trace.events


def _local_edges(events: List[TraceEvent], preds: List[List[int]]) -> None:
    last_of_node: Dict[int, int] = {}
    for i, event in enumerate(events):
        prev = last_of_node.get(event.node)
        if prev is not None:
            preds[i].append(prev)
        last_of_node[event.node] = i


def _deliver_edges(
    events: List[TraceEvent],
    preds: List[List[int]],
    edges: Dict[Tuple[int, int], str],
) -> None:
    """Match explicit ``deliver`` events FIFO to their sends (async)."""
    pending: Dict[Tuple[int, int, Any], List[int]] = {}
    for i, event in enumerate(events):
        if event.kind == "send":
            dst = _send_dst(event)
            if dst is None or len(event.detail) < 4:
                continue
            key = (dst, int(event.detail[2]), event.detail[3])
            pending.setdefault(key, []).append(i)
        elif event.kind == "deliver" and len(event.detail) >= 2:
            key = (event.node, int(event.detail[0]), event.detail[1])
            queue = pending.get(key)
            if not queue:
                continue
            src = queue.pop(0)
            preds[i].append(src)
            edges[(src, i)] = payload_kind(event.detail[1])


def _sync_anchor_edges(
    events: List[TraceEvent],
    preds: List[List[int]],
    edges: Dict[Tuple[int, int], str],
) -> None:
    """Anchor sync sends to the destination's first next-round event.

    The sync engine delivers a round-``r`` send at round ``r + 1`` (and
    the delivery wakes a sleeping destination), so the earliest event of
    the destination at ``when >= r + 1`` is causally after the send.
    """
    by_node: Dict[int, List[Tuple[float, int]]] = {}
    for i, event in enumerate(events):
        by_node.setdefault(event.node, []).append((event.when, i))
    for i, event in enumerate(events):
        if event.kind != "send":
            continue
        dst = _send_dst(event)
        if dst is None:
            continue
        timeline = by_node.get(dst)
        if not timeline:
            continue
        pos = bisect_left(timeline, (event.when + 1.0, -1))
        if pos >= len(timeline):
            continue
        anchor = timeline[pos][1]
        if anchor <= i:
            continue
        preds[anchor].append(i)
        kind = payload_kind(event.detail[3]) if len(event.detail) >= 4 else "?"
        edges[(i, anchor)] = kind


def build_graph(trace: Trace) -> CausalGraph:
    """Derive the happens-before DAG and Lamport clocks of one trace.

    Works on any ``repro.trace/1`` stream: per-message object-engine
    traces get full message edges; aggregate fast-engine traces (one
    pseudo-node) degrade to pure program order, which is still the
    correct causal chain for a lane-level stream.
    """
    events = trace.events
    preds: List[List[int]] = [[] for _ in events]
    edges: Dict[Tuple[int, int], str] = {}
    _local_edges(events, preds)
    if any(e.kind == "deliver" for e in events):
        _deliver_edges(events, preds, edges)
    else:
        _sync_anchor_edges(events, preds, edges)
    clocks = [0] * len(events)
    for i in range(len(events)):
        clocks[i] = 1 + max((clocks[p] for p in preds[i]), default=0)
    return CausalGraph(trace=trace, preds=preds, clocks=clocks, message_edges=edges)


def lamport_clocks(trace: Trace) -> List[int]:
    """Just the per-event Lamport clocks (parallel to ``trace.events``)."""
    return build_graph(trace).clocks


@dataclass
class PathHop:
    """One event on a critical path, with the edge that reached it."""

    index: int
    event: TraceEvent
    #: ``None`` for the chain start, ``"local"`` or a message kind.
    via: Optional[str] = None

    def label(self) -> str:
        where = f"r{int(self.event.when)}"
        node = self.event.node
        name = "lane" if node < 0 else f"n{node}"
        return f"{self.event.kind}@{where}/{name}"


@dataclass
class CriticalPath:
    """The longest causal chain ending at a trace's decide event."""

    hops: List[PathHop]
    span: float                  #: when(end) - when(start)
    round_length: int            #: integer rounds spanned, inclusive
    decide_round: int            #: int(when) of the target decide event
    message_hops: int            #: message edges along the chain
    messages_by_kind: Dict[str, int]
    #: Message hops bucketed by stream annotation (scenario ``act``).
    messages_by_act: Dict[str, int] = field(default_factory=dict)
    clock: int = 0               #: Lamport clock of the target event

    @property
    def events(self) -> List[TraceEvent]:
        return [hop.event for hop in self.hops]

    @property
    def indices(self) -> List[int]:
        return [hop.index for hop in self.hops]


def _target_index(events: List[TraceEvent]) -> Optional[int]:
    """The decide event the path must end at (leader decide preferred)."""
    best = None
    best_leader = None
    for i, event in enumerate(events):
        if event.kind != "decide":
            continue
        if best is None or event.when >= events[best].when:
            best = i
        decision = event.detail[0] if event.detail else None
        is_leader = decision == Decision.LEADER or (
            isinstance(decision, str) and decision == "LEADER"
        )
        if is_leader and (
            best_leader is None or event.when >= events[best_leader].when
        ):
            best_leader = i
    if best_leader is not None:
        return best_leader
    if best is not None:
        return best
    return len(events) - 1 if events else None


def critical_path(trace: Trace, graph: Optional[CausalGraph] = None) -> CriticalPath:
    """The longest causal chain ending at the trace's decide event.

    "Longest" maximizes the chain's time span (its start is as early as
    possible), then its message-hop count, then its total hop count — so
    among chains covering the same rounds the cross-node message relay
    wins over a node's idle local order.  Ties beyond that break on the
    smaller predecessor index, which makes the path deterministic for
    byte-stable golden summaries.  In exact mode the sync engine wakes
    every node at round 1 and decides at round *R*, so ``round_length``
    equals the observed decide round.
    """
    if graph is None:
        graph = build_graph(trace)
    events = graph.events
    target = _target_index(events)
    if target is None:
        raise ValueError("empty trace: no events to build a causal path from")
    # Per-event best chain: (start_when, message hops, hops, pred index).
    start = [e.when for e in events]
    msgs = [0] * len(events)
    hops = [0] * len(events)
    back: List[Optional[int]] = [None] * len(events)
    for i, event in enumerate(events):
        for p in graph.preds[i]:
            is_msg = int((p, i) in graph.message_edges)
            cand = (event.when - start[p], msgs[p] + is_msg, hops[p] + 1)
            have = (event.when - start[i], msgs[i], hops[i])
            if cand > have:
                start[i] = start[p]
                msgs[i] = msgs[p] + is_msg
                hops[i] = hops[p] + 1
                back[i] = p
    chain: List[int] = []
    cursor: Optional[int] = target
    while cursor is not None:
        chain.append(cursor)
        cursor = back[cursor]
    chain.reverse()
    path_hops: List[PathHop] = [PathHop(index=chain[0], event=events[chain[0]])]
    messages_by_kind: Dict[str, int] = {}
    messages_by_act: Dict[str, int] = {}
    message_hops = 0
    for src, dst in zip(chain, chain[1:]):
        kind = graph.message_edges.get((src, dst))
        if kind is None:
            via = "local"
        else:
            via = kind
            message_hops += 1
            messages_by_kind[kind] = messages_by_kind.get(kind, 0) + 1
            annotations = trace.annotations
            act = None
            if src < len(annotations):
                act = annotations[src].get("act")
            if act is not None:
                key = str(act)
                messages_by_act[key] = messages_by_act.get(key, 0) + 1
        path_hops.append(PathHop(index=dst, event=events[dst], via=via))
    first, last = events[chain[0]], events[chain[-1]]
    return CriticalPath(
        hops=path_hops,
        span=last.when - first.when,
        round_length=int(last.when) - int(first.when) + 1,
        decide_round=int(last.when),
        message_hops=message_hops,
        messages_by_kind=dict(sorted(messages_by_kind.items())),
        messages_by_act=dict(sorted(messages_by_act.items())),
        clock=graph.clocks[target],
    )


#: Paths longer than this elide their middle in :func:`explain`.
_MAX_RENDERED_HOPS = 12


def _render_path(path: CriticalPath) -> List[str]:
    hops = path.hops
    if len(hops) > _MAX_RENDERED_HOPS:
        head = _MAX_RENDERED_HOPS // 2
        tail = _MAX_RENDERED_HOPS - head
        elided = len(hops) - head - tail
        shown = hops[:head] + [None] + hops[-tail:]
    else:
        elided = 0
        shown = list(hops)
    parts: List[str] = []
    for hop in shown:
        if hop is None:
            parts.append(f"... ({elided} hops) ...")
            continue
        if hop.via is None:
            parts.append(hop.label())
        elif hop.via == "local":
            parts.append(f"-> {hop.label()}")
        else:
            parts.append(f"={hop.via}=> {hop.label()}")
    return parts


def explain(trace: Trace, *, graph: Optional[CausalGraph] = None) -> str:
    """An ASCII causal summary of one trace (deterministic per trace).

    Names the decide event, the critical path's span and message hops,
    the path itself, and the per-kind message attribution along it —
    "where the rounds went", read straight off the happens-before DAG.
    """
    if graph is None:
        graph = build_graph(trace)
    path = critical_path(trace, graph)
    context = trace.context
    who = []
    for key in ("algorithm", "n", "seed", "engine", "mode"):
        value = context.get(key)
        if value is not None:
            who.append(f"{key}={value}")
    lines = ["causal summary: " + (" ".join(who) or "(no run context)")]
    end = path.hops[-1].event
    end_node = "lane" if end.node < 0 else f"node {end.node}"
    decision = ""
    if end.kind == "decide" and end.detail:
        decision = f" ({getattr(end.detail[0], 'name', end.detail[0])})"
    lines.append(
        f"decide at round {path.decide_round} by {end_node}{decision}: "
        f"critical path covers {path.round_length} rounds, "
        f"{path.message_hops} message hops, Lamport clock {path.clock}"
    )
    lines.append("path: " + " ".join(_render_path(path)))
    if path.messages_by_kind:
        kinds = "  ".join(
            f"{kind}={count}" for kind, count in path.messages_by_kind.items()
        )
        lines.append(f"messages on path by kind: {kinds}")
    if path.messages_by_act:
        acts = "  ".join(
            f"{act}={count}" for act, count in path.messages_by_act.items()
        )
        lines.append(f"messages on path by act: {acts}")
    lines.append(
        f"graph: {len(graph.events)} events, "
        f"{len(graph.message_edges)} message edges, "
        f"max clock {max(graph.clocks, default=0)}"
    )
    return "\n".join(lines)
