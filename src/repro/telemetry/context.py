"""Run context attached to exported traces.

A :class:`RunContext` names the configuration a trace came from —
algorithm, clique size, seed, engine, port-model mode — plus the
scenario coordinates (act, epoch) and batch lane when applicable.  It
rides in the JSONL header line and its mutable fields (``act``,
``epoch``) can be re-annotated mid-stream by scenario runners, so every
event line carries the coordinates active when it was written.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Mapping, Optional

__all__ = ["RunContext"]


@dataclass
class RunContext:
    """Where a trace came from: the run's identifying coordinates."""

    algorithm: Optional[str] = None
    n: Optional[int] = None
    seed: Optional[int] = None
    engine: Optional[str] = None       # sync | async | fast
    mode: Optional[str] = None         # fast engine: exact | scale
    scenario: Optional[str] = None
    act: Optional[int] = None          # scenario act index
    epoch: Optional[int] = None        # scenario epoch counter
    lane: Optional[int] = None         # fast engine batch lane
    params: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe dict, dropping unset (``None``/empty) fields."""
        out = {}
        for key, value in asdict(self).items():
            if value is None or (key == "params" and not value):
                continue
            out[key] = value
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunContext":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})
