"""Fast-engine observability: aggregate counters and the lane tracer.

The vectorized engine never materializes per-message Python objects, so
its telemetry is *aggregate by construction*: a :class:`FastTelemetry`
attached to a :class:`~repro.fastsync.FastSyncNetwork` collects
per-round send/survivor/decide tallies from inside
:meth:`~repro.fastsync.FastSyncNetwork.tick` and the accounting
primitives — a constant number of O(1)/O(batch) numpy reductions per
round, no per-event Python — and replays them as ``round``/``decide``
:class:`~repro.trace.TraceEvent` aggregates for the JSONL exporter.

For *event-level* cross-engine debugging, :func:`trace_fast_lane` runs
one exact-mode fast execution and then replays one lane on the
object-model engine over the **same wiring and seed schedule** (the
exact-mode equivalence contract), recording the full per-message trace.
The returned :class:`LaneTrace` carries both results, the object-side
events, and a field-by-field aggregate comparison — when the two engines
diverge, ``mismatches`` plus a trace diff localizes the first bad round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.trace.events import CompositeRecorder, MemoryRecorder, TraceEvent

__all__ = ["FastTelemetry", "LaneTrace", "trace_fast_lane"]

#: Aggregate events use this pseudo-node (they describe the whole lane).
AGGREGATE_NODE = -1


class FastTelemetry:
    """Lane-aware aggregate counters for one fast-engine execution.

    Attach via ``FastSyncNetwork(..., telemetry=FastTelemetry())`` (or
    ``run_fast_trial(..., telemetry=...)``).  Single runs record under
    lane ``0``; batch runs record one stream per lane.  All values are
    plain Python ints, so the object is JSON-safe after the run.
    """

    def __init__(self) -> None:
        self.n: Optional[int] = None
        self.batch: Optional[int] = None
        self.mode: Optional[str] = None
        # lane -> round -> {kind: count} / survivors / (round, leaders)
        self._sends: Dict[int, Dict[int, Dict[str, int]]] = {}
        self._survivors: Dict[int, Dict[int, int]] = {}
        self._decides: Dict[int, Tuple[int, Tuple[int, ...]]] = {}

    # ------------------------------------------------------------------ #
    # engine-facing hooks

    def bind(self, net: Any) -> None:
        if self.n is not None:
            raise RuntimeError("a FastTelemetry is single-use, like the network")
        self.n = net.n
        self.batch = net.batch
        self.mode = net.mode

    def on_tick(self, lane: int, round_no: int, survivors: int) -> None:
        self._survivors.setdefault(lane, {})[int(round_no)] = int(survivors)

    def on_send(self, lane: int, round_no: int, kind: str, count: int) -> None:
        if count <= 0:
            return
        per_round = self._sends.setdefault(lane, {}).setdefault(int(round_no), {})
        per_round[kind] = per_round.get(kind, 0) + int(count)

    def on_decide(self, lane: int, round_no: int, leaders: Sequence[int]) -> None:
        self._decides[lane] = (int(round_no), tuple(int(u) for u in leaders))

    # ------------------------------------------------------------------ #
    # results

    @property
    def lanes(self) -> List[int]:
        seen = set(self._sends) | set(self._survivors) | set(self._decides)
        return sorted(seen) or [0]

    def sends_by_round(self, lane: int = 0) -> Dict[int, int]:
        """Per-round totals — comparable to ``SyncMetrics.sends_by_round``."""
        return {
            r: sum(kinds.values())
            for r, kinds in sorted(self._sends.get(lane, {}).items())
        }

    def sends_by_round_kind(self, lane: int = 0) -> Dict[int, Dict[str, int]]:
        return {
            r: dict(kinds) for r, kinds in sorted(self._sends.get(lane, {}).items())
        }

    def messages_by_kind(self, lane: int = 0) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for kinds in self._sends.get(lane, {}).values():
            for kind, count in kinds.items():
                totals[kind] = totals.get(kind, 0) + count
        return dict(sorted(totals.items()))

    def survivors_by_round(self, lane: int = 0) -> Dict[int, int]:
        return dict(sorted(self._survivors.get(lane, {}).items()))

    def decide_round(self, lane: int = 0) -> Optional[int]:
        entry = self._decides.get(lane)
        return entry[0] if entry else None

    def events(self, lane: int = 0) -> List[TraceEvent]:
        """The lane's aggregate stream as trace events.

        One ``round`` event per executed round — ``detail`` is
        ``(sends, survivors, ((kind, count), ...))`` — plus one
        ``decide`` event per lane with the leader node tuple.
        """
        rounds = sorted(
            set(self._survivors.get(lane, {})) | set(self._sends.get(lane, {}))
        )
        out = []
        for r in rounds:
            kinds = self._sends.get(lane, {}).get(r, {})
            survivors = self._survivors.get(lane, {}).get(
                r, self.n if self.n is not None else 0
            )
            out.append(
                TraceEvent(
                    "round",
                    float(r),
                    AGGREGATE_NODE,
                    (sum(kinds.values()), survivors, tuple(sorted(kinds.items()))),
                )
            )
        entry = self._decides.get(lane)
        if entry is not None:
            when, leaders = entry
            out.append(TraceEvent("decide", float(when), AGGREGATE_NODE, (leaders,)))
        return out

    def as_dict(self, lane: int = 0) -> Dict[str, Any]:
        """JSON-safe summary of one lane's aggregate stream."""
        return {
            "mode": self.mode,
            "sends_by_round": {str(r): c for r, c in self.sends_by_round(lane).items()},
            "messages_by_kind": self.messages_by_kind(lane),
            "survivors_by_round": {
                str(r): c for r, c in self.survivors_by_round(lane).items()
            },
            "decide_round": self.decide_round(lane),
        }


@dataclass
class LaneTrace:
    """One sampled lane, executed on both engines over identical wiring."""

    lane: int
    fast_result: Any                    # FastRunResult of the sampled lane
    sync_result: Any                    # SyncRunResult of the object twin
    telemetry: FastTelemetry            # fast-side aggregate counters
    events: List[TraceEvent]            # object-side per-message events
    mismatches: List[str] = field(default_factory=list)

    @property
    def matches(self) -> bool:
        """Bit-exact aggregate agreement between the two engines."""
        return not self.mismatches


def _compare(fast: Any, telemetry: FastTelemetry, lane: int, sync: Any) -> List[str]:
    """Field-by-field aggregate comparison; one line per divergence."""
    out = []
    checks = [
        ("messages", fast.messages, sync.messages),
        ("last_send_round", fast.last_send_round, sync.last_send_round),
        ("rounds_executed", fast.rounds_executed, sync.rounds_executed),
        ("leader_ids", sorted(fast.leader_ids), sorted(sync.leader_ids)),
        ("messages_by_kind", dict(fast.messages_by_kind),
         dict(sync.metrics.messages_by_kind)),
        ("sends_by_round", dict(fast.sends_by_round),
         dict(sync.metrics.sends_by_round)),
        ("telemetry/sends_by_round", telemetry.sends_by_round(lane),
         dict(sync.metrics.sends_by_round)),
    ]
    for name, a, b in checks:
        if a != b:
            out.append(f"{name}: fast={a!r} object={b!r}")
    return out


def trace_fast_lane(
    n: int,
    algorithm: str,
    *,
    seed: int = 0,
    seeds: Optional[Sequence[int]] = None,
    lane: int = 0,
    ids: Optional[Sequence[int]] = None,
    params: Optional[Dict[str, Any]] = None,
    max_rounds: Optional[int] = None,
    recorder: Optional[Any] = None,
) -> LaneTrace:
    """Run one lane on both engines over identical wiring (exact mode).

    ``algorithm`` is a registry name with both a fast port and an
    object-model implementation (simultaneous wake-up only).  The fast
    engine runs first — single run, or batched with ``seeds`` — then the
    sampled ``lane`` is replayed on :class:`~repro.sync.SyncNetwork`
    over :meth:`~repro.fastsync.FastSyncNetwork.port_map` with the same
    seed, which by the exact-mode contract consumes identical
    randomness.  The object side records full per-message events
    (``recorder`` is fanned in as well, e.g. a
    :class:`~repro.telemetry.JsonlRecorder`), and ``mismatches`` lists
    any aggregate divergence between the two executions.
    """
    from repro.core import get_algorithm
    from repro.fastsync import FastSyncNetwork, get_fast_algorithm
    from repro.sync.engine import SyncNetwork

    params = dict(params or {})
    telemetry = FastTelemetry()
    if seeds is not None:
        seeds = [int(s) for s in seeds]
        if not 0 <= lane < len(seeds):
            raise ValueError(f"lane {lane} out of range for {len(seeds)} seeds")
        net = FastSyncNetwork(
            n, ids=ids, seeds=seeds, mode="exact", max_rounds=max_rounds,
            telemetry=telemetry,
        )
        fast_results = net.run(get_fast_algorithm(algorithm)(**params))
        fast_result = fast_results[lane]
        lane_seed = seeds[lane]
        port_map = net.port_map(lane)
    else:
        if lane != 0:
            raise ValueError("single runs have exactly one lane (lane=0)")
        net = FastSyncNetwork(
            n, ids=ids, seed=seed, mode="exact", max_rounds=max_rounds,
            telemetry=telemetry,
        )
        fast_result = net.run(get_fast_algorithm(algorithm)(**params))
        lane_seed = seed
        port_map = net.port_map()

    memory = MemoryRecorder()
    twin_recorder: Any = memory
    if recorder is not None:
        twin_recorder = CompositeRecorder(memory, recorder)
    twin = SyncNetwork(
        n,
        get_algorithm(algorithm).make(**params),
        ids=ids,
        seed=lane_seed,
        port_map=port_map,
        max_rounds=max_rounds,
        recorder=twin_recorder,
    )
    sync_result = twin.run()
    return LaneTrace(
        lane=lane,
        fast_result=fast_result,
        sync_result=sync_result,
        telemetry=telemetry,
        events=memory.events,
        mismatches=_compare(fast_result, telemetry, lane, sync_result),
    )
