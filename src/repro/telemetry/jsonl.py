"""Schema-versioned JSONL trace export.

One trace file is a header line followed by one JSON object per event::

    {"schema": "repro.trace/1", "context": {"algorithm": "...", ...}}
    {"k": "send", "t": 1.0, "u": 0, "d": [...]}
    ...

The header carries the :class:`~repro.telemetry.RunContext`; event lines
carry the kind/when/node/detail of one :class:`~repro.trace.TraceEvent`,
plus any stream annotations (scenario act/epoch) active when the event
was written.  Payload details are encoded with a small tagged scheme so
:func:`load_trace` round-trips them exactly:

* tuples become ``{"%t": [...]}`` (plain JSON lists stay lists),
* :class:`~repro.common.Decision` members become ``{"%D": name}``,
* dicts become ``{"%m": {...}}`` (string keys only),
* anything else degrades to ``{"%r": repr(value)}`` — lossy by design;
  the repr string is what comes back.

:class:`JsonlRecorder` implements the full recorder hook protocol, so it
plugs in anywhere a recorder goes today (engines, failover trials,
scenario runners, ``CompositeRecorder`` fan-outs).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, List, Optional, Sequence, Union

from repro.common import Decision
from repro.telemetry.context import RunContext
from repro.trace.events import EventRecorder, TraceEvent

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "JsonlRecorder",
    "Trace",
    "TraceSchemaError",
    "load_trace",
    "dump_events",
]

SCHEMA_VERSION = 1
SCHEMA = f"repro.trace/{SCHEMA_VERSION}"


class TraceSchemaError(ValueError):
    """The file is not a (supported) repro trace."""


def _encode(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"%t": [_encode(v) for v in value]}
    if isinstance(value, list):
        return [_encode(v) for v in value]
    if isinstance(value, Decision):
        return {"%D": value.name}
    if isinstance(value, dict):
        return {"%m": {str(k): _encode(v) for k, v in value.items()}}
    return {"%r": repr(value)}


def _decode(value: Any) -> Any:
    if isinstance(value, list):
        return [_decode(v) for v in value]
    if isinstance(value, dict):
        if "%t" in value:
            return tuple(_decode(v) for v in value["%t"])
        if "%D" in value:
            return Decision[value["%D"]]
        if "%m" in value:
            return {k: _decode(v) for k, v in value["%m"].items()}
        if "%r" in value:
            return value["%r"]
    return value


class JsonlRecorder(EventRecorder):
    """Streams every hook to a JSONL file as it happens.

    ``sink`` is a path or an open text file.  ``context`` (a
    :class:`RunContext` or plain dict) goes in the header line;
    :meth:`annotate` sets per-event fields (e.g. scenario ``act`` and
    ``epoch``) attached to every subsequent line; ``kinds`` filters like
    every other recorder.  Use as a context manager, or :meth:`close`
    explicitly, to flush the underlying file.
    """

    def __init__(
        self,
        sink: Union[str, IO[str]],
        *,
        context: Union[RunContext, Dict[str, Any], None] = None,
        kinds: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(kinds)
        if isinstance(sink, str):
            self._fh: IO[str] = open(sink, "w")
            self._owns = True
        else:
            self._fh = sink
            self._owns = False
        if isinstance(context, RunContext):
            context = context.as_dict()
        self.context = dict(context or {})
        self._annotations: Dict[str, Any] = {}
        self.events_written = 0
        self._fh.write(json.dumps({"schema": SCHEMA, "context": _encode(self.context)},
                                  sort_keys=True) + "\n")

    def annotate(self, **fields: Any) -> None:
        """Attach ``fields`` to every event written from now on.

        A field set to ``None`` is cleared.  Scenario runners use this to
        stamp the act/epoch coordinates onto mid-scenario events.
        """
        for key, value in fields.items():
            if value is None:
                self._annotations.pop(key, None)
            else:
                self._annotations[key] = value

    def emit(self, event: TraceEvent) -> None:
        """Write one ready-made event (fast-engine aggregates use this)."""
        line: Dict[str, Any] = {
            "k": event.kind,
            "t": event.when,
            "u": event.node,
            "d": _encode(tuple(event.detail)),
        }
        if self._annotations:
            line["a"] = _encode(dict(self._annotations))
        self._fh.write(json.dumps(line, sort_keys=True) + "\n")
        self.events_written += 1

    def _record(self, event: TraceEvent) -> None:
        self.emit(event)

    def close(self) -> None:
        if self._owns:
            self._fh.close()
        else:
            self._fh.flush()

    def __enter__(self) -> "JsonlRecorder":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


@dataclass
class Trace:
    """One loaded trace: header context plus the event stream."""

    schema: str
    context: Dict[str, Any]
    events: List[TraceEvent]
    #: Per-event stream annotations (``{}`` when none) — same length as
    #: ``events``; scenario traces carry ``act``/``epoch`` here.
    annotations: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def run_context(self) -> RunContext:
        return RunContext.from_dict(self.context)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]


def _parse_header(line: str, where: str) -> Dict[str, Any]:
    try:
        header = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceSchemaError(f"{where}: header line is not JSON: {exc}") from None
    if not isinstance(header, dict) or "schema" not in header:
        raise TraceSchemaError(f"{where}: missing schema header line")
    schema = header["schema"]
    if not str(schema).startswith("repro.trace/"):
        raise TraceSchemaError(f"{where}: unknown schema {schema!r}")
    version = str(schema).split("/", 1)[1]
    if not version.isdigit() or int(version) > SCHEMA_VERSION:
        raise TraceSchemaError(
            f"{where}: schema {schema!r} is newer than supported ({SCHEMA})"
        )
    return header


def load_trace(source: Union[str, IO[str]]) -> Trace:
    """Load one JSONL trace written by :class:`JsonlRecorder`.

    ``source`` is a path or an open text file.  Raises
    :class:`TraceSchemaError` for missing/foreign/newer headers and for
    malformed event lines.
    """
    if isinstance(source, str):
        with open(source) as fh:
            return _load(fh, source)
    return _load(source, getattr(source, "name", "<trace>"))


def _load(fh: IO[str], where: str) -> Trace:
    lines = [line for line in fh if line.strip()]
    if not lines:
        raise TraceSchemaError(f"{where}: empty file, not a trace")
    header = _parse_header(lines[0], where)
    events: List[TraceEvent] = []
    annotations: List[Dict[str, Any]] = []
    for i, line in enumerate(lines[1:], start=2):
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceSchemaError(f"{where}:{i}: not JSON: {exc}") from None
        try:
            detail = _decode(payload["d"])
            events.append(
                TraceEvent(
                    kind=str(payload["k"]),
                    when=float(payload["t"]),
                    node=int(payload["u"]),
                    detail=detail if isinstance(detail, tuple) else tuple(detail),
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceSchemaError(f"{where}:{i}: malformed event: {exc}") from None
        annotations.append(_decode(payload.get("a", {})) or {})
    return Trace(
        schema=str(header["schema"]),
        context=_decode(header.get("context", {})) or {},
        events=events,
        annotations=annotations,
    )


def dump_events(
    sink: Union[str, IO[str]],
    events: Iterable[TraceEvent],
    *,
    context: Union[RunContext, Dict[str, Any], None] = None,
) -> int:
    """Write ready-made events as one trace file; returns the count."""
    with JsonlRecorder(sink, context=context) as rec:
        for event in events:
            rec.emit(event)
        return rec.events_written
