"""Per-run metrics: counters, gauges and histograms.

A :class:`MetricsRegistry` is a small, dependency-free aggregation
surface modeled on production metrics APIs: named counters (monotonic),
gauges (last value wins) and histograms (summary statistics over
observations).  :func:`run_metrics` derives the standard election
metrics from any engine result — messages per round, rounds to decide,
per-phase message breakdown, tampered/dropped deliveries — and
``analysis.runner`` merges them into ``RunRecord.extra["metrics"]``, so
every sweep, bench and scenario gets them for free.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "run_metrics"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """A point-in-time value (last set wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary statistics over observed values."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named counters/gauges/histograms for one run.

    Access creates on first use (``registry.counter("messages").inc()``);
    :meth:`as_dict` flattens everything into the JSON-safe layout stored
    under ``RunRecord.extra["metrics"]``.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        return self._histograms.setdefault(name, Histogram())

    def as_dict(self) -> Dict[str, Any]:
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.as_dict() for k, h in sorted(self._histograms.items())
            },
        }

    def merge(self, other: Any) -> None:
        """Fold another registry (or its :meth:`as_dict` payload) into this one.

        Counters add, gauges take the incoming value when set (last merge
        wins — merge in a deterministic order), histogram summaries
        combine exactly (count/total add, min/max extend).  The dict form
        is what sweep worker processes ship back to the parent, so the
        scheduler can aggregate per-worker metric streams without
        pickling live registries.
        """
        payload = other.as_dict() if isinstance(other, MetricsRegistry) else other
        for name, value in payload.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in payload.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).set(value)
        for name, summary in payload.get("histograms", {}).items():
            hist = self.histogram(name)
            count = int(summary.get("count", 0))
            if not count:
                continue
            hist.count += count
            hist.total += float(summary.get("total", 0.0))
            for bound, pick in (("min", min), ("max", max)):
                incoming = summary.get(bound)
                if incoming is None:
                    continue
                current = getattr(hist, bound)
                setattr(
                    hist,
                    bound,
                    incoming if current is None else pick(current, incoming),
                )


def run_metrics(result: Any, *, failover_latency: Optional[float] = None) -> MetricsRegistry:
    """The standard election metrics of one engine result.

    Works uniformly over ``SyncRunResult``, ``AsyncRunResult`` and
    ``FastRunResult`` (duck-typed: absent quantities are simply not
    reported).  The ``messages`` counter equals the run's total message
    count — the same number :class:`~repro.analysis.RunRecord` carries —
    which the telemetry tests pin down.
    """
    registry = MetricsRegistry()
    registry.counter("messages").inc(int(result.messages))
    registry.gauge("leaders").set(len(result.leaders))
    decided = getattr(result, "decided_count", None)
    if decided is not None:
        registry.gauge("decided").set(int(decided))

    # Rounds to decide / time span.  Sync-like results count rounds;
    # async results report the continuous time span instead.
    rounds = getattr(result, "rounds_executed", None)
    if rounds is not None:
        registry.gauge("rounds_to_decide").set(int(rounds))
    last_send = getattr(result, "last_send_round", None)
    if last_send is not None:
        registry.gauge("last_send_round").set(int(last_send))
    time_span = getattr(result, "time", None)
    if time_span is not None:
        registry.gauge("time_span").set(float(time_span))

    # Per-phase breakdown + per-round histogram.  Fast results carry the
    # dicts inline; object results carry them on ``result.metrics``.
    by_kind = getattr(result, "messages_by_kind", None)
    by_round = getattr(result, "sends_by_round", None)
    inner = getattr(result, "metrics", None)
    if by_kind is None and inner is not None:
        by_kind = getattr(inner, "messages_by_kind", None)
    if by_round is None and inner is not None:
        by_round = getattr(inner, "sends_by_round", None)
    if by_kind:
        for kind, count in by_kind.items():
            registry.counter(f"messages[{kind}]").inc(int(count))
    if by_round:
        registry.histogram("messages_per_round").observe_many(by_round.values())

    # Failure accounting, when a fault plan (or crash schedule) ran.
    crashed = getattr(result, "crashed", None)
    if crashed:
        registry.counter("crashes").inc(len(crashed))
    fm = getattr(result, "fault_metrics", None)
    if fm is not None:
        registry.counter("dropped_deliveries").inc(int(fm.dropped_messages))
        registry.counter("duplicated_deliveries").inc(int(fm.duplicated_messages))
        registry.counter("tampered_deliveries").inc(int(fm.tampered_messages))
    if failover_latency is not None:
        registry.gauge("failover_latency").set(float(failover_latency))
    return registry
