"""Wall-clock phase profiling for the vectorized kernels.

A :class:`PhaseProfiler` accumulates named wall-clock buckets —
``sampling`` (distinct-target generation), ``scatter`` (referee
``maximum.at`` reductions), ``compaction`` (survivor pruning), plus
whatever a caller wraps.  The fast engine and the vectorized ports call
:meth:`FastSyncNetwork.profile` around their kernels; with no profiler
attached that hook is a shared no-op context, so the disabled path adds
one cheap call per phase per round (the telemetry-overhead bench guards
the budget).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Tuple

__all__ = ["PhaseProfiler", "NULL_PROFILE"]


class _NullPhase:
    """Shared do-nothing context for the profiler-disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *_exc: Any) -> None:
        return None


#: The singleton no-op phase; ``net.profile(...)`` returns this when no
#: profiler is attached, so disabled profiling allocates nothing.
NULL_PROFILE = _NullPhase()


class _Phase:
    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Phase":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc: Any) -> None:
        self._profiler.add(self._name, time.perf_counter() - self._start)


class PhaseProfiler:
    """Accumulates per-phase call counts and wall-clock totals."""

    def __init__(self) -> None:
        self._calls: Dict[str, int] = {}
        self._totals: Dict[str, float] = {}

    def phase(self, name: str) -> _Phase:
        """A context manager timing one occurrence of ``name``."""
        return _Phase(self, name)

    def add(self, name: str, seconds: float) -> None:
        self._calls[name] = self._calls.get(name, 0) + 1
        self._totals[name] = self._totals.get(name, 0.0) + seconds

    @property
    def phases(self) -> List[str]:
        return sorted(self._totals)

    def total(self, name: str) -> float:
        return self._totals.get(name, 0.0)

    def calls(self, name: str) -> int:
        return self._calls.get(name, 0)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-safe ``{phase: {"calls": k, "total_s": t}}`` summary."""
        return {
            name: {"calls": self._calls[name], "total_s": self._totals[name]}
            for name in self.phases
        }

    def summary(self, *, min_share: float = 0.0) -> List[Tuple[str, int, float, float]]:
        """``(phase, calls, total_s, share)`` rows, largest first."""
        grand = sum(self._totals.values()) or 1.0
        rows = [
            (name, self._calls[name], total, total / grand)
            for name, total in self._totals.items()
            if total / grand >= min_share
        ]
        return sorted(rows, key=lambda row: row[2], reverse=True)
