"""Trace analysis: summary stats, diffs and the ASCII timeline.

These operate on loaded :class:`~repro.telemetry.Trace` objects and are
engine-agnostic: object-engine traces carry per-message ``send`` events,
fast-engine traces carry per-round ``round`` aggregates, and both reduce
to the same per-round send totals — which is what :func:`diff_traces`
compares to localize the first round where two runs part ways (the
natural tool for pinning down a fast-vs-object equivalence failure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.telemetry.jsonl import Trace
from repro.trace.events import TraceEvent

__all__ = [
    "TraceStats",
    "trace_stats",
    "TraceDiff",
    "diff_traces",
    "render_timeline",
    "trace_lanes",
    "filter_lane",
]


def _round_of(event: TraceEvent) -> int:
    """The integer round/time bucket an event belongs to."""
    return int(event.when)


def trace_lanes(trace: Trace) -> List[int]:
    """The batch lanes annotated in a trace (empty: single-lane).

    Batched fast-engine exports stamp every event line with its lane
    (``{"a": {"lane": k}}``); single runs carry no lane annotations.
    """
    lanes = {
        annotation["lane"]
        for annotation in trace.annotations
        if "lane" in annotation
    }
    return sorted(int(lane) for lane in lanes)


def filter_lane(trace: Trace, lane: int) -> Trace:
    """A view of one batch lane: events whose ``lane`` annotation matches.

    Events with no lane annotation (single-lane traces) belong to lane
    ``0``, so filtering an unannotated trace by lane 0 is the identity.
    """
    events: List[TraceEvent] = []
    annotations = []
    for i, event in enumerate(trace.events):
        annotation = trace.annotations[i] if i < len(trace.annotations) else {}
        if int(annotation.get("lane", 0)) != int(lane):
            continue
        events.append(event)
        annotations.append(annotation)
    return Trace(
        schema=trace.schema,
        context=trace.context,
        events=events,
        annotations=annotations,
    )


def sends_per_round(trace: Trace) -> Dict[int, int]:
    """Per-round send totals, from either event style.

    ``round`` aggregates (fast engine) take precedence; otherwise the
    per-message ``send`` events are bucketed by integer round (async
    traces bucket by whole time units).
    """
    aggregates = trace.of_kind("round")
    if aggregates:
        totals: Dict[int, int] = {}
        for e in aggregates:
            if e.detail[0]:
                r = _round_of(e)
                totals[r] = totals.get(r, 0) + int(e.detail[0])
        return totals
    out: Dict[int, int] = {}
    for e in trace.of_kind("send"):
        r = _round_of(e)
        out[r] = out.get(r, 0) + 1
    return out


def messages_by_kind(trace: Trace) -> Dict[str, int]:
    """Per-payload-kind totals, from either event style."""
    aggregates = trace.of_kind("round")
    out: Dict[str, int] = {}
    if aggregates:
        for e in aggregates:
            for kind, count in e.detail[2]:
                out[kind] = out.get(kind, 0) + int(count)
        return dict(sorted(out.items()))
    for e in trace.of_kind("send"):
        payload = e.detail[3] if len(e.detail) > 3 else None
        kind = getattr(payload, "kind", None)
        if kind is None and isinstance(payload, tuple) and payload:
            kind = payload[0]
        key = str(kind) if kind is not None else "?"
        out[key] = out.get(key, 0) + 1
    return dict(sorted(out.items()))


@dataclass
class TraceStats:
    """Summary of one trace."""

    events: int
    by_kind: Dict[str, int]
    nodes: int
    messages: int
    rounds: int
    first_when: Optional[float]
    last_when: Optional[float]
    sends_by_round: Dict[int, int]
    payload_kinds: Dict[str, int]
    decides: int
    crashes: int
    tampered: int


def trace_stats(trace: Trace) -> TraceStats:
    events = trace.events
    by_kind: Dict[str, int] = {}
    for e in events:
        by_kind[e.kind] = by_kind.get(e.kind, 0) + 1
    per_round = sends_per_round(trace)
    nodes = {e.node for e in events if e.node >= 0}
    return TraceStats(
        events=len(events),
        by_kind=dict(sorted(by_kind.items())),
        nodes=len(nodes),
        messages=sum(per_round.values()),
        rounds=max(per_round) if per_round else 0,
        first_when=min((e.when for e in events), default=None),
        last_when=max((e.when for e in events), default=None),
        sends_by_round=per_round,
        payload_kinds=messages_by_kind(trace),
        decides=by_kind.get("decide", 0),
        crashes=by_kind.get("crash", 0),
        tampered=by_kind.get("tamper", 0),
    )


@dataclass
class TraceDiff:
    """Where two traces part ways, at per-round aggregate granularity."""

    identical: bool
    first_diff_round: Optional[int] = None
    counts_a: Optional[int] = None      # sends at the diverging round
    counts_b: Optional[int] = None
    context_diffs: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def summary(self) -> str:
        if self.identical:
            return "traces agree (per-round send totals and payload kinds match)"
        if self.first_diff_round is not None:
            return (
                f"first divergence at round {self.first_diff_round}: "
                f"{self.counts_a} vs {self.counts_b} sends"
            )
        return "; ".join(self.notes) or "traces differ"


def diff_traces(a: Trace, b: Trace) -> TraceDiff:
    """Compare two traces and localize the first differing round."""
    context_diffs = []
    for key in sorted(set(a.context) | set(b.context)):
        va, vb = a.context.get(key), b.context.get(key)
        if va != vb:
            context_diffs.append(f"context[{key}]: {va!r} vs {vb!r}")
    rounds_a = sends_per_round(a)
    rounds_b = sends_per_round(b)
    first_diff = None
    ca = cb = None
    for r in sorted(set(rounds_a) | set(rounds_b)):
        if rounds_a.get(r, 0) != rounds_b.get(r, 0):
            first_diff, ca, cb = r, rounds_a.get(r, 0), rounds_b.get(r, 0)
            break
    notes = []
    kinds_a, kinds_b = messages_by_kind(a), messages_by_kind(b)
    if kinds_a != kinds_b:
        for kind in sorted(set(kinds_a) | set(kinds_b)):
            if kinds_a.get(kind, 0) != kinds_b.get(kind, 0):
                notes.append(
                    f"kind {kind}: {kinds_a.get(kind, 0)} vs {kinds_b.get(kind, 0)}"
                )
    # Event counts only signal divergence between same-style traces: a
    # per-message trace and an aggregate trace of the same run differ in
    # event count structurally, not semantically.
    if bool(a.of_kind("round")) == bool(b.of_kind("round")):
        if len(a.events) != len(b.events):
            notes.append(f"event counts: {len(a.events)} vs {len(b.events)}")
    identical = first_diff is None and not notes
    return TraceDiff(
        identical=identical,
        first_diff_round=first_diff,
        counts_a=ca,
        counts_b=cb,
        context_diffs=context_diffs,
        notes=notes,
    )


#: Timeline glyph per event kind, later entries win within one cell.
_GLYPHS: List[Tuple[str, str]] = [
    ("deliver", "r"),
    ("wake", "w"),
    ("send", "S"),
    ("tamper", "T"),
    ("decide", "D"),
    ("crash", "X"),
]
_PRIORITY = {kind: i for i, (kind, _) in enumerate(_GLYPHS)}
_GLYPH = dict(_GLYPHS)


def render_timeline(
    trace: Trace,
    *,
    max_nodes: int = 40,
    max_rounds: int = 100,
    lane: Optional[int] = None,
) -> str:
    """An ASCII per-node timeline: rows are nodes, columns are rounds.

    Cell glyphs: ``S`` send, ``r`` receive, ``w`` wake, ``D`` decide,
    ``X`` crash, ``T`` tamper (highest-priority event wins per cell).
    Long traces are windowed to the last ``max_rounds`` rounds and the
    first ``max_nodes`` nodes, with a note when truncated.

    Batched fast traces interleave their lanes; ``lane=`` renders just
    one (see :func:`filter_lane`), and the header names the lanes either
    way so an interleaved rendering is recognisable as such.
    """
    lanes = trace_lanes(trace)
    lane_header = None
    if lane is not None:
        if lanes and lane not in lanes:
            return f"(lane {lane} not in this trace; lanes: {lanes})"
        trace = filter_lane(trace, lane)
        lane_header = f"lane {lane}" + (f" of lanes {lanes}" if lanes else "")
    elif len(lanes) > 1:
        lane_header = (
            f"lanes {lanes} interleaved (pass lane= to filter)"
        )
    events = [e for e in trace.events if e.node >= 0]
    if not events:
        per_round = sends_per_round(trace)
        if not per_round:
            return "(no per-node events in this trace)"
        lines = [] if lane_header is None else [lane_header]
        lines.append("aggregate trace (no per-node events); sends per round:")
        peak = max(per_round.values())
        for r in sorted(per_round):
            bar = "#" * max(1, round(60 * per_round[r] / peak))
            lines.append(f"  round {r:>4}: {bar} {per_round[r]}")
        return "\n".join(lines)
    nodes = sorted({e.node for e in events})
    rounds = sorted({_round_of(e) for e in events})
    notes = []
    if len(rounds) > max_rounds:
        rounds = rounds[-max_rounds:]
        notes.append(f"(showing the last {max_rounds} rounds)")
    if len(nodes) > max_nodes:
        nodes = nodes[:max_nodes]
        notes.append(f"(showing the first {max_nodes} of {len({e.node for e in events})} nodes)")
    round_col = {r: i for i, r in enumerate(rounds)}
    grid = {u: ["."] * len(rounds) for u in nodes}
    for e in events:
        col = round_col.get(_round_of(e))
        if col is None or e.node not in grid:
            continue
        cell = grid[e.node][col]
        if cell == "." or _PRIORITY[e.kind] > _PRIORITY.get(
            next((k for k, g in _GLYPHS if g == cell), "deliver"), -1
        ):
            grid[e.node][col] = _GLYPH[e.kind]
    width = max(len(str(u)) for u in nodes)
    header = " " * (width + 7) + "".join(str(r % 10) for r in rounds)
    lines = [] if lane_header is None else [lane_header]
    lines.append(
        f"rounds {rounds[0]}..{rounds[-1]} (column = round, digit = round mod 10)"
    )
    lines.append(header)
    for u in nodes:
        lines.append(f"node {u:>{width}}  " + "".join(grid[u]))
    lines.append("legend: S send  r receive  w wake  D decide  X crash  T tamper")
    lines.extend(notes)
    return "\n".join(lines)
