"""Structured execution traces.

Both engines accept a ``recorder`` with (a subset of) the hooks

* ``on_send(time_or_round, u, port, v, peer_port, payload)``
* ``on_deliver(time, v, port, payload)`` (asynchronous engine only)
* ``on_wake(time_or_round, u)``
* ``on_decide(time_or_round, u, decision, output)``

This package provides ready-made recorders: an in-memory event log for
tests and debugging, a printing recorder for the examples, and a
composite that fans hooks out to several recorders (e.g. a communication
graph plus an event log).
"""

from repro.trace.events import (
    EVENT_KINDS,
    CompositeRecorder,
    EventRecorder,
    MemoryRecorder,
    PrintRecorder,
    TraceEvent,
)

__all__ = [
    "TraceEvent",
    "EVENT_KINDS",
    "EventRecorder",
    "MemoryRecorder",
    "PrintRecorder",
    "CompositeRecorder",
]
