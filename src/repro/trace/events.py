"""Recorder implementations for engine hooks."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

__all__ = [
    "TraceEvent",
    "EVENT_KINDS",
    "EventRecorder",
    "MemoryRecorder",
    "PrintRecorder",
    "CompositeRecorder",
]

#: Every hook the engines may call; ``deliver`` is async-engine only.
EVENT_KINDS = ("send", "deliver", "wake", "decide", "crash", "tamper")


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    ``kind`` is one of ``send``, ``deliver``, ``wake``, ``decide``,
    ``crash``, ``tamper``; ``when`` is the round number (sync) or
    timestamp (async).  A ``tamper`` event records a Byzantine rewrite
    in flight: ``detail`` is ``(dst, original, delivered)`` — the
    payload the sender handed the network and the one the receiver will
    actually see (replayed stale copies appear here too, since the
    original send never carried them).
    """

    kind: str
    when: float
    node: int
    detail: tuple

    def __str__(self) -> str:
        return f"[{self.when:>7.2f}] {self.kind:<7} node={self.node} {self.detail}"


class EventRecorder:
    """Base recorder: turns every hook into one :class:`TraceEvent`.

    Subclasses implement :meth:`_record`; an optional ``kinds`` filter
    drops non-matching events *before* they are built, so filtered
    events cost nothing and never count toward any subclass bound.
    """

    def __init__(self, kinds: Optional[Sequence[str]] = None) -> None:
        self.kinds = set(kinds) if kinds else None

    def _record(self, event: TraceEvent) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _emit(self, kind: str, when, node: int, detail: tuple) -> None:
        if self.kinds is not None and kind not in self.kinds:
            return
        self._record(TraceEvent(kind, float(when), node, detail))

    def on_send(self, when, u, port, v, peer_port, payload) -> None:
        self._emit("send", when, u, (port, v, peer_port, payload))

    def on_deliver(self, when, v, port, payload) -> None:
        self._emit("deliver", when, v, (port, payload))

    def on_wake(self, when, u) -> None:
        self._emit("wake", when, u, ())

    def on_decide(self, when, u, decision, output) -> None:
        self._emit("decide", when, u, (decision, output))

    def on_crash(self, when, u) -> None:
        self._emit("crash", when, u, ())

    def on_tamper(self, when, u, v, original, delivered) -> None:
        self._emit("tamper", when, u, (v, original, delivered))


class MemoryRecorder(EventRecorder):
    """Collects every event in order; convenient in tests.

    ``max_events`` bounds the log for long scenario runs: once full, the
    *oldest* events are evicted (the recent tail is what failover
    analysis reads) and ``dropped_events`` counts the evictions.
    """

    def __init__(
        self,
        max_events: Optional[int] = None,
        kinds: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(kinds)
        if max_events is not None and max_events < 1:
            raise ValueError("need max_events >= 1")
        self.max_events = max_events
        self.dropped_events = 0
        self._events: List[TraceEvent] = []
        self._ring = deque(maxlen=max_events) if max_events is not None else None

    def _record(self, event: TraceEvent) -> None:
        if self._ring is None:
            self._events.append(event)
            return
        if len(self._ring) == self.max_events:
            self.dropped_events += 1
        self._ring.append(event)

    @property
    def events(self) -> List[TraceEvent]:
        """The recorded log (bounded mode: the most recent window)."""
        if self._ring is None:
            return self._events
        return list(self._ring)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def sends_from(self, node: int) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "send" and e.node == node]


class PrintRecorder(EventRecorder):
    """Prints events as they happen (capped), for the examples.

    Only events that pass the ``kinds`` filter count toward the cap, and
    the one-time suppression notice fires on the first *matching* event
    past the limit — filtered-out traffic can neither consume the budget
    nor trigger the notice.
    """

    def __init__(self, limit: int = 50, kinds: Optional[Sequence[str]] = None) -> None:
        super().__init__(kinds)
        self.limit = limit
        self._printed = 0

    def _record(self, event: TraceEvent) -> None:
        if self._printed < self.limit:
            print(event)
        elif self._printed == self.limit:
            print(f"... (suppressing further trace output after {self.limit} events)")
        self._printed += 1


class CompositeRecorder:
    """Fans every hook out to several recorders.

    Dispatch is by name: any ``on_*`` attribute resolves to a fan-out
    over the child recorders that implement it, so partial recorders
    keep working and new hooks need no changes here.  (Engines guard
    optional hooks with ``hasattr``, which this satisfies for every
    ``on_*`` name — a child missing the hook is simply skipped.)
    """

    def __init__(self, *recorders: Any) -> None:
        self.recorders = recorders

    def __getattr__(self, name: str) -> Callable[..., None]:
        if not name.startswith("on_"):
            raise AttributeError(name)
        hooks = [getattr(r, name) for r in self.recorders if hasattr(r, name)]

        def fanout(*args: Any) -> None:
            for hook in hooks:
                hook(*args)

        return fanout
