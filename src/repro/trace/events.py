"""Recorder implementations for engine hooks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

__all__ = ["TraceEvent", "MemoryRecorder", "PrintRecorder", "CompositeRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    ``kind`` is one of ``send``, ``deliver``, ``wake``, ``decide``,
    ``crash``, ``tamper``; ``when`` is the round number (sync) or
    timestamp (async).  A ``tamper`` event records a Byzantine rewrite
    in flight: ``detail`` is ``(dst, original, delivered)`` — the
    payload the sender handed the network and the one the receiver will
    actually see (replayed stale copies appear here too, since the
    original send never carried them).
    """

    kind: str
    when: float
    node: int
    detail: tuple

    def __str__(self) -> str:
        return f"[{self.when:>7.2f}] {self.kind:<7} node={self.node} {self.detail}"


class MemoryRecorder:
    """Collects every event in order; convenient in tests."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def on_send(self, when, u, port, v, peer_port, payload) -> None:
        self.events.append(TraceEvent("send", float(when), u, (port, v, peer_port, payload)))

    def on_deliver(self, when, v, port, payload) -> None:
        self.events.append(TraceEvent("deliver", float(when), v, (port, payload)))

    def on_wake(self, when, u) -> None:
        self.events.append(TraceEvent("wake", float(when), u, ()))

    def on_decide(self, when, u, decision, output) -> None:
        self.events.append(TraceEvent("decide", float(when), u, (decision, output)))

    def on_crash(self, when, u) -> None:
        self.events.append(TraceEvent("crash", float(when), u, ()))

    def on_tamper(self, when, u, v, original, delivered) -> None:
        self.events.append(TraceEvent("tamper", float(when), u, (v, original, delivered)))

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def sends_from(self, node: int) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "send" and e.node == node]


class PrintRecorder:
    """Prints events as they happen (capped), for the examples."""

    def __init__(self, limit: int = 50, kinds: Optional[Sequence[str]] = None) -> None:
        self.limit = limit
        self.kinds = set(kinds) if kinds else None
        self._printed = 0

    def _emit(self, event: TraceEvent) -> None:
        if self.kinds is not None and event.kind not in self.kinds:
            return
        if self._printed < self.limit:
            print(event)
        elif self._printed == self.limit:
            print(f"... (suppressing further trace output after {self.limit} events)")
        self._printed += 1

    def on_send(self, when, u, port, v, peer_port, payload) -> None:
        self._emit(TraceEvent("send", float(when), u, (port, v, peer_port, payload)))

    def on_deliver(self, when, v, port, payload) -> None:
        self._emit(TraceEvent("deliver", float(when), v, (port, payload)))

    def on_wake(self, when, u) -> None:
        self._emit(TraceEvent("wake", float(when), u, ()))

    def on_decide(self, when, u, decision, output) -> None:
        self._emit(TraceEvent("decide", float(when), u, (decision, output)))

    def on_crash(self, when, u) -> None:
        self._emit(TraceEvent("crash", float(when), u, ()))

    def on_tamper(self, when, u, v, original, delivered) -> None:
        self._emit(TraceEvent("tamper", float(when), u, (v, original, delivered)))


class CompositeRecorder:
    """Fans every hook out to several recorders."""

    def __init__(self, *recorders: Any) -> None:
        self.recorders = recorders

    def on_send(self, *args) -> None:
        for r in self.recorders:
            if hasattr(r, "on_send"):
                r.on_send(*args)

    def on_deliver(self, *args) -> None:
        for r in self.recorders:
            if hasattr(r, "on_deliver"):
                r.on_deliver(*args)

    def on_wake(self, *args) -> None:
        for r in self.recorders:
            if hasattr(r, "on_wake"):
                r.on_wake(*args)

    def on_decide(self, *args) -> None:
        for r in self.recorders:
            if hasattr(r, "on_decide"):
                r.on_decide(*args)

    def on_crash(self, *args) -> None:
        for r in self.recorders:
            if hasattr(r, "on_crash"):
                r.on_crash(*args)

    def on_tamper(self, *args) -> None:
        for r in self.recorders:
            if hasattr(r, "on_tamper"):
                r.on_tamper(*args)
