"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from tests.helpers import make_ids, run_sync  # noqa: F401  (re-exported)


@pytest.fixture
def rng():
    return random.Random(12345)
