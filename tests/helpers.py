"""Shared helpers for the test suite (imported as ``tests.helpers``)."""

from __future__ import annotations

import random

from repro.common import SimulationLimitExceeded
from repro.sync.engine import SyncNetwork


def make_ids(n: int, seed: int = 0, spread: int = 8) -> list:
    """A scrambled ID assignment from a Θ(n·spread) universe."""
    rng = random.Random(f"ids:{n}:{seed}")
    return rng.sample(range(1, spread * n + 1), n)


def run_sync(n, factory, *, seed=0, ids=None, awake=None, port_map=None, max_rounds=None):
    """One-liner synchronous run used throughout the tests."""
    net = SyncNetwork(
        n,
        factory,
        ids=ids,
        seed=seed,
        awake=awake,
        port_map=port_map,
        max_rounds=max_rounds,
    )
    return net.run()


#: FaultMetrics fields covered by the twin contract.  ``first_suspected``
#: is deliberately absent: it is detector-driven, and the vectorized
#: ports do not instantiate failure detectors.
FAULT_METRIC_FIELDS = (
    "crashes",
    "policy_kills",
    "suppressed_crashes",
    "dropped_messages",
    "duplicated_messages",
    "partition_blocked",
    "tampered_messages",
    "tampered_by_mode",
)


def _object_fault_plan(spec):
    """The FaultPlan the object twin runs under (crash masks lifted)."""
    plan = spec.effective_faults()
    if plan is None and spec.crashes is not None:
        from repro.faults import CrashFault, FaultPlan

        plan = FaultPlan(
            crashes=tuple(CrashFault(node=u, at=at) for u, at in spec.crashes)
        )
    return plan


def assert_twin_run(spec):
    """Execute one exact-mode spec on both engines; assert bit-identity.

    The differential oracle of the vectorized engine: the spec runs once
    on :class:`FastSyncNetwork` (``mode="exact"``, faults/crashes/roots
    taken from the spec) and once on the object engine wired to the very
    same port matrix, and every observable the two share must be
    bit-identical — winners, per-node outputs, message totals, per-kind
    and per-round send counts, round counters, survivor accounting and
    the full fault-metrics ledger.  ``halted_count`` and
    ``dropped_deliveries`` are engine-private (the folds do not model
    straggler bookkeeping) and stay out of the contract.

    A spec that stalls must stall on *both* engines: when the object twin
    raises :class:`SimulationLimitExceeded` the fast run must have raised
    it too, and the helper returns ``(None, None)``.  Otherwise it
    returns ``(fast_result, obj_result)`` for extra assertions.
    """
    from repro.analysis.runner import _fast_algorithm
    from repro.fastsync import FastSyncNetwork
    from repro.sweep.api import _object_factory

    if len(spec.seeds) != 1 or spec.batch is not None:
        raise ValueError("assert_twin_run compares one seed at a time")
    if spec.quorum:
        raise ValueError(
            "the quorum veto is an engine-level gate, not part of the "
            "bit-exact twin contract; compare quorum specs by hand"
        )
    seed = spec.seeds[0]
    fast_net = FastSyncNetwork(
        spec.n,
        ids=spec.ids,
        seed=seed,
        mode="exact",
        max_rounds=spec.max_rounds,
        crashes=spec.crashes,
        roots=spec.roots,
        faults=spec.effective_faults(),
    )
    port_map = fast_net.port_map()
    fast_stall = None
    fast = None
    try:
        fast = fast_net.run(_fast_algorithm(spec.algorithm, spec.params))
    except SimulationLimitExceeded as exc:
        fast_stall = exc
    awake = spec.roots if spec.roots is not None else spec.awake
    obj_net = SyncNetwork(
        spec.n,
        _object_factory(spec, "sync"),
        ids=spec.ids,
        seed=seed,
        awake=awake,
        port_map=port_map,
        max_rounds=spec.max_rounds,
        faults=_object_fault_plan(spec),
    )
    try:
        obj = obj_net.run()
    except SimulationLimitExceeded:
        assert fast_stall is not None, (
            "object engine stalled but the fast engine terminated"
        )
        return None, None
    assert fast_stall is None, (
        f"fast engine stalled but the object engine terminated: {fast_stall}"
    )
    assert fast.leaders == obj.leaders
    assert fast.leader_ids == obj.leader_ids
    assert fast.messages == obj.messages
    assert fast.rounds_executed == obj.rounds_executed
    assert fast.last_send_round == obj.last_send_round
    assert fast.decided_count == obj.decided_count
    assert fast.awake_count == obj.awake_count
    assert fast.messages_by_kind == dict(obj.metrics.messages_by_kind)
    assert fast.sends_by_round == dict(obj.metrics.sends_by_round)
    assert fast.crashed == obj.crashed
    if fast.outputs is not None:
        assert fast.outputs == obj.outputs
    if fast.fault_metrics is not None and obj.fault_metrics is not None:
        for name in FAULT_METRIC_FIELDS:
            assert getattr(fast.fault_metrics, name) == getattr(
                obj.fault_metrics, name
            ), f"fault_metrics.{name} diverged"
    return fast, obj
