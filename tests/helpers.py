"""Shared helpers for the test suite (imported as ``tests.helpers``)."""

from __future__ import annotations

import random

from repro.sync.engine import SyncNetwork


def make_ids(n: int, seed: int = 0, spread: int = 8) -> list:
    """A scrambled ID assignment from a Θ(n·spread) universe."""
    rng = random.Random(f"ids:{n}:{seed}")
    return rng.sample(range(1, spread * n + 1), n)


def run_sync(n, factory, *, seed=0, ids=None, awake=None, port_map=None, max_rounds=None):
    """One-liner synchronous run used throughout the tests."""
    net = SyncNetwork(
        n,
        factory,
        ids=ids,
        seed=seed,
        awake=awake,
        port_map=port_map,
        max_rounds=max_rounds,
    )
    return net.run()
