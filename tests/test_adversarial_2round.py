"""Theorem 4.1's 2-round algorithm under adversarial wake-up."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AdversarialTwoRoundElection
from repro.lowerbound import bounds
from repro.mathutil import ceil_sqrt
from repro.analysis import success_rate

from tests.helpers import make_ids, run_sync


class TestParameters:
    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            AdversarialTwoRoundElection(epsilon=0.0)
        with pytest.raises(ValueError):
            AdversarialTwoRoundElection(epsilon=1.0)

    def test_candidate_probability(self):
        algo = AdversarialTwoRoundElection(epsilon=math.exp(-4))
        assert algo.candidate_probability(256) == pytest.approx(4 / 16)


class TestCorrectness:
    def test_two_rounds(self):
        result = run_sync(
            512, lambda: AdversarialTwoRoundElection(epsilon=0.02), awake=[0], seed=1
        )
        assert result.last_send_round <= 2

    @pytest.mark.parametrize("roots", [[0], [1, 5, 9], list(range(64))])
    @pytest.mark.slow
    def test_whp_unique_leader_any_root_set(self, roots):
        results = [
            run_sync(
                512, lambda: AdversarialTwoRoundElection(epsilon=0.01), awake=roots, seed=s
            )
            for s in range(10)
        ]
        rate = success_rate(results, lambda r: r.unique_leader)
        assert rate >= 0.9, rate

    def test_all_nodes_wake_when_candidate_exists(self):
        for seed in range(5):
            result = run_sync(
                256, lambda: AdversarialTwoRoundElection(epsilon=0.01), awake=[3], seed=seed
            )
            if result.unique_leader:
                assert result.awake_count == 256
                assert result.decided_count == 256

    @pytest.mark.slow
    def test_all_roots_adversary_still_elects(self):
        # The adversary's nastiest set: every node is a root, so nobody
        # is *woken* by a message — candidacy must trigger on message
        # *receipt* (see the algorithm's reading note) or the run could
        # never elect anyone.
        results = [
            run_sync(
                256,
                lambda: AdversarialTwoRoundElection(epsilon=0.01),
                awake=list(range(256)),
                seed=s,
            )
            for s in range(10)
        ]
        rate = success_rate(results, lambda r: r.unique_leader)
        assert rate >= 0.9, rate

    def test_never_two_leaders(self):
        for seed in range(25):
            result = run_sync(
                128, lambda: AdversarialTwoRoundElection(epsilon=0.05), awake=[0], seed=seed
            )
            assert len(result.leaders) <= 1

    def test_explicit_agreement_on_success(self):
        for seed in range(5):
            result = run_sync(
                256, lambda: AdversarialTwoRoundElection(epsilon=0.01), awake=[0], seed=seed
            )
            if result.unique_leader:
                assert result.explicit_agreement()

    def test_no_dropped_deliveries(self):
        result = run_sync(
            128, lambda: AdversarialTwoRoundElection(epsilon=0.05), awake=[0, 1], seed=2
        )
        assert result.dropped_deliveries == 0

    @given(st.integers(16, 200), st.integers(0, 25))
    @settings(max_examples=25, deadline=None)
    def test_at_most_one_leader_property(self, n, seed):
        result = run_sync(
            n,
            lambda: AdversarialTwoRoundElection(epsilon=0.1),
            ids=make_ids(n, seed),
            awake=[seed % n],
            seed=seed,
        )
        assert len(result.leaders) <= 1


@pytest.mark.slow
class TestComplexity:
    def test_root_spray_is_sqrt_n(self):
        n = 400
        result = run_sync(
            n, lambda: AdversarialTwoRoundElection(epsilon=0.05), awake=[7], seed=0
        )
        assert result.metrics.sends_by_round[1] == ceil_sqrt(n)

    def test_worst_case_roots_message_bound(self):
        # All-but-candidates scenario: n/2 roots spraying sqrt(n) each.
        n = 256
        roots = list(range(n // 2))
        eps = 0.05
        totals = [
            run_sync(
                n, lambda: AdversarialTwoRoundElection(epsilon=eps), awake=roots, seed=s
            ).messages
            for s in range(5)
        ]
        mean = sum(totals) / len(totals)
        assert mean <= 4 * bounds.thm41_expected_messages(n, eps), mean

    def test_expected_messages_scale_like_n_to_1_5(self):
        # Fitted exponent over a sweep with *all* nodes as roots should
        # sit near 1.5 (the n^{3/2} term dominates the candidates' term).
        from repro.analysis import fit_power_law

        ns = [256, 1024, 4096]
        means = []
        for n in ns:
            totals = [
                run_sync(
                    n,
                    lambda: AdversarialTwoRoundElection(epsilon=0.05),
                    awake=list(range(n)),
                    seed=s,
                ).messages
                for s in range(3)
            ]
            means.append(sum(totals) / 3)
        fit = fit_power_law(ns, means)
        assert 1.3 <= fit.exponent <= 1.7, fit
