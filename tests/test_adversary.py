"""The component-capacity port adversary (repro.lowerbound.adversary)."""

import pytest

from repro.core import AfekGafniElection, ImprovedTradeoffElection, SmallIdElection
from repro.lowerbound import run_under_capacity_adversary
from repro.lowerbound.adversary import ComponentCapacityAdversary
from repro.lowerbound.commgraph import CommGraph
from repro.net.ports import LazyPortMap

from tests.helpers import make_ids


class TestPolicyMechanics:
    def test_prefers_in_component_targets(self):
        graph = CommGraph(6)
        policy = ComponentCapacityAdversary(graph)
        pm = LazyPortMap(6, policy)
        # Create a component {0, 1, 2} with 0 -> 1, 1 -> 2.
        v, _ = pm.resolve(0, 0)
        graph.add_edge(0, v)
        w, _ = pm.resolve(v, 1)  # port 0 of v is the back-link to node 0
        graph.add_edge(v, w)
        # Node 0 opens another port: must stay inside {0, v, w}: only w
        # is uncontacted by 0.
        target, _ = pm.resolve(0, 1)
        assert target == w
        assert policy.in_component_links >= 1

    def test_merges_smallest_component_when_capacity_exhausted(self):
        graph = CommGraph(5)
        policy = ComponentCapacityAdversary(graph)
        pm = LazyPortMap(5, policy)
        # 0-1 talk both ways: capacity of {0,1} is 0.
        t1, _ = pm.resolve(0, 0)
        graph.add_edge(0, t1)
        pm.resolve(t1, pm.resolve(0, 0)[1])  # ensure link both ways known
        graph.add_edge(t1, 0)
        target, _ = pm.resolve(0, 1)
        assert target not in (0, t1)
        assert policy.merge_links >= 1


class TestAlgorithmsSurviveAdversary:
    """Correctness must hold under ANY port mapping (Section 3.1)."""

    @pytest.mark.parametrize("ell", [3, 5])
    def test_improved_tradeoff(self, ell):
        n = 128
        ids = make_ids(n, seed=ell)
        result, trace = run_under_capacity_adversary(
            n, lambda: ImprovedTradeoffElection(ell=ell), ids=ids, seed=1
        )
        assert result.unique_leader
        assert result.elected_id == max(ids)

    def test_afek_gafni(self):
        n = 64
        result, _ = run_under_capacity_adversary(
            n, lambda: AfekGafniElection(ell=4), seed=2
        )
        assert result.unique_leader

    def test_small_id(self):
        n = 64
        result, _ = run_under_capacity_adversary(
            n, lambda: SmallIdElection(d=8, g=1), seed=0
        )
        assert result.unique_leader
        assert result.elected_id == 1


class TestGrowthTrace:
    def test_majority_requires_rounds(self):
        """The Theorem 3.8 mechanism: the adversary keeps components small,
        so a majority component appears only near the very end."""
        n = 256
        result, trace = run_under_capacity_adversary(
            n, lambda: ImprovedTradeoffElection(ell=5), seed=0
        )
        majority_round = trace.rounds_to_majority()
        assert majority_round is not None
        # Termination cannot precede the majority component (Cor. 3.7):
        assert majority_round <= result.last_send_round
        # and under the adversary it appears only in the final broadcast
        # round (the algorithm's compete traffic stays trapped).
        assert majority_round >= result.last_send_round - 1

    def test_growth_factor_bounded_by_message_rate(self):
        """Lemma 3.9's quantitative core: per-round component growth is
        at most ~2x the per-node message rate."""
        n = 256
        ell = 5
        result, trace = run_under_capacity_adversary(
            n, lambda: ImprovedTradeoffElection(ell=ell), seed=0
        )
        # f(n): messages per node per round (the algorithm's rate).
        f = max(1.0, result.messages / (n * result.last_send_round))
        algo = ImprovedTradeoffElection(ell=ell)
        max_referees = max(algo.referee_count(n, i) for i in range(1, algo.k - 1))
        for r, factor in zip(trace.rounds, trace.growth_factors()):
            if r < result.last_send_round:  # before the final broadcast
                assert factor <= 2 * max(max_referees, 2 * f) + 1, (r, factor)

    def test_trace_rounds_match_sends(self):
        n = 64
        result, trace = run_under_capacity_adversary(
            n, lambda: ImprovedTradeoffElection(ell=3), seed=4
        )
        assert set(trace.sends_by_round) == set(result.metrics.sends_by_round)

    def test_in_component_routing_dominates_early(self):
        """Most adversarial links are routed inside components (that is
        the point of capacity-first routing)."""
        n = 128
        _, trace = run_under_capacity_adversary(
            n, lambda: ImprovedTradeoffElection(ell=3), seed=0
        )
        assert trace.in_component_links > 0
        assert trace.merge_links > 0
