"""The adversary plan model and the Byzantine tamper runtime."""

import pytest

from repro.adversary import (
    AdversaryPlan,
    SlanderWindow,
    TamperRule,
    payload_kinds,
)
from repro.faults import (
    CrashFault,
    DetectorSpec,
    FaultPlan,
    FaultRuntime,
    make_detector,
)


def runtime_for(plan, n=6, seed=0):
    fault_plan = FaultPlan(adversary=plan)
    return FaultRuntime(fault_plan, n, list(range(1, n + 1)), seed)


class TestPlanValidation:
    def test_tamper_rule_modes(self):
        for mode in ("corrupt", "forge", "replay", "equivocate"):
            TamperRule(mode=mode)
        with pytest.raises(ValueError, match="unknown tamper mode"):
            TamperRule(mode="gaslight")

    def test_tamper_rule_params(self):
        with pytest.raises(ValueError, match="prob"):
            TamperRule(mode="corrupt", prob=0.0)
        with pytest.raises(ValueError, match="magnitude"):
            TamperRule(mode="corrupt", magnitude=0)
        with pytest.raises(ValueError, match="forge_id"):
            TamperRule(mode="corrupt", forge_id=99)
        with pytest.raises(ValueError, match="max_tampers"):
            TamperRule(mode="forge", max_tampers=0)

    def test_slander_window(self):
        with pytest.raises(ValueError, match="victim"):
            SlanderWindow(accuser=0, victims=())
        with pytest.raises(ValueError, match="slander itself"):
            SlanderWindow(accuser=0, victims=(0,))
        with pytest.raises(ValueError, match="distinct"):
            SlanderWindow(accuser=0, victims=(1, 1))
        with pytest.raises(ValueError, match="after its start"):
            SlanderWindow(accuser=0, victims=(1,), start=5.0, end=5.0)

    def test_plan_must_do_something(self):
        with pytest.raises(ValueError, match="must tamper or slander"):
            AdversaryPlan(byzantine=(0,))

    def test_wildcard_tampers_need_byzantine(self):
        with pytest.raises(ValueError, match="byzantine set"):
            AdversaryPlan(tampers=(TamperRule(mode="corrupt"),))

    def test_f_half_rejected(self):
        plan = AdversaryPlan(
            byzantine=(0, 1), tampers=(TamperRule(mode="corrupt"),)
        )
        with pytest.raises(ValueError, match="f >= n/2"):
            plan.validate_for(4)
        plan.validate_for(5)  # f = 2 < 2.5: fine

    def test_out_of_range_members(self):
        plan = AdversaryPlan(
            byzantine=(0,),
            slanders=(SlanderWindow(accuser=0, victims=(9,)),),
            tampers=(TamperRule(mode="corrupt"),),
        )
        with pytest.raises(ValueError, match="victim 9 out of range"):
            plan.validate_for(6)

    def test_fault_plan_rejects_non_plans(self):
        with pytest.raises(ValueError, match="AdversaryPlan"):
            FaultPlan(adversary="be evil")

    def test_adversarial_nodes_union(self):
        plan = AdversaryPlan(
            byzantine=(1,),
            tampers=(TamperRule(mode="corrupt", src=2),),
            slanders=(SlanderWindow(accuser=3, victims=(4,)),),
        )
        assert plan.adversarial_nodes == {1, 2, 3}
        assert plan.is_adversarial_sender(1)
        assert plan.is_adversarial_sender(2)
        assert not plan.is_adversarial_sender(3)  # accusers lie, not tamper


class TestPayloadKinds:
    def test_flat(self):
        assert payload_kinds(("compete", 7)) == ("compete",)
        assert payload_kinds("ping") == ("ping",)
        assert payload_kinds(42) == ("int",)

    def test_wrapped(self):
        wrapped = ("ree", 1, 0, ("compete", 7))
        assert payload_kinds(wrapped) == ("ree", "compete")

    def test_deeply_wrapped_keeps_ends(self):
        deep = ("outer", ("mid", ("inner", 3)))
        assert payload_kinds(deep) == ("outer", "inner")


class TestTamperRuntime:
    def test_corrupt_shifts_ints(self):
        plan = AdversaryPlan(
            byzantine=(0,), tampers=(TamperRule(mode="corrupt", magnitude=10),)
        )
        rt = runtime_for(plan)
        out = rt.delivered_payloads(0, 1, "compete", ("compete", 7), 0.0)
        assert out == [("compete", 17)]
        assert rt.metrics.tampered_messages == 1
        assert rt.metrics.tampered_by_mode == {"corrupt": 1}

    def test_corrupt_rewrites_innermost_only(self):
        """Authenticated envelopes: wrapper tags survive, payload ints move."""
        plan = AdversaryPlan(
            byzantine=(0,),
            tampers=(TamperRule(mode="corrupt", magnitude=1, kinds=("compete",)),),
        )
        rt = runtime_for(plan)
        wrapped = ("ree", 3, 1, ("compete", 7))
        out = rt.delivered_payloads(0, 1, "ree", wrapped, 0.0)
        assert out == [("ree", 3, 1, ("compete", 8))]

    def test_forge_swaps_sender_id(self):
        plan = AdversaryPlan(
            byzantine=(0,), tampers=(TamperRule(mode="forge"),)
        )
        rt = runtime_for(plan, n=6)  # ids 1..6; default forge id = 7
        out = rt.delivered_payloads(0, 2, "compete", ("compete", 1), 0.0)
        assert out == [("compete", 7)]
        # Fields not equal to the sender's id are left alone.
        out = rt.delivered_payloads(0, 2, "compete", ("compete", 5), 0.0)
        assert out == [("compete", 5)]

    def test_equivocate_differs_per_receiver(self):
        plan = AdversaryPlan(
            byzantine=(0,), tampers=(TamperRule(mode="equivocate", magnitude=1),)
        )
        rt = runtime_for(plan)
        to_1 = rt.delivered_payloads(0, 1, "rank", ("rank", 100), 0.0)
        to_2 = rt.delivered_payloads(0, 2, "rank", ("rank", 100), 0.0)
        assert to_1 != to_2
        assert to_1 == [("rank", 102)]
        assert to_2 == [("rank", 103)]

    def test_replay_redelivers_stale_link_traffic(self):
        plan = AdversaryPlan(
            byzantine=(0,), tampers=(TamperRule(mode="replay"),)
        )
        rt = runtime_for(plan)
        first = rt.delivered_payloads(0, 1, "a", ("a", 1), 0.0)
        assert first == [("a", 1)]  # nothing to replay yet
        second = rt.delivered_payloads(0, 1, "b", ("b", 2), 1.0)
        assert second == [("b", 2), ("a", 1)]  # stale copy rides along
        assert rt.metrics.tampered_by_mode == {"replay": 1}

    def test_honest_senders_untouched(self):
        plan = AdversaryPlan(
            byzantine=(0,), tampers=(TamperRule(mode="corrupt"),)
        )
        rt = runtime_for(plan)
        out = rt.delivered_payloads(3, 1, "compete", ("compete", 4), 0.0)
        assert out == [("compete", 4)]
        assert rt.metrics.tampered_messages == 0

    def test_kind_filter(self):
        plan = AdversaryPlan(
            byzantine=(0,),
            tampers=(TamperRule(mode="corrupt", kinds=("compete",)),),
        )
        rt = runtime_for(plan)
        assert rt.delivered_payloads(0, 1, "response", ("response",), 0.0) == [
            ("response",)
        ]
        assert rt.metrics.tampered_messages == 0

    def test_max_tampers_budget(self):
        plan = AdversaryPlan(
            byzantine=(0,),
            tampers=(TamperRule(mode="corrupt", max_tampers=2),),
        )
        rt = runtime_for(plan)
        for _ in range(2):
            rt.delivered_payloads(0, 1, "x", ("x", 1), 0.0)
        out = rt.delivered_payloads(0, 1, "x", ("x", 1), 0.0)
        assert out == [("x", 1)]  # budget spent
        assert rt.metrics.tampered_messages == 2

    def test_probabilistic_tampering_is_seed_deterministic(self):
        plan = AdversaryPlan(
            byzantine=(0,), tampers=(TamperRule(mode="corrupt", prob=0.5),)
        )

        def outcomes(seed):
            rt = runtime_for(plan, seed=seed)
            return [
                rt.delivered_payloads(0, 1, "x", ("x", 1), 0.0)[0]
                for _ in range(32)
            ]

        assert outcomes(1) == outcomes(1)
        assert outcomes(1) != outcomes(2)
        assert ("x", 2) in outcomes(1)  # some messages tampered
        assert ("x", 1) in outcomes(1)  # some left honest

    def test_dropped_messages_are_not_tampered(self):
        """Link-fault drops happen first; a dropped send delivers nothing."""
        from repro.faults import LinkFaults

        plan = FaultPlan(
            links=(LinkFaults(drop_prob=1.0),),
            adversary=AdversaryPlan(
                byzantine=(0,), tampers=(TamperRule(mode="corrupt"),)
            ),
        )
        rt = FaultRuntime(plan, 4, [1, 2, 3, 4], 0)
        assert rt.delivered_payloads(0, 1, "x", ("x", 1), 0.0) == []
        assert rt.metrics.tampered_messages == 0


class TestTamperTracing:
    def test_recorder_sees_rewrites_and_replays(self):
        """The trace layer must show what receivers actually got: every
        Byzantine rewrite (and replayed stale copy) emits a ``tamper``
        event alongside the honest ``send`` record."""
        from repro.faults import run_failover_trial

        plan = FaultPlan(
            adversary=AdversaryPlan(
                byzantine=(0,),
                tampers=(TamperRule(mode="forge", kinds=("compete",)),),
            ),
        )
        from repro.adversary import QuorumReElectionElection

        report = run_failover_trial(
            "sync", 6, lambda: QuorumReElectionElection(), plan, seed=0
        )
        tampers = [e for e in report.events if e.kind == "tamper"]
        fm = report.record.extra["result"].fault_metrics
        assert fm.tampered_messages > 0
        assert len(tampers) == fm.tampered_messages
        for event in tampers:
            assert event.node == 0  # only the Byzantine node rewrites
            _dst, original, delivered = event.detail
            assert original != delivered

    def test_honest_runs_emit_no_tamper_events(self):
        from repro.faults import DetectorSpec, ReElectionElection, run_failover_trial

        plan = FaultPlan(detector=DetectorSpec(kind="perfect", lag=1.0))
        report = run_failover_trial(
            "sync", 6, lambda: ReElectionElection(), plan, seed=0
        )
        assert not [e for e in report.events if e.kind == "tamper"]


class TestSlanderDetectors:
    def detector(self, plan, node, n=6, runtime=None):
        return make_detector(
            DetectorSpec(kind="perfect", lag=1.0), node, list(range(1, n + 1)),
            runtime, slanders=plan.slanders,
        )

    def plan(self, start=2.0, end=10.0):
        return AdversaryPlan(
            byzantine=(0,),
            slanders=(SlanderWindow(accuser=0, victims=(4,), start=start, end=end),),
        )

    def test_victims_suspected_during_window(self):
        det = self.detector(self.plan(), node=1)
        assert det.suspects(2.0) == frozenset()       # lag not yet elapsed
        assert det.suspects(3.0) == frozenset({5})    # victim id 5
        assert det.suspects(11.0) == frozenset()      # rumor forgiven

    def test_victim_trusts_itself(self):
        det = self.detector(self.plan(), node=4)
        assert det.suspects(5.0) == frozenset()

    def test_slander_dies_with_its_accuser(self):
        plan = FaultPlan(
            crashes=(CrashFault(node=0, at=1.0),), adversary=self.plan(start=2.0)
        )
        rt = FaultRuntime(plan, 6, list(range(1, 7)), 0)
        rt.note_crash(0, 1.0)
        det = make_detector(
            DetectorSpec(kind="perfect", lag=1.0), 1, list(range(1, 7)), rt,
            slanders=plan.slanders,
        )
        # The accuser is dead (and suspected); its rumor never spreads.
        assert det.suspects(5.0) == frozenset({1})

    def test_last_transition_tracks_slander_edges(self):
        det = self.detector(self.plan(start=2.0, end=10.0), node=1)
        assert det.last_transition(5.0) == 3.0    # start + lag
        assert det.last_transition(12.0) == 11.0  # end + lag

    def test_engine_detector_reads_plan_slanders(self):
        fault_plan = FaultPlan(adversary=self.plan())
        from repro.faults.detectors import engine_detector

        det = engine_detector(fault_plan, 1, list(range(1, 7)), None)
        assert det.suspects(3.0) == frozenset({5})
