"""The Afek-Gafni baseline reconstruction (repro.core.afek_gafni)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AfekGafniElection, ImprovedTradeoffElection
from repro.lowerbound import bounds
from repro.net.ports import CanonicalPortMap

from tests.helpers import make_ids, run_sync


class TestParameters:
    def test_rejects_ell_below_two(self):
        with pytest.raises(ValueError):
            AfekGafniElection(ell=1)

    def test_iterations(self):
        assert AfekGafniElection(ell=2).iterations == 1
        assert AfekGafniElection(ell=7).iterations == 3
        assert AfekGafniElection(ell=8).iterations == 4

    def test_implicit_rounds(self):
        assert AfekGafniElection(ell=6).implicit_rounds == 6

    def test_last_iteration_contacts_everyone(self):
        algo = AfekGafniElection(ell=6)
        assert algo.referee_count(100, 3) == 99


class TestSimultaneousWakeup:
    @pytest.mark.parametrize("ell", [2, 4, 6, 8])
    @pytest.mark.parametrize("n", [2, 3, 20, 64])
    def test_max_id_elected(self, ell, n):
        ids = make_ids(n, seed=ell)
        result = run_sync(n, lambda: AfekGafniElection(ell=ell), ids=ids, seed=4)
        assert result.unique_leader
        assert result.elected_id == max(ids)

    def test_everyone_decides_with_leader_id(self):
        result = run_sync(50, lambda: AfekGafniElection(ell=4), seed=1)
        assert result.decided_count == 50
        assert result.explicit_agreement()

    def test_round_budget(self):
        for ell in (2, 4, 6):
            result = run_sync(64, lambda: AfekGafniElection(ell=ell), seed=0)
            # implicit election in 2K <= ell rounds + 1 announcement round
            assert result.last_send_round == 2 * (ell // 2) + 1

    @given(st.integers(2, 60), st.integers(0, 30))
    @settings(max_examples=25, deadline=None)
    def test_unique_leader_property(self, n, seed):
        ids = make_ids(n, seed=seed)
        result = run_sync(n, lambda: AfekGafniElection(ell=4), ids=ids, seed=seed)
        assert result.unique_leader
        assert result.elected_id == max(ids)


class TestAdversarialWakeup:
    @pytest.mark.parametrize("awake", [[0], [3, 7], [1, 2, 3, 4]])
    def test_max_awake_id_elected(self, awake):
        n = 32
        ids = make_ids(n, seed=9)
        result = run_sync(n, lambda: AfekGafniElection(ell=4), ids=ids, awake=awake, seed=2)
        assert result.unique_leader
        assert result.elected_id == max(ids[u] for u in awake)

    def test_sleepers_serve_as_referees_and_decide(self):
        n = 24
        result = run_sync(n, lambda: AfekGafniElection(ell=4), awake=[0], seed=3)
        assert result.unique_leader
        # Announcement wakes and decides everyone.
        assert result.decided_count == n

    def test_single_root_becomes_leader(self):
        result = run_sync(16, lambda: AfekGafniElection(ell=2), awake=[5], seed=0)
        assert result.unique_leader
        assert result.leaders == [5]

    @given(st.integers(0, 40), st.integers(1, 16))
    @settings(max_examples=25, deadline=None)
    def test_unique_leader_any_root_set(self, seed, root_count):
        import random as _r

        n = 24
        rng = _r.Random(seed)
        awake = rng.sample(range(n), min(root_count, n))
        result = run_sync(n, lambda: AfekGafniElection(ell=4), awake=awake, seed=seed)
        assert result.unique_leader


@pytest.mark.slow
class TestComplexityComparison:
    @pytest.mark.parametrize("ell", [2, 4, 6])
    def test_messages_within_paper_bound(self, ell):
        for n in (64, 256, 1024):
            result = run_sync(n, lambda: AfekGafniElection(ell=ell), seed=0)
            bound = bounds.ag_messages(n, ell)
            assert result.messages <= 3 * bound, (n, ell, result.messages, bound)

    def test_improved_beats_ag_for_equal_rounds(self):
        """The paper's head-to-head: Thm 3.10 sends fewer messages than
        AG for the same odd round budget (polynomially fewer for small ell)."""
        n = 1024
        for ell in (3, 5):
            improved = run_sync(n, lambda: ImprovedTradeoffElection(ell=ell), seed=0)
            # AG with the same number of *message* rounds (2K+1 = ell -> K=(ell-1)/2);
            # its implicit variant uses ell-1 rounds, one less — still more messages.
            ag = run_sync(n, lambda: AfekGafniElection(ell=ell - 1), seed=0)
            assert improved.messages < ag.messages, (ell, improved.messages, ag.messages)

    def test_canonical_ports(self):
        n = 30
        result = run_sync(n, lambda: AfekGafniElection(ell=4), port_map=CanonicalPortMap(n))
        assert result.unique_leader and result.elected_id == n
