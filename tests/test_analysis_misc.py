"""Stats, tables, runner and validation helpers (repro.analysis)."""

import pytest

from repro.analysis import (
    RunRecord,
    Table,
    agreement_ok,
    assert_unique_leader,
    election_valid,
    format_quantity,
    run_async_trial,
    run_sync_trial,
    success_rate,
    summarize,
    sweep_async,
    sweep_sync,
)
from repro.core import AsyncTradeoffElection, ImprovedTradeoffElection


class TestSummarize:
    def test_basic(self):
        s = summarize([1, 2, 3, 4])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1 and s.maximum == 4
        assert s.median == pytest.approx(2.5)

    def test_odd_median(self):
        assert summarize([5, 1, 3]).median == 3

    def test_std(self):
        s = summarize([2, 2, 2])
        assert s.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str(self):
        assert "mean=" in str(summarize([1.0, 2.0]))


class TestSuccessRate:
    def test_rate(self):
        assert success_rate([1, 2, 3, 4], lambda x: x % 2 == 0) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            success_rate([], bool)


class TestTable:
    def test_render_alignment(self):
        t = Table(["n", "messages"], title="demo")
        t.add_row(128, 4607)
        t.add_row(1024, 123456)
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "messages" in lines[1]
        assert "4,607" in text and "123,456" in text

    def test_row_width_mismatch(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_section_rows(self):
        t = Table(["a", "b"])
        t.add_section("part one")
        t.add_row(1, 2)
        assert "-- part one" in t.render()

    def test_format_quantity(self):
        assert format_quantity(True) == "yes"
        assert format_quantity(1234567) == "1,234,567"
        assert format_quantity(3.14159) == "3.14"
        assert format_quantity(123456.78) == "123,457"
        assert format_quantity("x") == "x"

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])


class TestRunner:
    def test_sync_trial_record(self):
        rec = run_sync_trial(
            64, lambda: ImprovedTradeoffElection(ell=3), seed=1, params={"ell": 3}
        )
        assert isinstance(rec, RunRecord)
        assert rec.n == 64
        assert rec.unique_leader
        assert rec.time == 3.0
        assert rec.params == {"ell": 3}
        assert rec.extra["rounds_executed"] == 4

    def test_async_trial_record(self):
        rec = run_async_trial(64, lambda: AsyncTradeoffElection(k=2), seed=1)
        assert rec.n == 64
        assert rec.messages > 0
        assert rec.extra["events"] > 0

    def test_sweep_sync_grid(self):
        records = sweep_sync(
            [16, 32], lambda n: (lambda: ImprovedTradeoffElection(ell=3)), seeds=[0, 1]
        )
        assert len(records) == 4
        assert [r.n for r in records] == [16, 16, 32, 32]

    def test_sweep_sync_deterministic(self):
        def go():
            return sweep_sync(
                [32],
                lambda n: (lambda: ImprovedTradeoffElection(ell=3)),
                seeds=[5],
                ids_for_n=lambda n, rng: rng.sample(range(1, 10 * n), n),
            )

        a, b = go(), go()
        assert a[0].messages == b[0].messages
        assert a[0].elected_id == b[0].elected_id

    def test_sweep_sync_awake_hook(self):
        from repro.core import AdversarialTwoRoundElection

        records = sweep_sync(
            [64],
            lambda n: (lambda: AdversarialTwoRoundElection(epsilon=0.1)),
            seeds=[0],
            awake_for_n=lambda n, rng: [0, 1],
        )
        assert records[0].awake >= 2

    def test_sweep_async_scheduler_hook(self):
        from repro.asyncnet import RushScheduler

        records = sweep_async(
            [32],
            lambda n: (lambda: AsyncTradeoffElection(k=2)),
            seeds=[0],
            scheduler_for_n=lambda n, rng: RushScheduler(),
        )
        assert records[0].time < 0.01


class TestValidation:
    def test_election_valid_on_real_run(self):
        from repro.sync import SyncNetwork

        result = SyncNetwork(32, lambda: ImprovedTradeoffElection(ell=3), seed=0).run()
        assert election_valid(result)
        assert_unique_leader(result)
        assert agreement_ok(result)

    def test_assert_unique_leader_raises(self):
        class Fake:
            leaders = []
            leader_ids = []
            decided_count = 0
            n = 4

        with pytest.raises(AssertionError):
            assert_unique_leader(Fake())

    def test_agreement_fails_on_bad_output(self):
        from repro.common import Decision

        class Fake:
            leaders = [0]
            unique_leader = True
            elected_id = 10
            decisions = [Decision.LEADER, Decision.NON_LEADER]
            outputs = [10, 99]

        assert not agreement_ok(Fake())
