"""Section 5.4 / Theorem 5.14 (repro.core.async_afek_gafni)."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.asyncnet import (
    AsyncNetwork,
    PerLinkDelayScheduler,
    RushScheduler,
    UniformDelayScheduler,
    UnitDelayScheduler,
)
from repro.core import AsyncAfekGafniElection
from repro.lowerbound import bounds

from tests.helpers import make_ids


def run_async_ag(n, seed=0, scheduler=None, ids=None, stagger=None):
    """Simultaneous wake-up by default (the Theorem 5.14 setting)."""
    if stagger is None:
        wake_times = {u: 0.0 for u in range(n)}
    else:
        wake_times = stagger
    net = AsyncNetwork(
        n,
        AsyncAfekGafniElection,
        ids=ids,
        seed=seed,
        scheduler=scheduler,
        wake_times=wake_times,
        max_events=5_000_000,
    )
    return net.run()


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 16, 33, 64, 100])
    def test_unique_leader_every_size(self, n):
        result = run_async_ag(n, seed=n)
        assert result.unique_leader
        assert result.decided_count == n

    def test_deterministic_under_fixed_ports(self):
        from repro.net.ports import CanonicalPortMap

        runs = [
            AsyncNetwork(
                32,
                AsyncAfekGafniElection,
                seed=0,
                port_map=CanonicalPortMap(32),
                scheduler=UnitDelayScheduler(),
                wake_times={u: 0.0 for u in range(32)},
            ).run()
            for _ in range(2)
        ]
        assert runs[0].leaders == runs[1].leaders
        assert runs[0].messages == runs[1].messages

    @pytest.mark.parametrize(
        "make_scheduler",
        [
            lambda rng: UnitDelayScheduler(),
            lambda rng: UniformDelayScheduler(rng),
            lambda rng: RushScheduler(),
            lambda rng: PerLinkDelayScheduler(rng),
        ],
        ids=["unit", "uniform", "rush", "perlink"],
    )
    def test_unique_leader_under_every_delay_adversary(self, make_scheduler):
        for seed in range(5):
            scheduler = make_scheduler(random.Random(seed))
            result = run_async_ag(48, seed=seed, scheduler=scheduler)
            assert result.unique_leader, seed
            assert result.decided_count == 48

    def test_explicit_outputs_available(self):
        result = run_async_ag(32, seed=1)
        assert result.unique_leader
        # Nodes that learned the winner via 'elected' name it; nodes that
        # died via 'kill' hold None (implicit) — but never a wrong name.
        winner = result.elected_id
        for out in result.outputs:
            assert out is None or out == winner

    def test_stragglers_time_counted_from_last_wake(self):
        # Theorem 5.14 counts time from the last spontaneous wake-up;
        # a staggered start must still elect exactly one leader.
        stagger = {u: (u % 7) * 0.13 for u in range(40)}
        result = run_async_ag(40, seed=2, stagger=stagger)
        assert result.unique_leader

    @given(st.integers(2, 64), st.integers(0, 30))
    @settings(max_examples=25, deadline=None)
    def test_unique_leader_property(self, n, seed):
        result = run_async_ag(n, seed=seed, ids=make_ids(n, seed))
        assert result.unique_leader
        assert result.decided_count == n


class TestComplexity:
    def test_messages_o_n_log_n(self):
        for n in (64, 256, 1024):
            result = run_async_ag(n, seed=0)
            # O(n log n) with an explicit constant: requests sum to
            # ~2n per full level sweep, and each request costs at most
            # ~4 messages (req + cancel + reply + verdict).
            assert result.messages <= 16 * bounds.thm514_messages(n), (
                n,
                result.messages,
            )

    def test_time_o_log_n_under_unit_delays(self):
        for n in (64, 256, 1024):
            result = run_async_ag(n, seed=0, scheduler=UnitDelayScheduler())
            # Each level costs at most ~4 unit-delay hops, plus the
            # final announcement.
            assert result.time <= 5 * math.log2(n) + 3, (n, result.time)

    def test_message_growth_is_near_linear(self):
        from repro.analysis import fit_power_law

        ns = [128, 512, 2048]
        totals = [run_async_ag(n, seed=1).messages for n in ns]
        fit = fit_power_law(ns, totals)
        # n log n fits as exponent ~1.0-1.25 on this grid.
        assert 0.95 <= fit.exponent <= 1.3, fit

    def test_levels_bounded(self):
        assert AsyncAfekGafniElection.max_level(1024) == 10
        assert AsyncAfekGafniElection.max_level(1000) == 10
        assert AsyncAfekGafniElection.max_level(2) == 1


class TestProtocolInternals:
    def test_supporters_are_exclusive(self):
        """Lemma 5.12's invariant: at quiescence each node supports at
        most one candidate — the eventual leader or a dead candidate that
        captured it last."""
        n = 32
        net = AsyncNetwork(
            n,
            AsyncAfekGafniElection,
            seed=5,
            wake_times={u: 0.0 for u in range(n)},
        )
        result = net.run()
        assert result.unique_leader
        owners = [algo.owner_id for algo in net.algorithms]
        assert all(owner is not None for owner in owners)

    def test_leader_survived_all_levels(self):
        n = 64
        net = AsyncNetwork(
            n,
            AsyncAfekGafniElection,
            seed=6,
            wake_times={u: 0.0 for u in range(n)},
        )
        result = net.run()
        leader_algo = net.algorithms[result.leaders[0]]
        assert leader_algo.leader
        assert 2**leader_algo.level >= n

    def test_all_non_leaders_dead(self):
        n = 48
        net = AsyncNetwork(
            n,
            AsyncAfekGafniElection,
            seed=7,
            wake_times={u: 0.0 for u in range(n)},
        )
        result = net.run()
        for u, algo in enumerate(net.algorithms):
            if u in result.leaders:
                assert algo.alive
            else:
                assert not algo.alive

    def test_no_pending_consults_at_quiescence(self):
        n = 40
        net = AsyncNetwork(
            n,
            AsyncAfekGafniElection,
            seed=8,
            wake_times={u: 0.0 for u in range(n)},
        )
        net.run()
        for algo in net.algorithms:
            assert not algo.busy
            assert not algo.queue


class TestTimeFromLastWake:
    """Theorem 5.14's accounting: time counted from the last spontaneous
    wake-up (the paper's alternative to simultaneous wake-up)."""

    def test_staggered_start_log_time_from_last_wake(self):
        import math

        from repro.asyncnet import UnitDelayScheduler

        n = 256
        last_wake = 3.0
        stagger = {u: (u % 16) * 0.2 for u in range(n)}  # wakes in [0, 3]
        net = AsyncNetwork(
            n,
            AsyncAfekGafniElection,
            seed=11,
            scheduler=UnitDelayScheduler(),
            wake_times=stagger,
            max_events=5_000_000,
        )
        result = net.run()
        assert result.unique_leader
        from_last_wake = result.metrics.last_event_time - last_wake
        assert from_last_wake <= 5 * math.log2(n) + 3

    def test_election_valid_for_any_stagger_pattern(self):
        for seed in range(4):
            import random as _r

            rng = _r.Random(seed)
            n = 48
            stagger = {u: rng.random() for u in range(n)}
            net = AsyncNetwork(
                n,
                AsyncAfekGafniElection,
                seed=seed,
                wake_times=stagger,
                max_events=5_000_000,
            )
            result = net.run()
            assert result.unique_leader
            assert result.decided_count == n


class TestGeneralTradeoffSchedule:
    """§5.4's opening claim: the translation preserves the full AG
    tradeoff — K capture waves, O(K·n^(1+1/K)) messages."""

    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError):
            AsyncAfekGafniElection(iterations=1)

    @pytest.mark.parametrize("K", [2, 3, 5])
    def test_unique_leader_all_schedules(self, K):
        for n in (2, 7, 32, 100):
            net = AsyncNetwork(
                n,
                lambda: AsyncAfekGafniElection(iterations=K),
                seed=K * 100 + n,
                wake_times={u: 0.0 for u in range(n)},
                max_events=5_000_000,
            )
            result = net.run()
            assert result.unique_leader, (K, n)
            assert result.decided_count == n

    def test_tradeoff_direction(self):
        """More waves -> fewer messages, more time (unit delays)."""
        n = 512
        stats = {}
        for K in (2, 4, 8):
            net = AsyncNetwork(
                n,
                lambda: AsyncAfekGafniElection(iterations=K),
                seed=3,
                scheduler=UnitDelayScheduler(),
                wake_times={u: 0.0 for u in range(n)},
                max_events=8_000_000,
            )
            r = net.run()
            assert r.unique_leader
            stats[K] = (r.messages, r.time)
        assert stats[2][0] > stats[4][0] > stats[8][0]
        assert stats[2][1] < stats[8][1]

    @pytest.mark.slow
    def test_k2_matches_n_to_3_2_shape(self):
        n = 1024
        net = AsyncNetwork(
            n,
            lambda: AsyncAfekGafniElection(iterations=2),
            seed=1,
            scheduler=UnitDelayScheduler(),
            wake_times={u: 0.0 for u in range(n)},
            max_events=12_000_000,
        )
        r = net.run()
        assert r.unique_leader
        assert r.messages <= 4 * n**1.5
        assert r.time <= 16  # O(K) waves, ~4 hops each, plus announcement

    def test_schedule_targets(self):
        from repro.asyncnet.engine import AsyncNetwork as _N

        n = 256
        net = _N(
            n,
            lambda: AsyncAfekGafniElection(iterations=4),
            seed=0,
            wake_times={u: 0.0 for u in range(n)},
            max_events=5_000_000,
        )
        result = net.run()
        assert result.unique_leader
        leader_algo = net.algorithms[result.leaders[0]]
        assert leader_algo.level == 4  # exactly K waves

    def test_safe_under_targeted_delays(self):
        from repro.asyncnet import TargetedDelayScheduler

        n = 128
        for delays in ({"req": 0.01, "cancel": 1.0}, {"ack": 1.0}):
            net = AsyncNetwork(
                n,
                lambda: AsyncAfekGafniElection(iterations=3),
                seed=5,
                scheduler=TargetedDelayScheduler(delays),
                wake_times={u: 0.0 for u in range(n)},
                max_events=8_000_000,
            )
            result = net.run()
            assert result.unique_leader, delays
