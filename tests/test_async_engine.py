"""The asynchronous event engine (repro.asyncnet)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.asyncnet.algorithm import AsyncAlgorithm
from repro.asyncnet.engine import AsyncNetwork
from repro.asyncnet.schedulers import (
    PerLinkDelayScheduler,
    RushScheduler,
    UniformDelayScheduler,
    UnitDelayScheduler,
)
from repro.common import ProtocolError, SimulationLimitExceeded
from repro.net.ports import CanonicalPortMap
from repro.trace import MemoryRecorder


class Quiet(AsyncAlgorithm):
    def on_message(self, ctx, port, payload):
        pass


class Burst(AsyncAlgorithm):
    """The woken node sends a burst over its first ports."""

    def __init__(self, count=3):
        self.count = count

    def on_wake(self, ctx):
        if ctx.wake_time == 0.0:
            for port in range(min(self.count, ctx.port_count)):
                ctx.send(port, ("burst", port))

    def on_message(self, ctx, port, payload):
        pass


class TestEventOrdering:
    def test_unit_delay_time_accounting(self):
        net = AsyncNetwork(4, Burst, scheduler=UnitDelayScheduler())
        result = net.run()
        assert result.time == pytest.approx(1.0)
        assert result.messages == 3

    def test_chain_time_adds_up(self):
        class Chain(AsyncAlgorithm):
            def on_wake(self, ctx):
                if ctx.wake_time == 0.0 and ctx.my_id == 1:
                    ctx.send(0, ("hop", 3))

            def on_message(self, ctx, port, payload):
                hops_left = payload[1]
                if hops_left > 0:
                    ctx.send(0 if port != 0 else 1, ("hop", hops_left - 1))

        net = AsyncNetwork(5, Chain, scheduler=UnitDelayScheduler(), seed=3)
        result = net.run()
        assert result.time == pytest.approx(4.0)
        assert result.messages == 4

    def test_delays_bounded_by_one_unit(self):
        class BadScheduler(UnitDelayScheduler):
            def delay(self, src, dst, send_time, payload):
                return 1.5

        with pytest.raises(ProtocolError):
            AsyncNetwork(3, Burst, scheduler=BadScheduler()).run()

    def test_rush_scheduler_near_zero_time(self):
        net = AsyncNetwork(4, Burst, scheduler=RushScheduler())
        result = net.run()
        assert result.time < 0.001


class TestFifo:
    def test_fifo_per_link_under_adversarial_delays(self):
        received = []

        class Sequenced(AsyncAlgorithm):
            def on_wake(self, ctx):
                if ctx.wake_time == 0.0 and ctx.my_id == 1:
                    for s in range(10):
                        ctx.send(0, ("seq", s))

            def on_message(self, ctx, port, payload):
                received.append(payload[1])

        class ShrinkingDelay(UnitDelayScheduler):
            """Later messages get smaller delays — tries to overtake."""

            def __init__(self):
                self.count = 0

            def delay(self, src, dst, send_time, payload):
                self.count += 1
                return max(0.05, 1.0 - 0.09 * self.count)

        AsyncNetwork(3, Sequenced, scheduler=ShrinkingDelay(), seed=1).run()
        assert received == list(range(10))

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_fifo_under_random_delays(self, seed):
        received = []

        class Sequenced(AsyncAlgorithm):
            def on_wake(self, ctx):
                if ctx.wake_time == 0.0 and ctx.my_id == 1:
                    for s in range(8):
                        ctx.send(0, ("seq", s))

            def on_message(self, ctx, port, payload):
                received.append(payload[1])

        scheduler = UniformDelayScheduler(random.Random(seed))
        AsyncNetwork(2, Sequenced, scheduler=scheduler, seed=seed).run()
        assert received == list(range(8))


class TestWakeSemantics:
    def test_default_wakes_node_zero(self):
        woken = []

        class W(AsyncAlgorithm):
            def on_wake(self, ctx):
                woken.append(ctx.node)

            def on_message(self, ctx, port, payload):
                pass

        AsyncNetwork(5, W).run()
        assert woken == [0]

    def test_delivery_wakes_then_delivers(self):
        order = []

        class W(AsyncAlgorithm):
            def on_wake(self, ctx):
                order.append(("wake", ctx.node, ctx.now))
                if ctx.node == 0:
                    ctx.send(0, ("hi",))

            def on_message(self, ctx, port, payload):
                order.append(("msg", ctx.node, ctx.now))

        AsyncNetwork(3, W, port_map=CanonicalPortMap(3), scheduler=UnitDelayScheduler()).run()
        assert order == [("wake", 0, 0.0), ("wake", 1, 1.0), ("msg", 1, 1.0)]

    def test_staggered_adversarial_wake_times(self):
        times = {}

        class W(AsyncAlgorithm):
            def on_wake(self, ctx):
                times[ctx.node] = ctx.wake_time

            def on_message(self, ctx, port, payload):
                pass

        AsyncNetwork(4, W, wake_times={2: 0.0, 3: 2.5}).run()
        assert times == {2: 0.0, 3: 2.5}

    def test_time_span_from_first_wake(self):
        class W(AsyncAlgorithm):
            def on_wake(self, ctx):
                if ctx.node == 2:
                    ctx.send(0, ("x",))

            def on_message(self, ctx, port, payload):
                pass

        net = AsyncNetwork(4, W, wake_times={2: 5.0}, scheduler=UnitDelayScheduler())
        result = net.run()
        assert result.time == pytest.approx(1.0)  # 6.0 - 5.0

    def test_empty_wake_times_rejected(self):
        with pytest.raises(ValueError):
            AsyncNetwork(3, Quiet, wake_times={})

    def test_negative_wake_time_rejected(self):
        with pytest.raises(ValueError):
            AsyncNetwork(3, Quiet, wake_times={0: -1.0})


class TestHaltAndDecisions:
    def test_halted_node_drops_deliveries(self):
        class HaltFast(AsyncAlgorithm):
            def on_wake(self, ctx):
                if ctx.node == 0:
                    ctx.send(0, ("a",))
                    ctx.send(0, ("b",))

            def on_message(self, ctx, port, payload):
                ctx.halt()

        net = AsyncNetwork(2, HaltFast, scheduler=UnitDelayScheduler())
        result = net.run()
        assert result.dropped_deliveries == 1

    def test_decision_irrevocable(self):
        class Flip(AsyncAlgorithm):
            def on_wake(self, ctx):
                ctx.decide_leader()
                ctx.decide_follower()

            def on_message(self, ctx, port, payload):
                pass

        with pytest.raises(ProtocolError):
            AsyncNetwork(2, Flip).run()

    def test_max_events_guard(self):
        class PingPong(AsyncAlgorithm):
            def on_wake(self, ctx):
                if ctx.node == 0:
                    ctx.send(0, ("ball",))

            def on_message(self, ctx, port, payload):
                ctx.send(port, payload)

        with pytest.raises(SimulationLimitExceeded):
            AsyncNetwork(2, PingPong, max_events=50).run()


class TestSchedulers:
    def test_per_link_delays_are_stable(self):
        sched = PerLinkDelayScheduler(random.Random(0))
        d1 = sched.delay(1, 2, 0.0, None)
        d2 = sched.delay(1, 2, 5.0, None)
        assert d1 == d2
        assert 0 < d1 <= 1

    def test_per_link_directions_independent(self):
        sched = PerLinkDelayScheduler(random.Random(0))
        assert sched.delay(1, 2, 0.0, None) != pytest.approx(
            sched.delay(2, 1, 0.0, None)
        )

    def test_uniform_bounds_validated(self):
        with pytest.raises(ValueError):
            UniformDelayScheduler(random.Random(0), lo=0.0)
        with pytest.raises(ValueError):
            UniformDelayScheduler(random.Random(0), lo=0.5, hi=1.5)

    def test_rush_epsilon_validated(self):
        with pytest.raises(ValueError):
            RushScheduler(epsilon=0.0)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        from repro.core import AsyncTradeoffElection

        r1 = AsyncNetwork(64, lambda: AsyncTradeoffElection(k=2), seed=9).run()
        r2 = AsyncNetwork(64, lambda: AsyncTradeoffElection(k=2), seed=9).run()
        assert r1.messages == r2.messages
        assert r1.leaders == r2.leaders
        assert r1.time == r2.time

    def test_recorder_sees_deliveries(self):
        rec = MemoryRecorder()
        AsyncNetwork(3, Burst, recorder=rec, scheduler=UnitDelayScheduler()).run()
        assert len(rec.of_kind("send")) == 2  # Burst(3) capped by ports? n=3 -> 2 ports
        assert len(rec.of_kind("deliver")) == 2
