"""Algorithm 2 / Theorem 5.1 (repro.core.async_tradeoff)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.asyncnet import (
    AsyncNetwork,
    PerLinkDelayScheduler,
    RushScheduler,
    UniformDelayScheduler,
    UnitDelayScheduler,
)
from repro.core import AsyncTradeoffElection
from repro.lowerbound import bounds
from repro.analysis import success_rate


def run_async(n, k=2, seed=0, scheduler=None, wake_times=None, **kw):
    net = AsyncNetwork(
        n,
        lambda: AsyncTradeoffElection(k=k, **kw),
        seed=seed,
        scheduler=scheduler,
        wake_times=wake_times,
        max_events=5_000_000,
    )
    return net.run()


class TestParameters:
    def test_rejects_k_below_two(self):
        with pytest.raises(ValueError):
            AsyncTradeoffElection(k=1)

    def test_rejects_bad_coefficients(self):
        with pytest.raises(ValueError):
            AsyncTradeoffElection(k=2, gamma=0)

    def test_wake_fanout_scales(self):
        algo = AsyncTradeoffElection(k=2, gamma=1.0)
        assert algo.wake_fanout(1024) == 32
        algo3 = AsyncTradeoffElection(k=3, gamma=1.0)
        assert algo3.wake_fanout(1000) == 10

    def test_fanout_capped(self):
        algo = AsyncTradeoffElection(k=2, gamma=100.0)
        assert algo.wake_fanout(10) == 9


class TestCorrectness:
    @pytest.mark.parametrize("k", [2, 3, 4])
    @pytest.mark.slow
    def test_whp_unique_leader(self, k):
        results = [run_async(256, k=k, seed=s) for s in range(10)]
        rate = success_rate(results, lambda r: r.unique_leader)
        assert rate >= 0.9, (k, rate)

    def test_everyone_wakes_and_decides(self):
        result = run_async(512, k=2, seed=1)
        assert result.awake_count == 512
        if result.unique_leader:
            assert result.decided_count == 512

    @pytest.mark.slow
    def test_never_two_leaders(self):
        for seed in range(20):
            result = run_async(128, k=2, seed=seed)
            assert len(result.leaders) <= 1, seed

    @pytest.mark.parametrize(
        "make_scheduler",
        [
            lambda rng: UnitDelayScheduler(),
            lambda rng: UniformDelayScheduler(rng),
            lambda rng: RushScheduler(),
            lambda rng: PerLinkDelayScheduler(rng),
        ],
        ids=["unit", "uniform", "rush", "perlink"],
    )
    def test_correct_under_every_delay_adversary(self, make_scheduler):
        for seed in range(5):
            scheduler = make_scheduler(random.Random(seed))
            result = run_async(128, k=2, seed=seed, scheduler=scheduler)
            assert len(result.leaders) <= 1

    def test_staggered_adversarial_wakeup(self):
        wake_times = {0: 0.0, 5: 0.7, 9: 1.9}
        result = run_async(128, k=2, seed=4, wake_times=wake_times)
        assert len(result.leaders) <= 1
        assert result.awake_count == 128

    def test_simultaneous_wakeup(self):
        wake_times = {u: 0.0 for u in range(64)}
        results = [run_async(64, k=2, seed=s, wake_times=wake_times) for s in range(5)]
        rate = success_rate(results, lambda r: r.unique_leader)
        assert rate >= 0.8

    def test_n_one(self):
        result = run_async(1, k=2)
        assert result.unique_leader

    @given(st.integers(16, 128), st.integers(0, 20))
    @settings(max_examples=20, deadline=None)
    def test_at_most_one_leader_property(self, n, seed):
        result = run_async(n, k=2, seed=seed)
        assert len(result.leaders) <= 1


@pytest.mark.slow
class TestComplexity:
    def test_time_within_k_plus_8(self):
        # Unit delays, default single-root adversarial wake-up; allow +1
        # for the final announcement delivery (the paper's bound counts
        # until the leader is elected).
        for k in (2, 3, 4):
            for seed in range(3):
                result = run_async(1024, k=k, seed=seed, scheduler=UnitDelayScheduler())
                if result.unique_leader:
                    assert result.time <= bounds.thm51_time(k) + 1, (k, result.time)

    def test_messages_within_bound(self):
        for k in (2, 3):
            for n in (256, 1024):
                result = run_async(n, k=k, seed=0)
                # gamma=3 wake spray + competes + consults + announcement;
                # 6x covers the constants.
                assert result.messages <= 6 * bounds.thm51_messages(n, k), (n, k)

    def test_larger_k_fewer_messages(self):
        n = 1024
        msgs = [run_async(n, k=k, seed=0).messages for k in (2, 3, 5)]
        assert msgs[0] > msgs[1] > msgs[2]

    def test_message_exponent_matches_theory(self):
        # Total messages mix the n^(1+1/k) wake-up term with the
        # ~sqrt(n)·polylog election term; at bench sizes the mixture pulls
        # the total's fitted exponent slightly below 1+1/k, so check the
        # dominant wake-up component (exactly n·Θ(n^(1/k)) messages)
        # against theory and the total against a generous band.
        from repro.analysis import fit_power_law

        for k, lo, hi in ((2, 1.4, 1.6), (3, 1.25, 1.45)):
            ns = [256, 1024, 4096]
            wake_counts = []
            totals = []
            for n in ns:
                result = run_async(n, k=k, seed=0)
                wake_counts.append(result.metrics.messages_by_kind["wake"])
                totals.append(result.messages)
            wake_fit = fit_power_law(ns, wake_counts)
            assert lo <= wake_fit.exponent <= hi, (k, wake_fit)
            total_fit = fit_power_law(ns, totals)
            assert total_fit.exponent <= hi + 0.05, (k, total_fit)

    def test_wake_message_count_dominates_for_k2(self):
        result = run_async(1024, k=2, seed=0)
        wake = result.metrics.messages_by_kind["wake"]
        assert wake >= 0.5 * result.messages


class TestProtocolInternals:
    def test_gamma_ablation_coverage(self):
        """Wake-up coverage degrades when gamma is too small relative to
        the k+4 deadline, but correctness (at most one leader) holds."""
        for gamma in (0.25, 1.0, 3.0):
            result = run_async(256, k=2, seed=3, gamma=gamma)
            assert len(result.leaders) <= 1

    def test_zero_candidates_is_clean_failure(self):
        # Forcing candidate probability to ~0 (tiny coefficient): nobody
        # competes, the run quiesces with no leader and no crash.
        result = run_async(128, k=2, seed=0, candidate_coeff=1e-9)
        assert result.leaders == []
        assert result.awake_count == 128

    def test_all_candidates_stress(self):
        # Maximal contention: every node competes.
        for seed in range(3):
            result = run_async(64, k=2, seed=seed, candidate_coeff=1e9)
            assert len(result.leaders) <= 1

    def test_referee_sets_shared_whp(self):
        # With default coefficients the referee overlap is what prevents
        # two leaders; verify on a run that at least one referee handled
        # two or more competes (so the consult path executed).
        result = run_async(512, k=2, seed=2)
        kinds = result.metrics.messages_by_kind
        assert kinds.get("confirm", 0) >= 1
        assert kinds.get("confirm_reply", 0) == kinds.get("confirm", 0)


@pytest.mark.slow
class TestWakeupCoverageLemma52:
    """Lemma 5.2's claim in isolation: the wake-up spray covers the
    clique within k+4 units whp for admissible k."""

    @pytest.mark.parametrize("k", [2, 3])
    def test_all_awake_within_k_plus_4(self, k):
        from repro.lowerbound import build_cover_tree
        from repro.trace import MemoryRecorder

        n = 512
        covered = 0
        for seed in range(5):
            rec = MemoryRecorder()
            net = AsyncNetwork(
                n,
                lambda: AsyncTradeoffElection(k=k),
                seed=seed,
                scheduler=UnitDelayScheduler(),
                recorder=rec,
                max_events=8_000_000,
            )
            net.run()
            tree = build_cover_tree(n, rec)
            if tree.covered == n and max(tree.wake_time.values()) <= k + 4:
                covered += 1
        assert covered >= 4  # whp over seeds

    def test_inadmissible_k_degrades_spray_coverage(self):
        # k far above log n / log log n: fan-out ~2, below the
        # Omega(log n) threshold Lemma 5.2 needs.  With candidacy
        # disabled (no election, so no leader broadcast to paper over
        # the gap), the spray alone strands some nodes asleep.
        n = 512
        fails = 0
        for seed in range(5):
            result = AsyncNetwork(
                n,
                lambda: AsyncTradeoffElection(k=30, gamma=1.0, candidate_coeff=1e-12),
                seed=seed,
                max_events=8_000_000,
            ).run()
            fails += result.awake_count < n
        assert fails >= 3  # the admissibility condition is real
