"""Table 1 bound formulas (repro.lowerbound.bounds)."""

import math

import pytest

from repro.lowerbound import bounds


class TestThm38:
    def test_round_lb_matches_formula(self):
        n, f = 1024, 4.0
        expected = (math.log2(n) - 1) / (math.log2(f) + 1) + 1
        assert bounds.thm38_round_lb(n, f) == pytest.approx(expected)

    def test_round_lb_decreases_in_f(self):
        n = 4096
        assert bounds.thm38_round_lb(n, 2) > bounds.thm38_round_lb(n, 16)

    def test_round_lb_rejects_f_at_most_1(self):
        with pytest.raises(ValueError):
            bounds.thm38_round_lb(64, 1.0)

    def test_message_lb_k2(self):
        assert bounds.thm38_message_lb(1024, 2) == pytest.approx(512.0**2)

    def test_message_lb_one_round_quadratic(self):
        assert bounds.thm38_message_lb(100, 1) == pytest.approx(2500.0)

    def test_message_lb_decreases_in_k(self):
        n = 4096
        values = [bounds.thm38_message_lb(n, k) for k in (2, 3, 5, 9)]
        assert values == sorted(values, reverse=True)

    def test_consistency_round_vs_message_form(self):
        # If an algorithm sends n·f messages, the round LB applied at f
        # and the message LB applied at that round count must agree
        # directionally: fewer messages -> more rounds.
        n = 2**16
        for k in (2, 3, 4, 6):
            messages = bounds.thm38_message_lb(n, k)
            f = messages / n
            rounds_needed = bounds.thm38_round_lb(n, f)
            # An algorithm with exactly the LB message budget cannot be
            # much faster than k rounds.
            assert rounds_needed <= k + 1.5, (k, rounds_needed)


class TestUpperBoundsDominateLowerBounds:
    """UB >= LB wherever both are defined — the sanity the paper's
    Table 1 encodes."""

    @pytest.mark.parametrize("n", [256, 4096, 2**16])
    def test_thm310_above_thm38(self, n):
        for ell in (3, 5, 7, 9):
            ub = bounds.thm310_messages(n, ell)
            lb = bounds.thm38_message_lb(n, ell)
            assert ub >= lb, (n, ell)

    @pytest.mark.parametrize("n", [256, 4096])
    def test_ag_above_its_lb(self, n):
        for k in (2, 3, 4):
            assert bounds.ag_messages(n, 2 * k) >= bounds.ag_k_round_lb(n, k)

    @pytest.mark.parametrize("n", [256, 4096, 2**20])
    def test_thm41_above_thm42(self, n):
        assert bounds.thm41_expected_messages(n, 0.1) >= bounds.thm42_message_lb(n)

    @pytest.mark.parametrize("n", [256, 4096])
    def test_las_vegas_tight(self, n):
        assert bounds.thm316_las_vegas_messages(n) >= bounds.thm316_las_vegas_lb(n)

    @pytest.mark.parametrize("n", [1024, 2**16])
    def test_kutten16_above_its_lb(self, n):
        assert bounds.kutten16_messages(n) >= bounds.kutten16_lb(n)


class TestPaperComparisons:
    def test_thm38_beats_ag_lb_for_constant_k(self):
        """Section 1.2: for constant-round algorithms the new bound is
        polynomially stronger than Afek-Gafni's."""
        n = 2**20
        for k in (2, 3, 4):
            assert bounds.thm38_message_lb(n, k) > bounds.ag_k_round_lb(n, k)

    def test_ag_lb_wins_at_logarithmic_k(self):
        """...whereas at k = Θ(log n) the AG bound is a log factor larger."""
        n = 2**20
        k = int(math.log2(n))
        assert bounds.ag_k_round_lb(n, k) > bounds.thm38_message_lb(n, k)

    def test_thm310_beats_ag_algorithm(self):
        n = 2**20
        for ell in (3, 5, 7):
            assert bounds.thm310_messages(n, ell) < bounds.ag_messages(n, ell)

    def test_monte_carlo_vs_las_vegas_gap(self):
        """The polynomial gap of Section 3.5 (widens with n)."""
        for n, factor in ((2**20, 10), (2**30, 100)):
            assert bounds.kutten16_messages(n) < bounds.thm316_las_vegas_lb(n) / factor

    def test_small_id_beats_nlogn(self):
        """Theorem 3.15's point: n·d·g = o(n log n) for d = o(log n)."""
        n = 2**20
        d, g = 2, 1
        assert bounds.thm315_messages(n, d, g) < bounds.thm311_message_lb(n)


class TestAsyncBounds:
    def test_thm51_extremes(self):
        n = 2**16
        # k=2 matches the synchronous adversarial-wake-up bound n^{3/2}
        assert bounds.thm51_messages(n, 2) == pytest.approx(bounds.thm42_message_lb(n))
        # max k gives ~n polylog messages and ~log n time
        kmax = bounds.thm51_max_k(n)
        assert bounds.thm51_messages(n, kmax) <= n * math.log2(n) ** 2
        assert bounds.thm51_time(kmax) <= math.log2(n) + 8

    def test_thm51_time(self):
        assert bounds.thm51_time(2) == 10
        assert bounds.thm51_time(6) == 14

    def test_max_k_reasonable(self):
        assert bounds.thm51_max_k(2**10) >= 2
        assert bounds.thm51_max_k(2**20) in range(3, 8)

    def test_thm514(self):
        n = 1024
        assert bounds.thm514_messages(n) == pytest.approx(n * 10)
        assert bounds.thm514_time(n) == pytest.approx(10)

    def test_kmp14_rows(self):
        n = 4096
        assert bounds.kmp14_messages(n) == n
        assert bounds.kmp14_time(n) == pytest.approx(144.0)


class TestUniverseRequirement:
    def test_thm311_universe_grows_fast(self):
        small = bounds.thm311_universe_log2_size(64, 4)
        large = bounds.thm311_universe_log2_size(1024, 4)
        assert large > small > math.log2(64)

    def test_validation(self):
        with pytest.raises(ValueError):
            bounds.thm41_expected_messages(100, 0.0)
        with pytest.raises(ValueError):
            bounds.thm51_messages(100, 1)
        with pytest.raises(ValueError):
            bounds.ag_tradeoff_lb(100, 1.5)
        with pytest.raises(ValueError):
            bounds.thm310_messages(100, 4)
