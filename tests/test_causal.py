"""Happens-before analysis: Lamport clocks, critical paths, ``trace causal``."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.__main__ import main
from repro.analysis import RunSpec, execute_spec
from repro.telemetry import (
    build_graph,
    critical_path,
    explain,
    lamport_clocks,
    load_trace,
)

GOLDEN_TRACE = os.path.join(
    os.path.dirname(__file__), "data", "golden_trace_improved_tradeoff_n16.jsonl"
)
GOLDEN_SUMMARY = os.path.join(
    os.path.dirname(__file__), "data", "golden_causal_improved_tradeoff_n16.txt"
)

#: ``trace record NAME --n 16 --seed 0`` decide rounds, bit-pinned: the
#: engines are deterministic per seed, so these only move if an
#: algorithm's round structure changes.
DECIDE_ROUNDS = {
    "improved_tradeoff": 4,
    "afek_gafni": 5,
    "small_id": 2,
    "kutten16": 3,
    "las_vegas": 4,
    "adversarial_2round": 3,
}


def _record(tmp_path, name, *extra):
    out = str(tmp_path / f"{name}.jsonl")
    args = ["trace", "record", name, "--n", "16", "--seed", "0", "-o", out]
    assert main([*args, *extra]) == 0
    return load_trace(out)


class TestCriticalPathRoundLength:
    """Exact-mode critical paths span exactly the observed decide rounds."""

    @pytest.mark.parametrize("name", sorted(DECIDE_ROUNDS))
    def test_round_length_equals_decide_round(self, tmp_path, name):
        extra = ["--param", "d=4"] if name == "small_id" else []
        trace = _record(tmp_path, name, *extra)
        # The path targets the leader's decide (non-leaders may learn the
        # outcome a round later).
        observed = max(
            int(e.when)
            for e in trace.events
            if e.kind == "decide" and "LEADER" == getattr(
                e.detail[0], "name", str(e.detail[0])
            )
        )
        path = critical_path(trace)
        assert observed == DECIDE_ROUNDS[name]
        assert path.decide_round == observed
        assert path.round_length == observed

    def test_path_is_causally_ordered(self, tmp_path):
        trace = _record(tmp_path, "improved_tradeoff")
        graph = build_graph(trace)
        path = critical_path(trace, graph)
        clocks = graph.clocks
        indices = path.indices
        assert indices == sorted(indices)
        for earlier, later in zip(indices, indices[1:]):
            assert clocks[earlier] < clocks[later]
            assert later in [
                i for i in range(len(clocks)) if earlier in graph.preds[i]
            ]
        assert path.hops[0].via is None
        assert all(hop.via is not None for hop in path.hops[1:])
        assert path.message_hops == sum(
            1 for hop in path.hops if hop.via not in (None, "local")
        )
        assert sum(path.messages_by_kind.values()) == path.message_hops

    def test_ends_at_leader_decide(self, tmp_path):
        trace = _record(tmp_path, "improved_tradeoff")
        path = critical_path(trace)
        last = path.hops[-1].event
        assert last.kind == "decide"
        assert "LEADER" in str(last.detail[0])


class TestLamportConsistency:
    """Property: clocks respect program order and message causality."""

    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_clocks_are_consistent(self, data, tmp_path_factory):
        name = data.draw(
            st.sampled_from(
                ["improved_tradeoff", "afek_gafni", "las_vegas",
                 "async_tradeoff", "monarchical"]
            ),
            label="algorithm",
        )
        n = data.draw(st.sampled_from([4, 8, 16]), label="n")
        seed = data.draw(st.integers(0, 2**16), label="seed")
        faults = None
        if name == "monarchical" and data.draw(st.booleans(), label="crash"):
            from repro.faults import CrashFault, FaultPlan

            victim = data.draw(st.integers(0, n - 1), label="victim")
            faults = FaultPlan(crashes=(CrashFault(node=victim, at=2.0),))
        out = str(tmp_path_factory.mktemp("causal") / "t.jsonl")
        execute_spec(
            RunSpec(
                algorithm=name, n=n, seeds=(seed,), trace=out, faults=faults
            )
        )
        trace = load_trace(out)
        graph = build_graph(trace)
        clocks = graph.clocks
        assert clocks == lamport_clocks(trace)
        assert all(c >= 1 for c in clocks)
        # Every happens-before edge advances the clock (message edges:
        # the send strictly precedes the delivery anchor).
        for i, preds in enumerate(graph.preds):
            for p in preds:
                assert clocks[p] < clocks[i]
                assert trace.events[p].when <= trace.events[i].when
        # Program order per node is non-decreasing in time and strictly
        # increasing in clock.
        last_seen = {}
        for i, event in enumerate(trace.events):
            if event.node in last_seen:
                j = last_seen[event.node]
                assert trace.events[j].when <= event.when
                assert clocks[j] < clocks[i]
            last_seen[event.node] = i
        # Message edges carry their payload-kind attribution.
        for (src, dst), kind in graph.message_edges.items():
            assert trace.events[src].kind == "send"
            assert isinstance(kind, str) and kind
            assert src in graph.preds[dst]


class TestGoldenSummary:
    """The CLI causal summary of the golden trace is byte-stable."""

    def test_cli_summary_matches_golden(self, capsys):
        assert main(["trace", "causal", GOLDEN_TRACE]) == 0
        out = capsys.readouterr().out
        with open(GOLDEN_SUMMARY, encoding="utf-8") as fh:
            assert out == fh.read()

    def test_explain_matches_cli(self):
        trace = load_trace(GOLDEN_TRACE)
        with open(GOLDEN_SUMMARY, encoding="utf-8") as fh:
            assert explain(trace) + "\n" == fh.read()

    def test_cli_json_payload(self, tmp_path):
        out = str(tmp_path / "causal.json")
        assert main(["trace", "causal", GOLDEN_TRACE, "--json", out]) == 0
        import json

        with open(out, encoding="utf-8") as fh:
            payload = json.load(fh)
        cp = payload["critical_path"]
        assert cp["round_length"] == cp["decide_round"] == 4
        assert cp["message_hops"] == 3
        assert cp["messages_by_kind"] == {
            "compete": 1, "final": 1, "response": 1
        }
        assert payload["events"] == 142
        assert len(cp["hops"]) == len(cp["via"])
