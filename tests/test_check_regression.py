"""The benchmark-regression comparator (benchmarks/check_regression.py)."""

import importlib.util
import json
import pathlib

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location(
        "check_regression", ROOT / "benchmarks" / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def payload(metrics, directions=None):
    return {"bench": "x", "smoke": True, "metrics": metrics, "directions": directions or {}}


class TestCompareMetrics:
    def test_identical_metrics_pass(self, checker):
        base = payload({"a/messages": 100, "a/rounds": 3})
        failures, notes = checker.compare_metrics(base, payload(dict(base["metrics"])), 0.25)
        assert failures == [] and notes == []

    def test_within_threshold_passes(self, checker):
        base = payload({"a/messages": 100})
        failures, _ = checker.compare_metrics(base, payload({"a/messages": 124}), 0.25)
        assert failures == []

    def test_lower_is_better_regression_fails(self, checker):
        base = payload({"a/messages": 100})
        failures, _ = checker.compare_metrics(base, payload({"a/messages": 126}), 0.25)
        assert len(failures) == 1 and "a/messages" in failures[0]

    def test_higher_is_better_direction(self, checker):
        base = payload({"a/rate": 1.0}, directions={"a/rate": "higher"})
        failures, _ = checker.compare_metrics(base, payload({"a/rate": 0.5}), 0.25)
        assert len(failures) == 1
        # Increases of a higher-is-better metric never fail.
        failures, _ = checker.compare_metrics(base, payload({"a/rate": 2.0}), 0.25)
        assert failures == []

    def test_large_improvement_is_a_note_not_a_failure(self, checker):
        base = payload({"a/messages": 100})
        failures, notes = checker.compare_metrics(base, payload({"a/messages": 40}), 0.25)
        assert failures == []
        assert notes and "refreshing" in notes[0]

    def test_missing_metric_fails(self, checker):
        base = payload({"a/messages": 100, "a/rounds": 3})
        failures, _ = checker.compare_metrics(base, payload({"a/messages": 100}), 0.25)
        assert any("disappeared" in f for f in failures)

    def test_new_metric_is_a_note(self, checker):
        base = payload({"a/messages": 100})
        _, notes = checker.compare_metrics(
            base, payload({"a/messages": 100, "b/messages": 5}), 0.25
        )
        assert any("new metric" in n for n in notes)

    def test_zero_baseline_fails_on_any_bad_move(self, checker):
        base = payload({"a/drops": 0})
        failures, _ = checker.compare_metrics(base, payload({"a/drops": 1}), 0.25)
        assert len(failures) == 1
        failures, _ = checker.compare_metrics(base, payload({"a/drops": 0}), 0.25)
        assert failures == []


class TestDirectoryGate:
    def write(self, directory, name, data):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / name).write_text(json.dumps(data))

    def test_end_to_end_pass_and_fail(self, checker, tmp_path):
        baselines = tmp_path / "baselines"
        artifacts = tmp_path / "artifacts"
        self.write(baselines, "BENCH_demo.json", payload({"m": 10}))
        self.write(artifacts, "BENCH_demo.json", payload({"m": 11}))
        assert checker.main(
            ["--artifact-dir", str(artifacts), "--baseline-dir", str(baselines)]
        ) == 0
        self.write(artifacts, "BENCH_demo.json", payload({"m": 20}))
        assert checker.main(
            ["--artifact-dir", str(artifacts), "--baseline-dir", str(baselines)]
        ) == 1

    def test_missing_artifact_fails(self, checker, tmp_path):
        baselines = tmp_path / "baselines"
        self.write(baselines, "BENCH_demo.json", payload({"m": 10}))
        (tmp_path / "artifacts").mkdir()
        failures, _ = checker.check_directory(baselines, tmp_path / "artifacts", 0.25)
        assert any("artifact missing" in f for f in failures)

    def test_empty_baseline_dir_fails(self, checker, tmp_path):
        (tmp_path / "baselines").mkdir()
        (tmp_path / "artifacts").mkdir()
        failures, _ = checker.check_directory(
            tmp_path / "baselines", tmp_path / "artifacts", 0.25
        )
        assert failures

    def test_unbaselined_artifact_is_a_note(self, checker, tmp_path):
        baselines = tmp_path / "baselines"
        artifacts = tmp_path / "artifacts"
        self.write(baselines, "BENCH_demo.json", payload({"m": 10}))
        self.write(artifacts, "BENCH_demo.json", payload({"m": 10}))
        self.write(artifacts, "BENCH_new.json", payload({"m": 1}))
        failures, notes = checker.check_directory(baselines, artifacts, 0.25)
        assert failures == []
        assert any("no baseline" in n for n in notes)

    def test_checked_in_baselines_are_wellformed(self, checker):
        """The repo's own baselines parse and carry gateable metrics."""
        for path in (ROOT / "benchmarks" / "baselines").glob("BENCH_*.json"):
            data = json.loads(path.read_text())
            assert data["metrics"], path
            assert data["smoke"] is True, path
            for key, value in data["metrics"].items():
                assert isinstance(value, (int, float)), (path, key)
