"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_all_algorithms(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in (
            "improved_tradeoff",
            "afek_gafni",
            "small_id",
            "kutten16",
            "las_vegas",
            "adversarial_2round",
            "async_tradeoff",
            "async_afek_gafni",
        ):
            assert name in out


class TestRun:
    def test_run_sync_deterministic(self, capsys):
        assert main(["run", "improved_tradeoff", "--n", "64", "--param", "ell=3"]) == 0
        out = capsys.readouterr().out
        assert "unique leader" in out
        assert "yes" in out

    def test_run_multiple_seeds(self, capsys):
        assert (
            main(["run", "las_vegas", "--n", "64", "--seeds", "0", "1", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert out.count("yes") >= 3

    def test_run_adversarial_roots(self, capsys):
        assert (
            main(
                [
                    "run",
                    "adversarial_2round",
                    "--n",
                    "128",
                    "--roots",
                    "4",
                    "--param",
                    "epsilon=0.02",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Theorem 4.1" in out

    def test_run_async(self, capsys):
        assert main(["run", "async_tradeoff", "--n", "64", "--param", "k=2"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 5.1" in out

    def test_run_async_ag_simultaneous(self, capsys):
        assert main(["run", "async_afek_gafni", "--n", "32"]) == 0
        out = capsys.readouterr().out
        assert "yes" in out

    def test_run_small_id_gets_small_universe(self, capsys):
        assert main(["run", "small_id", "--n", "64", "--param", "d=8"]) == 0
        out = capsys.readouterr().out
        assert "yes" in out

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nope"])


class TestBounds:
    def test_bounds_table(self, capsys):
        assert main(["bounds", "1024"]) == 0
        out = capsys.readouterr().out
        assert "Thm 3.8" in out
        assert "Thm 5.14" in out
        assert "262,144" in out  # (n/2)^2 at n=1024

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
