"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_all_algorithms(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in (
            "improved_tradeoff",
            "afek_gafni",
            "small_id",
            "kutten16",
            "las_vegas",
            "adversarial_2round",
            "async_tradeoff",
            "async_afek_gafni",
        ):
            assert name in out


class TestRun:
    def test_run_sync_deterministic(self, capsys):
        assert main(["run", "improved_tradeoff", "--n", "64", "--param", "ell=3"]) == 0
        out = capsys.readouterr().out
        assert "unique leader" in out
        assert "yes" in out

    def test_run_multiple_seeds(self, capsys):
        assert (
            main(["run", "las_vegas", "--n", "64", "--seeds", "0", "1", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert out.count("yes") >= 3

    def test_run_adversarial_roots(self, capsys):
        assert (
            main(
                [
                    "run",
                    "adversarial_2round",
                    "--n",
                    "128",
                    "--roots",
                    "4",
                    "--param",
                    "epsilon=0.02",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Theorem 4.1" in out

    def test_run_async(self, capsys):
        assert main(["run", "async_tradeoff", "--n", "64", "--param", "k=2"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 5.1" in out

    def test_run_async_ag_simultaneous(self, capsys):
        assert main(["run", "async_afek_gafni", "--n", "32"]) == 0
        out = capsys.readouterr().out
        assert "yes" in out

    def test_run_small_id_gets_small_universe(self, capsys):
        assert main(["run", "small_id", "--n", "64", "--param", "d=8"]) == 0
        out = capsys.readouterr().out
        assert "yes" in out

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nope"])


class TestBounds:
    def test_bounds_table(self, capsys):
        assert main(["bounds", "1024"]) == 0
        out = capsys.readouterr().out
        assert "Thm 3.8" in out
        assert "Thm 5.14" in out
        assert "262,144" in out  # (n/2)^2 at n=1024

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestRunFastBatch:
    """``repro run --engine fast --batch`` and the fast wake-up flags."""

    def test_batched_run_prints_one_row_per_seed(self, capsys):
        pytest.importorskip("numpy")
        assert (
            main(
                ["run", "improved_tradeoff", "--n", "64", "--engine", "fast",
                 "--seeds", "0", "1", "2", "3", "--batch", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.count("yes") >= 4

    def test_batched_rows_match_unbatched_in_exact_mode(self, capsys):
        pytest.importorskip("numpy")
        # Lanes of one chunk share the first seed's ID assignment, so a
        # one-chunk batch reproduces the unbatched first-seed workload.
        main(["run", "las_vegas", "--n", "64", "--engine", "fast",
              "--seeds", "0", "1", "--batch", "2"])
        batched = capsys.readouterr().out
        main(["run", "las_vegas", "--n", "64", "--engine", "fast",
              "--seeds", "0", "1"])
        plain = capsys.readouterr().out

        def rows(text):
            return [
                line.split()[:6] for line in text.splitlines()
                if line and line.split()[0] in ("0", "1")
            ]

        assert rows(batched) == rows(plain)

    def test_fast_roots_for_adversarial_2round(self, capsys):
        pytest.importorskip("numpy")
        assert (
            main(["run", "adversarial_2round", "--n", "128", "--engine", "fast",
                  "--roots", "4", "--param", "epsilon=0.02"])
            == 0
        )
        out = capsys.readouterr().out
        assert "Theorem 4.1" in out

    def test_fast_kutten16_runs(self, capsys):
        pytest.importorskip("numpy")
        assert main(["run", "kutten16", "--n", "256", "--engine", "fast"]) == 0
        assert "[16]" in capsys.readouterr().out

    def test_batch_requires_fast_engine(self):
        with pytest.raises(SystemExit, match="--engine fast"):
            main(["run", "improved_tradeoff", "--n", "64", "--batch", "2"])

    def test_batch_must_be_positive(self):
        pytest.importorskip("numpy")
        with pytest.raises(SystemExit, match=">= 1"):
            main(["run", "improved_tradeoff", "--n", "64", "--engine", "fast",
                  "--batch", "0"])

    def test_roots_rejected_for_simultaneous_only_ports(self):
        pytest.importorskip("numpy")
        with pytest.raises(SystemExit, match="simultaneous"):
            main(["run", "afek_gafni", "--n", "64", "--engine", "fast",
                  "--roots", "2"])

    def test_list_reports_fast_ports_for_every_sync_algorithm(self, capsys):
        pytest.importorskip("numpy")
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for line in out.splitlines():
            name = line.split()[0] if line.strip() else ""
            if name in ("kutten16", "adversarial_2round", "small_id"):
                assert "yes" in line, line
