"""The ``python -m repro adversary`` subcommand."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestParsing:
    def test_run_flags_parse(self):
        args = build_parser().parse_args(
            ["adversary", "run", "--n", "9", "--slander", "0:8@5-60",
             "--crash", "3@10", "--byzantine", "0", "--tamper", "forge:compete"]
        )
        assert args.adversary_command == "run"
        assert args.slander[0].accuser == 0
        assert args.slander[0].victims == (8,)
        assert args.slander[0].start == 5.0 and args.slander[0].end == 60.0
        assert args.tamper[0].mode == "forge"
        assert args.tamper[0].kinds == ("compete",)

    def test_open_ended_slander(self):
        args = build_parser().parse_args(
            ["adversary", "run", "--slander", "0:3@5"]
        )
        assert args.slander[0].end is None

    def test_bad_specs_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["adversary", "run", "--slander", "oops"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["adversary", "run", "--tamper", "gaslight"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["adversary"])

    def test_semantic_slander_errors_keep_their_message(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["adversary", "run", "--slander", "0:0@5"])
        assert "slander itself" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            build_parser().parse_args(["adversary", "run", "--slander", "0:3@9-5"])
        assert "after its start" in capsys.readouterr().err

    def test_bad_threshold_is_a_usage_error(self, capsys):
        assert main(
            ["adversary", "run", "--n", "5", "--slander", "0:4@5-60",
             "--threshold", "0.3", "--seeds", "0"]
        ) == 2
        assert "majority" in capsys.readouterr().err
        assert main(
            ["adversary", "sweep", "--ns", "8", "--seeds", "0",
             "--threshold", "0.2"]
        ) == 2
        assert "majority" in capsys.readouterr().err



class TestRun:
    def test_slander_crash_quorum_run(self, capsys):
        assert main(
            ["adversary", "run", "--n", "9", "--slander", "0:8@5-60",
             "--crash", "3@10", "--seeds", "0", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "quorum_reelect" in out

    def test_forge_run_counts_tampering(self, capsys):
        assert main(
            ["adversary", "run", "--n", "8", "--byzantine", "0",
             "--tamper", "forge:compete", "--seeds", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "tampers=1" in out

    def test_no_quorum_slander_fails_nonzero_exit(self, capsys):
        """The plain wrapper loses under slander — split brain (the
        deposed victim also commits LEADER) or a stall, depending on
        when the rumor lands relative to the commit window."""
        assert main(
            ["adversary", "run", "--n", "7", "--slander", "0:6@5",
             "--no-quorum", "--seeds", "0"]
        ) == 1
        out = capsys.readouterr().out
        assert "STALLED" in out or "without a unique surviving leader" in out

    def test_quorum_wins_where_plain_fails(self, capsys):
        """Same slander schedule, quorum gating on: clean convergence."""
        assert main(
            ["adversary", "run", "--n", "7", "--slander", "0:6@5", "--seeds", "0"]
        ) == 0

    def test_tamper_without_byzantine_is_a_usage_error(self, capsys):
        """--tamper alone must not silently run an honest election."""
        assert main(
            ["adversary", "run", "--n", "8", "--tamper", "forge:compete",
             "--seeds", "0"]
        ) == 2
        assert "byzantine" in capsys.readouterr().err

    def test_invalid_plan_is_a_usage_error(self, capsys):
        assert main(
            ["adversary", "run", "--n", "4", "--byzantine", "0", "1",
             "--tamper", "corrupt", "--seeds", "0"]
        ) == 2
        assert "f >= n/2" in capsys.readouterr().err

    def test_async_engine_run(self, capsys):
        assert main(
            ["adversary", "run", "--n", "6", "--slander", "0:5@2",
             "--engine", "async", "--seeds", "0"]
        ) == 0


class TestSweep:
    def test_no_quorum_stall_is_reported_not_raised(self, capsys):
        assert main(
            ["adversary", "sweep", "--ns", "7", "--seeds", "0",
             "--mode", "slander", "--no-quorum"]
        ) == 1
        assert "STALLED" in capsys.readouterr().out

    def test_sweep_json_metrics(self, capsys):
        assert main(
            ["adversary", "sweep", "--ns", "8", "--seeds", "0",
             "--mode", "both", "--json", "-"]
        ) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        metrics = payload["metrics"]
        assert metrics["n=8/byzantine_messages"] > metrics["n=8/honest_messages"]
        assert metrics["n=8/overhead"] > 1.0
