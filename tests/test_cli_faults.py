"""The ``python -m repro faults`` subcommand."""

import pytest

from repro.__main__ import build_parser, main


class TestParsing:
    def test_crash_spec(self):
        args = build_parser().parse_args(
            ["faults", "monarchical", "--crash", "3@2", "--crash", "5@4.5"]
        )
        assert [(c.node, c.at) for c in args.crash] == [(3, 2.0), (5, 4.5)]

    def test_bad_crash_spec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "monarchical", "--crash", "nope"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "nope"])


class TestRuns:
    def test_monarchical_crash(self, capsys):
        assert main(["faults", "monarchical", "--n", "16", "--crash", "15@2"]) == 0
        out = capsys.readouterr().out
        assert "survivor leader" in out
        assert "yes" in out

    def test_reelect_kill_leader(self, capsys):
        assert (
            main(
                [
                    "faults",
                    "reelect",
                    "--n",
                    "24",
                    "--kill-leader",
                    "--param",
                    "inner=afek_gafni",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "kill-leader" in out
        assert "yes" in out

    def test_async_engine(self, capsys):
        assert (
            main(
                [
                    "faults",
                    "monarchical",
                    "--n",
                    "12",
                    "--engine",
                    "async",
                    "--crash",
                    "11@0.5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "async engine" in out

    def test_crash_oblivious_algorithm_fails_visibly(self, capsys):
        # The paper's algorithms are crash-oblivious by design; the CLI
        # must report the failed failover (exit 1) rather than hide it.
        assert (
            main(["faults", "kutten16", "--n", "64", "--duplicate", "0.05"]) == 1
        )
        out = capsys.readouterr().out
        assert "kutten16" in out
        assert "without a unique surviving leader" in out

    def test_engine_mismatch_errors(self):
        with pytest.raises(SystemExit):
            main(["faults", "las_vegas", "--engine", "async"])

    def test_eventually_perfect_flags(self, capsys):
        assert (
            main(
                [
                    "faults",
                    "monarchical",
                    "--n",
                    "16",
                    "--detector",
                    "eventually_perfect",
                    "--lag",
                    "1",
                    "--noise-horizon",
                    "3",
                    "--false-prob",
                    "0.2",
                    "--param",
                    "stable_rounds=6",
                    "--crash",
                    "15@2",
                ]
            )
            == 0
        )
        assert "eventually_perfect" in capsys.readouterr().out
