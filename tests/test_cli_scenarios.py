"""The ``python -m repro scenarios`` subcommand."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestParsing:
    def test_subcommands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["scenarios", "list"]).scenario_command == "list"
        args = parser.parse_args(
            ["scenarios", "run", "partition_heal", "--n", "64", "--seed", "1",
             "--json", "-"]
        )
        assert args.name == "partition_heal" and args.json == "-"
        args = parser.parse_args(
            ["scenarios", "sweep", "election_storm", "--ns", "16", "32",
             "--seeds", "0", "1"]
        )
        assert args.ns == [16, 32]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios", "run", "nope"])

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios"])


class TestList:
    def test_lists_all_named_scenarios(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("partition_heal", "rolling_restart", "flapping_leader",
                     "staggered_joins", "election_storm"):
            assert name in out


class TestRun:
    def test_partition_heal_acceptance(self, capsys):
        """The acceptance-criteria invocation: JSON on stdout, exit 0."""
        assert main(
            ["scenarios", "run", "partition_heal", "--n", "64", "--seed", "1",
             "--json", "-"]
        ) == 0
        out = capsys.readouterr().out
        assert "agreed by all up nodes" in out
        payload = json.loads(out[out.index("{"):])
        metrics = payload["metrics"]
        assert metrics["final_agreed"] is True
        assert metrics["final_leader_id"] is not None
        assert metrics["mean_failover_latency"] > 0
        assert metrics["epoch_churn"] >= 4
        assert metrics["message_overhead"] > 1.0
        triggers = [e["trigger"] for e in payload["epochs"]]
        assert triggers == ["initial", "partition", "heal"]

    def test_json_file_output(self, tmp_path, capsys):
        target = tmp_path / "report.json"
        assert main(
            ["scenarios", "run", "election_storm", "--n", "16",
             "--json", str(target)]
        ) == 0
        payload = json.loads(target.read_text())
        assert payload["scenario"] == "election_storm"
        assert len(payload["records"]) == payload["metrics"]["elections"]

    def test_fast_engine_subset(self, capsys):
        pytest.importorskip("numpy")
        assert main(
            ["scenarios", "run", "rolling_restart", "--n", "16", "--engine", "fast"]
        ) == 0
        assert "agreed by all up nodes" in capsys.readouterr().out

    def test_partitioned_scenario_runs_on_fast(self, capsys):
        pytest.importorskip("numpy")
        assert main(
            ["scenarios", "run", "partition_heal", "--n", "16", "--engine", "fast"]
        ) == 0
        out = capsys.readouterr().out
        assert "fast engine" in out
        assert "partition" in out

    def test_async_engine(self, capsys):
        assert main(
            ["scenarios", "run", "flapping_leader", "--n", "12",
             "--engine", "async"]
        ) == 0
        out = capsys.readouterr().out
        assert "epoch_churn=4" in out


class TestSweep:
    def test_sweep_table_and_json(self, capsys):
        assert main(
            ["scenarios", "sweep", "rolling_restart", "--ns", "8", "12",
             "--seeds", "0", "1", "--json", "-"]
        ) == 0
        out = capsys.readouterr().out
        assert "scenario sweep" in out
        payload = json.loads(out[out.index("{"):])
        assert payload["scenario"] == "rolling_restart"
        assert "n=8/seed=0/messages" in payload["metrics"]
