"""``repro trace`` and the ``--trace`` recording flags."""

import pytest

from repro.__main__ import main
from repro.telemetry import SCHEMA, load_trace
from repro.telemetry.stats import sends_per_round


class TestTraceRecord:
    def test_sync_record_writes_per_message_trace(self, tmp_path, capsys):
        out = str(tmp_path / "sync.jsonl")
        assert main(["trace", "record", "improved_tradeoff", "--n", "32",
                     "-o", out]) == 0
        assert "trace: wrote" in capsys.readouterr().out
        trace = load_trace(out)
        assert trace.schema == SCHEMA
        assert trace.run_context.engine == "sync"
        assert len(trace.of_kind("send")) > 0
        assert len(trace.of_kind("decide")) == 32

    def test_fast_record_writes_aggregates(self, tmp_path, capsys):
        pytest.importorskip("numpy")
        out = str(tmp_path / "fast.jsonl")
        assert main(["trace", "record", "improved_tradeoff", "--n", "48",
                     "--engine", "fast", "-o", out]) == 0
        assert "aggregate events" in capsys.readouterr().out
        trace = load_trace(out)
        assert trace.run_context.engine == "fast"
        assert trace.context["mode"] == "exact"
        rounds = trace.of_kind("round")
        assert rounds and not trace.of_kind("send")

    def test_fast_aggregates_match_object_engine_bit_exactly(self, tmp_path):
        """Exact mode: the recorded fast counters equal an object-engine
        replay of the same wiring, round for round."""
        pytest.importorskip("numpy")
        from repro.telemetry import trace_fast_lane

        out = str(tmp_path / "fast.jsonl")
        assert main(["trace", "record", "improved_tradeoff", "--n", "48",
                     "--seed", "7", "--engine", "fast", "-o", out]) == 0
        trace = load_trace(out)
        lane = trace_fast_lane(48, "improved_tradeoff", seed=7)
        assert lane.matches, lane.mismatches
        assert sends_per_round(trace) == dict(lane.sync_result.metrics.sends_by_round)

    def test_bad_algorithm_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "record", "nope", "-o", str(tmp_path / "x.jsonl")])


class TestRunTraceFlag:
    def test_run_trace_records(self, tmp_path, capsys):
        out = str(tmp_path / "run.jsonl")
        assert main(["run", "improved_tradeoff", "--n", "32",
                     "--trace", out]) == 0
        assert "trace: wrote" in capsys.readouterr().out
        assert load_trace(out).run_context.algorithm == "improved_tradeoff"

    def test_trace_needs_single_seed(self, tmp_path):
        with pytest.raises(SystemExit, match="exactly one seed"):
            main(["run", "improved_tradeoff", "--n", "32", "--seeds", "0", "1",
                  "--trace", str(tmp_path / "x.jsonl")])

    def test_batched_trace_records_every_lane(self, tmp_path, capsys):
        pytest.importorskip("numpy")
        out = str(tmp_path / "batched.jsonl")
        assert main(["run", "improved_tradeoff", "--n", "32", "--engine",
                     "fast", "--seeds", "0", "1", "--batch", "2",
                     "--trace", out]) == 0
        assert "trace: wrote" in capsys.readouterr().out
        from repro.telemetry import trace_lanes

        assert trace_lanes(load_trace(out)) == [0, 1]

    def test_trace_rejects_multiple_batched_runs(self, tmp_path):
        pytest.importorskip("numpy")
        with pytest.raises(SystemExit, match="at most --batch seeds"):
            main(["run", "improved_tradeoff", "--n", "32", "--engine", "fast",
                  "--seeds", "0", "1", "2", "--batch", "2",
                  "--trace", str(tmp_path / "x.jsonl")])


class TestScenarioAndAdversaryTrace:
    def test_scenario_trace_carries_act_annotations(self, tmp_path, capsys):
        out = str(tmp_path / "scen.jsonl")
        assert main(["scenarios", "run", "flapping_leader", "--n", "8",
                     "--trace", out]) == 0
        assert "trace: wrote" in capsys.readouterr().out
        trace = load_trace(out)
        assert trace.run_context.scenario == "flapping_leader"
        acts = {a.get("act") for a in trace.annotations if "act" in a}
        assert acts  # mid-scenario events are stamped with act coordinates
        assert any(a.get("trigger") == "baseline" for a in trace.annotations)

    def test_scenario_trace_rejects_fast_engine(self, tmp_path, capsys):
        assert main(["scenarios", "run", "election_storm", "--n", "16",
                     "--engine", "fast",
                     "--trace", str(tmp_path / "x.jsonl")]) == 2
        assert "no per-event recorder hooks" in capsys.readouterr().err

    def test_adversary_trace_records_tampering(self, tmp_path, capsys):
        out = str(tmp_path / "adv.jsonl")
        assert main(["adversary", "run", "--n", "9", "--byzantine", "0",
                     "--tamper", "forge:compete", "--trace", out]) == 0
        assert "trace: wrote" in capsys.readouterr().out
        trace = load_trace(out)
        assert len(trace.of_kind("tamper")) > 0

    def test_adversary_trace_needs_single_seed(self, tmp_path, capsys):
        assert main(["adversary", "run", "--n", "9", "--seeds", "0", "1",
                     "--trace", str(tmp_path / "x.jsonl")]) == 2
        assert "exactly one seed" in capsys.readouterr().err


class TestTraceInspect:
    @pytest.fixture
    def trace_path(self, tmp_path):
        out = str(tmp_path / "t.jsonl")
        main(["trace", "record", "improved_tradeoff", "--n", "16", "-o", out])
        return out

    def test_inspect_prints_header_and_events(self, trace_path, capsys):
        assert main(["trace", "inspect", trace_path, "--limit", "0"]) == 0
        out = capsys.readouterr().out
        assert "schema repro.trace/1" in out
        assert "decide" in out

    def test_kind_and_node_filters(self, trace_path, capsys):
        assert main(["trace", "inspect", trace_path, "--kind", "decide",
                     "--node", "3"]) == 0
        out = capsys.readouterr().out
        assert "1 of" in out
        assert "wake" not in out

    def test_limit_truncates(self, trace_path, capsys):
        assert main(["trace", "inspect", trace_path, "--limit", "2"]) == 0
        assert "raise --limit" in capsys.readouterr().out

    def test_timeline_renders_grid(self, trace_path, capsys):
        assert main(["trace", "inspect", trace_path, "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out
        assert "node  0" in out.replace("node 0", "node  0")

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["trace", "inspect", str(tmp_path / "no.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_non_trace_file_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"nope": 1}\n')
        assert main(["trace", "inspect", str(bad)]) == 2
        assert "schema" in capsys.readouterr().err


class TestTraceStats:
    def test_stats_summary(self, tmp_path, capsys):
        out = str(tmp_path / "t.jsonl")
        main(["trace", "record", "improved_tradeoff", "--n", "16", "-o", out])
        capsys.readouterr()
        assert main(["trace", "stats", out]) == 0
        text = capsys.readouterr().out
        assert "events:" in text
        assert "payload kinds:" in text
        assert "decides: 16" in text

    def test_stats_json_export(self, tmp_path, capsys):
        out = str(tmp_path / "t.jsonl")
        main(["trace", "record", "improved_tradeoff", "--n", "16", "-o", out])
        json_path = tmp_path / "stats.json"
        assert main(["trace", "stats", out, "--json", str(json_path)]) == 0
        import json

        payload = json.loads(json_path.read_text())
        assert payload["stats"]["decides"] == 16
        assert payload["context"]["algorithm"] == "improved_tradeoff"


class TestTraceDiff:
    def test_identical_traces_exit_zero(self, tmp_path, capsys):
        a = str(tmp_path / "a.jsonl")
        b = str(tmp_path / "b.jsonl")
        main(["trace", "record", "improved_tradeoff", "--n", "16", "-o", a])
        main(["trace", "record", "improved_tradeoff", "--n", "16", "-o", b])
        capsys.readouterr()
        assert main(["trace", "diff", a, b]) == 0
        assert "traces agree" in capsys.readouterr().out

    def test_injected_divergence_is_localized_to_first_round(self, tmp_path, capsys):
        """An event dropped from round 2 moves exactly one send total; the
        diff must name round 2, not just report a mismatch."""
        import json

        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        main(["trace", "record", "improved_tradeoff", "--n", "16", "-o", str(a)])
        lines = a.read_text().splitlines()
        kept = []
        dropped = False
        for line in lines:
            row = json.loads(line)
            if not dropped and row.get("k") == "send" and row.get("t") == 2.0:
                dropped = True
                continue
            kept.append(line)
        assert dropped
        b.write_text("\n".join(kept) + "\n")
        capsys.readouterr()
        assert main(["trace", "diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "first divergence at round 2" in out

    def test_cross_engine_diff_reports_context(self, tmp_path, capsys):
        pytest.importorskip("numpy")
        a = str(tmp_path / "sync.jsonl")
        b = str(tmp_path / "fast.jsonl")
        main(["trace", "record", "las_vegas", "--n", "32", "-o", a])
        main(["trace", "record", "las_vegas", "--n", "32", "--engine", "fast",
              "-o", b])
        capsys.readouterr()
        main(["trace", "diff", a, b])
        out = capsys.readouterr().out
        assert "context[engine]: 'sync' vs 'fast'" in out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        a = str(tmp_path / "a.jsonl")
        main(["trace", "record", "improved_tradeoff", "--n", "16", "-o", a])
        assert main(["trace", "diff", a, str(tmp_path / "no.jsonl")]) == 2
