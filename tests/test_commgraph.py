"""Communication graphs and component capacity (repro.lowerbound.commgraph)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ImprovedTradeoffElection
from repro.lowerbound import CommGraph, CommGraphRecorder
from repro.sync.engine import SyncNetwork


class TestUnionFind:
    def test_initially_all_singletons(self):
        g = CommGraph(5)
        assert g.component_count == 5
        assert g.largest_component_size() == 1
        assert g.component_sizes() == [1, 1, 1, 1, 1]

    def test_add_edge_merges(self):
        g = CommGraph(5)
        assert g.add_edge(0, 1)
        assert g.same_component(0, 1)
        assert g.component_count == 4
        assert g.component_size(0) == 2

    def test_duplicate_edge_no_effect(self):
        g = CommGraph(5)
        g.add_edge(0, 1)
        assert not g.add_edge(0, 1)
        assert g.edge_count == 1

    def test_reverse_edge_counts_separately(self):
        g = CommGraph(5)
        g.add_edge(0, 1)
        assert g.add_edge(1, 0)
        assert g.edge_count == 2
        assert g.component_size(0) == 2  # still one component

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            CommGraph(3).add_edge(1, 1)

    def test_members(self):
        g = CommGraph(6)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert sorted(g.component_members(2)) == [0, 1, 2]

    def test_chain_merge(self):
        g = CommGraph(8)
        for u in range(7):
            g.add_edge(u, u + 1)
        assert g.component_count == 1
        assert g.largest_component_size() == 8

    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_component_sizes_sum_to_n(self, edges):
        g = CommGraph(20)
        for u, v in edges:
            if u != v:
                g.add_edge(u, v)
        assert sum(g.component_sizes()) == 20
        assert g.component_count == len(g.component_sizes())


class TestCapacity:
    def test_fresh_pair_capacity_zero(self):
        # Two nodes that talked: each has 0 uncontacted peers inside.
        g = CommGraph(4)
        g.add_edge(0, 1)
        assert g.capacity(0) == 0

    def test_triangle_missing_one_contact(self):
        g = CommGraph(5)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        # component {0,1,2}: node 0 contacted 1 (not 2) -> 1 free;
        # node 1 contacted both -> 0 free; capacity = 0.
        assert g.capacity(0) == 0
        assert g.node_capacity(0) == 1
        assert g.node_capacity(1) == 0

    def test_star_capacity(self):
        g = CommGraph(6)
        for v in range(1, 5):
            g.add_edge(0, v)
        # leaves have 3 uncontacted peers each; center has 0.
        assert g.node_capacity(1) == 3
        assert g.capacity(1) == 0

    def test_uncontacted_in_component(self):
        g = CommGraph(6)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert g.uncontacted_in_component(0) == [2]
        assert g.uncontacted_in_component(1) == []


class TestRecorder:
    def test_recorder_tracks_algorithm_run(self):
        n = 64
        graph = CommGraph(n)
        recorder = CommGraphRecorder(graph)
        net = SyncNetwork(
            n, lambda: ImprovedTradeoffElection(ell=3), seed=2, recorder=recorder
        )
        result = net.run()
        assert result.unique_leader
        # Final broadcast connects everything into one component.
        assert graph.largest_component_size() == n
        # Growth snapshots exist for every send round.
        assert set(recorder.largest_by_round) == set(result.metrics.sends_by_round)
        # Largest component is monotone in rounds.
        series = [recorder.largest_by_round[r] for r in sorted(recorder.largest_by_round)]
        assert series == sorted(series)

    def test_edge_count_at_most_messages(self):
        n = 32
        graph = CommGraph(n)
        net = SyncNetwork(
            n,
            lambda: ImprovedTradeoffElection(ell=3),
            seed=0,
            recorder=CommGraphRecorder(graph),
        )
        result = net.run()
        assert graph.edge_count <= result.messages
