"""Shared value types (repro.common)."""


from repro.common import Decision, ProtocolError, SimulationLimitExceeded, message_kind


class TestMessageKind:
    def test_tuple_with_tag(self):
        assert message_kind(("compete", 42)) == "compete"

    def test_bare_string(self):
        assert message_kind("wake") == "wake"

    def test_untagged_tuple(self):
        assert message_kind((1, 2)) == "tuple"

    def test_empty_tuple(self):
        assert message_kind(()) == "tuple"

    def test_other_types(self):
        assert message_kind(42) == "int"
        assert message_kind(None) == "NoneType"


class TestDecision:
    def test_values(self):
        assert Decision.LEADER.value == "leader"
        assert Decision.NON_LEADER.value == "non_leader"

    def test_exceptions_are_runtime_errors(self):
        assert issubclass(ProtocolError, RuntimeError)
        assert issubclass(SimulationLimitExceeded, RuntimeError)
