"""CONGEST bit accounting (repro.congest)."""

import pytest

from repro.congest import (
    CongestAuditor,
    CongestViolation,
    assert_congest,
    congest_budget,
    payload_bits,
)
from repro.core import (
    AsyncAfekGafniElection,
    AsyncTradeoffElection,
    ImprovedTradeoffElection,
    Kutten16Election,
    LasVegasElection,
)
from repro.asyncnet.engine import AsyncNetwork
from repro.sync.engine import SyncNetwork


class TestPayloadBits:
    def test_tag_only(self):
        assert payload_bits(("win",)) == 8

    def test_int_field(self):
        assert payload_bits(("compete", 255)) == 8 + 8
        assert payload_bits(("compete", 1)) == 8 + 1

    def test_bool_field(self):
        assert payload_bits(("confirm_reply", True)) == 8 + 1

    def test_nested_fields(self):
        assert payload_bits(("rank", 7, 3)) == 8 + 3 + 2

    def test_none(self):
        assert payload_bits(None) == 1

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            payload_bits(("x", [1, 2]))

    def test_budget_scales_with_log_n(self):
        assert congest_budget(2**20) > congest_budget(2**10)

    def test_assert_congest(self):
        assert_congest(("compete", 100), 1024)
        with pytest.raises(CongestViolation):
            assert_congest(("huge", 2 ** (64 * 20)), 1024, factor=1.0)


class TestAlgorithmsAreCongest:
    """§2: 'our algorithms have their claimed complexities also under the
    CONGEST model' — every message must fit in O(log n) bits."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ImprovedTradeoffElection(ell=5),
            lambda: Kutten16Election(),
            lambda: LasVegasElection(),
        ],
        ids=["improved", "kutten16", "las_vegas"],
    )
    def test_sync_algorithms(self, factory):
        n = 128
        auditor = CongestAuditor(n)
        result = SyncNetwork(n, factory, seed=1, recorder=auditor).run()
        assert auditor.messages == result.messages
        assert 0 < auditor.max_bits <= congest_budget(n)

    @pytest.mark.parametrize(
        "factory,simultaneous",
        [
            (lambda: AsyncTradeoffElection(k=2), False),
            (AsyncAfekGafniElection, True),
        ],
        ids=["async_tradeoff", "async_ag"],
    )
    def test_async_algorithms(self, factory, simultaneous):
        n = 128
        auditor = CongestAuditor(n)
        wake_times = {u: 0.0 for u in range(n)} if simultaneous else None
        result = AsyncNetwork(
            n, factory, seed=1, recorder=auditor, wake_times=wake_times
        ).run()
        assert auditor.messages == result.messages
        assert auditor.max_bits <= congest_budget(n)

    def test_total_bits_accumulate(self):
        n = 64
        auditor = CongestAuditor(n)
        SyncNetwork(
            n, lambda: ImprovedTradeoffElection(ell=3), seed=0, recorder=auditor
        ).run()
        assert auditor.total_bits >= auditor.messages  # >= 1 bit each
