"""Cover-tree reconstruction (Lemmas 5.4-5.8 machinery)."""

import pytest

from repro.asyncnet import AsyncNetwork, TargetedDelayScheduler, UnitDelayScheduler
from repro.asyncnet.algorithm import AsyncAlgorithm
from repro.core import AsyncTradeoffElection
from repro.lowerbound.covertree import build_cover_tree
from repro.net.ports import CanonicalPortMap
from repro.trace import MemoryRecorder


class Chain(AsyncAlgorithm):
    """Node i wakes node i+1 (canonical ports): a path cover tree."""

    def on_wake(self, ctx):
        if ctx.node < ctx.n - 1:
            ctx.send(0, ("next",))  # canonical port 0 -> node+1

    def on_message(self, ctx, port, payload):
        pass


class Star(AsyncAlgorithm):
    """Node 0 wakes everyone directly: a star cover tree."""

    def on_wake(self, ctx):
        if ctx.node == 0:
            ctx.broadcast(("hi",))

    def on_message(self, ctx, port, payload):
        pass


def run_with_tree(n, factory, **kw):
    rec = MemoryRecorder()
    net = AsyncNetwork(
        n, factory, recorder=rec, scheduler=UnitDelayScheduler(), **kw
    )
    result = net.run()
    return result, build_cover_tree(n, rec)


class TestSyntheticTrees:
    def test_chain_is_a_path(self):
        n = 6
        _, tree = run_with_tree(n, Chain, port_map=CanonicalPortMap(n))
        assert tree.covered == n
        assert tree.roots == [0]
        assert tree.height() == n - 1
        assert tree.parent[3] == 2
        assert tree.branching() == [1] * (n - 1)

    def test_star_has_depth_one(self):
        n = 8
        _, tree = run_with_tree(n, Star)
        assert tree.height() == 1
        assert tree.branching() == [n - 1]
        assert tree.children(0) and len(tree.children(0)) == n - 1

    def test_multiple_roots(self):
        n = 6
        _, tree = run_with_tree(
            n, Chain, port_map=CanonicalPortMap(n), wake_times={0: 0.0, 3: 0.0}
        )
        assert sorted(tree.roots) == [0, 3]
        assert tree.depth(2) == 2  # 0 -> 1 -> 2
        assert tree.depth(4) == 1  # 3 -> 4

    def test_never_woken_nodes_absent(self):
        class Silent(AsyncAlgorithm):
            def on_message(self, ctx, port, payload):
                pass

        n = 5
        _, tree = run_with_tree(n, Silent, wake_times={2: 0.0})
        assert tree.covered == 1
        assert tree.roots == [2]

    def test_wake_front_progression(self):
        n = 5
        _, tree = run_with_tree(n, Chain, port_map=CanonicalPortMap(n))
        front = tree.wake_times_by_depth()
        assert front == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0}


class TestAlgorithm2CoverTree:
    """The Lemma 5.7 claims on the real wake-up phase."""

    @pytest.mark.parametrize("k", [2, 3, 4])
    @pytest.mark.slow
    def test_height_at_most_k_plus_2(self, k):
        n = 512
        result, tree = run_with_tree(n, lambda: AsyncTradeoffElection(k=k), seed=k, max_events=8_000_000)
        assert tree.covered == n  # Lemma 5.2: everyone wakes
        assert tree.height() <= k + 2, (k, tree.height())

    def test_single_root_by_default(self):
        _, tree = run_with_tree(256, lambda: AsyncTradeoffElection(k=2), max_events=8_000_000)
        assert tree.roots == [0]

    def test_wake_completion_within_k_plus_4(self):
        k, n = 3, 512
        _, tree = run_with_tree(n, lambda: AsyncTradeoffElection(k=k), seed=1, max_events=8_000_000)
        assert max(tree.wake_time.values()) <= k + 4  # Lemma 5.2

    def test_branching_at_least_one_for_internal(self):
        _, tree = run_with_tree(256, lambda: AsyncTradeoffElection(k=2), seed=2, max_events=8_000_000)
        assert min(tree.branching()) >= 1


@pytest.mark.slow
class TestTargetedScheduler:
    def test_kind_delays_validated(self):
        with pytest.raises(ValueError):
            TargetedDelayScheduler({"win": 0.0})
        with pytest.raises(ValueError):
            TargetedDelayScheduler({}, default=2.0)

    def test_kind_routing(self):
        sched = TargetedDelayScheduler({"fast": 0.01, "slow": 1.0}, default=0.5)
        assert sched.delay(0, 1, 0.0, ("fast", 1)) == 0.01
        assert sched.delay(0, 1, 0.0, ("slow",)) == 1.0
        assert sched.delay(0, 1, 0.0, ("other",)) == 0.5
        assert sched.delay(0, 1, 0.0, "slow") == 1.0
        assert sched.delay(0, 1, 0.0, 42) == 0.5

    @pytest.mark.parametrize(
        "delays",
        [
            {"compete": 0.01, "win": 1.0},  # rush competes, stall verdicts
            {"wake": 1.0, "compete": 0.01},  # competes overtake the wave
            {"confirm": 1.0, "confirm_reply": 1.0},  # stretch consultations
        ],
        ids=["stall-wins", "rush-competes", "slow-consults"],
    )
    def test_algorithm2_safe_under_targeted_adversary(self, delays):
        """The Lemma 5.9 interleavings: whatever the per-kind delays,
        never two leaders."""
        for seed in range(5):
            net = AsyncNetwork(
                256,
                lambda: AsyncTradeoffElection(k=2),
                seed=seed,
                scheduler=TargetedDelayScheduler(delays),
                max_events=8_000_000,
            )
            result = net.run()
            assert len(result.leaders) <= 1, (delays, seed)

    def test_async_ag_safe_under_targeted_adversary(self):
        from repro.core import AsyncAfekGafniElection

        for delays in ({"req": 0.01, "ack": 1.0}, {"cancel": 1.0}):
            net = AsyncNetwork(
                128,
                AsyncAfekGafniElection,
                seed=3,
                scheduler=TargetedDelayScheduler(delays),
                wake_times={u: 0.0 for u in range(128)},
                max_events=8_000_000,
            )
            result = net.run()
            assert result.unique_leader, delays
