"""Documentation consistency: the docs must reference real artifacts."""

import pathlib
import re


ROOT = pathlib.Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestDesignDoc:
    def test_every_bench_target_exists(self):
        text = read("DESIGN.md")
        targets = set(re.findall(r"`benchmarks/(bench_\w+\.py)`", text))
        assert targets, "DESIGN.md should reference bench targets"
        for target in targets:
            assert (ROOT / "benchmarks" / target).exists(), target

    def test_every_bench_file_is_indexed(self):
        text = read("DESIGN.md")
        on_disk = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
        indexed = set(re.findall(r"`benchmarks/(bench_\w+\.py)`", text))
        assert on_disk <= indexed, f"unindexed benches: {on_disk - indexed}"

    def test_mentions_all_algorithms(self):
        text = read("DESIGN.md")
        for module in (
            "improved_tradeoff",
            "afek_gafni",
            "small_id",
            "kutten16",
            "las_vegas",
            "adversarial_2round",
            "async_tradeoff",
            "async_afek_gafni",
        ):
            assert module in text, module


class TestReadme:
    def test_every_example_listed_exists(self):
        text = read("README.md")
        examples = set(re.findall(r"examples/(\w+\.py)", text))
        for name in examples:
            assert (ROOT / "examples" / name).exists(), name

    def test_every_example_on_disk_is_listed(self):
        text = read("README.md")
        on_disk = {p.name for p in (ROOT / "examples").glob("*.py")}
        listed = set(re.findall(r"examples/(\w+\.py)", text))
        assert on_disk <= listed, f"unlisted examples: {on_disk - listed}"

    def test_quickstart_snippet_runs(self):
        text = read("README.md")
        match = re.search(r"```python\n(.*?)```", text, re.DOTALL)
        assert match, "README quickstart snippet missing"
        snippet = match.group(1).replace("1024", "64")  # shrink for test speed
        namespace = {}
        exec(compile(snippet, "<README>", "exec"), namespace)  # noqa: S102

    def test_cli_commands_parse(self):
        from repro.__main__ import build_parser

        parser = build_parser()
        text = read("README.md")
        for line in re.findall(r"^python -m repro (.+)$", text, re.MULTILINE):
            argv = line.split("#")[0].split()
            args = parser.parse_args(argv)
            assert args.command


class TestExperimentsDoc:
    def test_references_only_real_benches(self):
        text = read("EXPERIMENTS.md")
        for target in set(re.findall(r"`(bench_\w+\.py)`", text)):
            assert (ROOT / "benchmarks" / target).exists(), target

    def test_covers_every_table1_experiment_id(self):
        text = read("EXPERIMENTS.md")
        for exp_id in ("T1.1", "T1.2", "T1.3", "T1.4", "T1.6", "T1.8",
                       "T1.9", "T1.10", "T1.11", "T1.12", "T1.14", "F1", "F2"):
            assert exp_id in text, exp_id


class TestCIConsistency:
    """The CI workflow, benches and docs must agree on the smoke recipes."""

    def workflow(self) -> str:
        return read(".github/workflows/ci.yml")

    def test_ci_smoke_benches_exist_and_are_documented(self):
        text = self.workflow()
        smoke = set(re.findall(r"benchmarks/(bench_\w+\.py) --smoke", text))
        assert smoke, "CI should run smoke benchmarks"
        experiments = read("EXPERIMENTS.md")
        for bench in smoke:
            assert (ROOT / "benchmarks" / bench).exists(), bench
            assert bench in experiments, f"{bench} smoke run not in EXPERIMENTS.md"

    def test_ci_runs_the_scale_and_churn_smokes(self):
        text = self.workflow()
        assert "bench_fastsync_scale.py --smoke" in text
        assert "bench_failover_churn.py --smoke" in text

    def test_ci_gates_bench_regressions(self):
        text = self.workflow()
        assert "check_regression.py" in text
        assert "bench-artifacts" in text
        assert "upload-artifact" in text

    def test_every_json_emitting_smoke_has_a_baseline(self):
        text = self.workflow()
        for name in re.findall(r"--json bench-artifacts/(BENCH_\w+\.json)", text):
            assert (ROOT / "benchmarks" / "baselines" / name).exists(), (
                f"CI emits {name} but benchmarks/baselines/ has no baseline for it"
            )

    def test_ci_matrix_covers_supported_pythons(self):
        text = self.workflow()
        assert '"3.10"' in text and '"3.11"' in text and '"3.12"' in text

    def test_lint_job_runs_ruff_with_config(self):
        assert "ruff check" in self.workflow()
        assert (ROOT / "ruff.toml").exists()

    def test_experiments_documents_the_regression_gate(self):
        experiments = read("EXPERIMENTS.md")
        assert "check_regression.py" in experiments
        assert "baselines" in experiments


class TestApiDoc:
    """docs/API.md must describe the surface that actually exists."""

    def doc(self) -> str:
        return read("docs/API.md")

    def test_every_dotted_path_resolves(self):
        """Every backticked ``repro.xxx.Yyy`` path imports and resolves."""
        import importlib

        paths = set(re.findall(r"`(repro(?:\.\w+)+)`", self.doc()))
        assert paths, "API.md should reference dotted repro paths"
        for path in paths:
            parts = path.split(".")
            obj = None
            for split in range(len(parts), 0, -1):
                try:
                    obj = importlib.import_module(".".join(parts[:split]))
                except ImportError:
                    continue
                for attr in parts[split:]:
                    assert hasattr(obj, attr), f"{path}: missing {attr}"
                    obj = getattr(obj, attr)
                break
            assert obj is not None, f"{path} does not import"

    def test_documented_signatures_match(self):
        """Keyword arguments named in the signature blocks must exist."""
        import inspect

        from repro.analysis import run_fast_batch, run_fast_trial, sweep_fast
        from repro.fastsync import FastSyncNetwork
        from repro.scenarios import ScenarioRunner, run_scenario_batch

        for func, required in [
            (FastSyncNetwork.__init__,
             {"ids", "seed", "seeds", "batch", "mode", "exact_limit",
              "max_rounds", "crashes", "lane_crashes", "roots"}),
            (run_fast_trial, {"seed", "ids", "mode", "crashes", "roots"}),
            (run_fast_batch, {"seeds", "ids", "mode", "crashes",
                              "lane_crashes", "roots"}),
            (sweep_fast, {"seeds", "batch"}),
            (ScenarioRunner.__init__,
             {"engine", "seed", "inner", "lag", "quorum"}),
            (run_scenario_batch, {"engine"}),
        ]:
            parameters = set(inspect.signature(func).parameters)
            missing = required - parameters
            assert not missing, f"{func.__qualname__} lost kwargs {missing}"

    def test_capability_flags_exist(self):
        from repro.fastsync import VectorAlgorithm

        for flag in ("supports_crashes", "supports_batch", "supports_roots"):
            assert flag in self.doc()
            assert hasattr(VectorAlgorithm, flag), flag

    def test_fast_registry_listing_is_complete(self):
        from repro.fastsync import FAST_ALGORITHMS

        for name in FAST_ALGORITHMS:
            assert f"`{name}`" in self.doc(), f"API.md misses fast port {name}"

    def test_named_scenarios_listing_is_complete(self):
        from repro.scenarios import NAMED_SCENARIOS

        for name in NAMED_SCENARIOS:
            assert name in self.doc(), f"API.md misses scenario {name}"

    def test_readme_links_the_reference(self):
        assert "docs/API.md" in read("README.md")
        assert "docs/TUTORIAL.md" in read("README.md")


class TestTutorialDoc:
    """Every TUTORIAL.md command and code block must still work."""

    def doc(self) -> str:
        return read("docs/TUTORIAL.md")

    def cli_lines(self):
        for line in re.findall(
            r"^(?:PYTHONPATH=src )?python -m repro (.+)$", self.doc(), re.MULTILINE
        ):
            yield line.split("#")[0].split()

    def test_cli_commands_parse(self):
        from repro.__main__ import build_parser

        parser = build_parser()
        lines = list(self.cli_lines())
        assert len(lines) >= 10, "tutorial should walk through the CLI"
        for argv in lines:
            args = parser.parse_args(argv)
            assert args.command

    def test_python_blocks_execute(self):
        blocks = re.findall(r"```python\n(.*?)```", self.doc(), re.DOTALL)
        assert blocks, "tutorial should carry runnable code"
        for block in blocks:
            snippet = block.replace("1024", "64").replace("100_000", "256")
            snippet = snippet.replace("4096", "256")
            exec(compile(snippet, "<TUTORIAL>", "exec"), {})  # noqa: S102

    def test_json_timeline_loads(self):
        from repro.scenarios import scenario_from_json

        blocks = re.findall(r"```json\n(.*?)```", self.doc(), re.DOTALL)
        assert blocks, "tutorial should carry a JSON timeline"
        for block in blocks:
            scenario = scenario_from_json(block)
            assert scenario.events

    def test_referenced_bench_files_exist(self):
        for target in set(re.findall(r"(bench_\w+\.py)", self.doc())):
            assert (ROOT / "benchmarks" / target).exists(), target
        assert "check_regression.py" in self.doc()

    def test_mentions_the_speedup_contract(self):
        assert "3x" in self.doc()
        assert "--batch" in self.doc()


class TestModelDoc:
    def test_deviations_match_code_markers(self):
        """Every deviation documented in MODEL.md is also documented at
        the implementation site."""
        model = read("docs/MODEL.md")
        assert "receipt" in model
        adversarial = read("src/repro/core/adversarial_2round.py")
        assert "reading note" in adversarial or "receipt" in adversarial
        ag = read("src/repro/core/async_afek_gafni.py")
        assert "(level, id)" in ag
