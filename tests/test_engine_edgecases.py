"""Edge-case and invariant tests for both engines."""

import random

import pytest
from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.asyncnet.algorithm import AsyncAlgorithm
from repro.asyncnet.engine import AsyncNetwork
from repro.asyncnet.schedulers import UnitDelayScheduler
from repro.net.ports import LazyPortMap, PortMapExhausted, RandomPortPolicy
from repro.sync.algorithm import SyncAlgorithm
from repro.sync.engine import SyncNetwork


class TestSyncEdgeCases:
    def test_single_node_clique(self):
        class Solo(SyncAlgorithm):
            def on_round(self, ctx, inbox):
                assert ctx.port_count == 0
                ctx.decide_leader()
                ctx.halt()

        result = SyncNetwork(1, Solo).run()
        assert result.unique_leader

    def test_two_messages_same_port_same_round(self):
        got = []

        class Doubler(SyncAlgorithm):
            def on_round(self, ctx, inbox):
                if ctx.round == 1 and ctx.my_id == 1:
                    ctx.send(0, ("a",))
                    ctx.send(0, ("b",))
                got.extend(p for _q, p in inbox)
                if ctx.round >= 2:
                    ctx.halt()

        result = SyncNetwork(2, Doubler).run()
        assert result.messages == 2
        assert got == [("a",), ("b",)]  # delivery preserves send order

    def test_inbox_order_is_deterministic_across_senders(self):
        def run_once():
            seen = []

            class ManyToOne(SyncAlgorithm):
                def on_round(self, ctx, inbox):
                    if ctx.round == 1 and ctx.my_id > 1:
                        # everyone sends to node 0 via their port to it —
                        # locate it through the canonical map
                        from repro.net.ports import CanonicalPortMap

                        pm = CanonicalPortMap(ctx.n)
                        for port in range(ctx.port_count):
                            if pm.peer(ctx.node, port) == 0:
                                ctx.send(port, ("from", ctx.my_id))
                    if inbox:
                        seen.extend(p[1] for _q, p in inbox)
                    if ctx.round >= 2:
                        ctx.halt()

            from repro.net.ports import CanonicalPortMap

            SyncNetwork(6, ManyToOne, port_map=CanonicalPortMap(6)).run()
            return seen

        assert run_once() == run_once()

    def test_sample_ports_bounds(self):
        class Sampler(SyncAlgorithm):
            def on_round(self, ctx, inbox):
                ports = ctx.sample_ports(ctx.port_count)
                assert sorted(ports) == list(range(ctx.port_count))
                with pytest.raises(ValueError):
                    ctx.sample_ports(ctx.port_count + 1)
                ctx.halt()

        SyncNetwork(5, Sampler).run()

    def test_wake_hook_runs_before_first_round(self):
        order = []

        class Hooked(SyncAlgorithm):
            def on_wake(self, ctx):
                order.append(("wake", ctx.node))

            def on_round(self, ctx, inbox):
                order.append(("round", ctx.node))
                ctx.halt()

        SyncNetwork(2, Hooked).run()
        assert order == [("wake", 0), ("wake", 1), ("round", 0), ("round", 1)]

    def test_max_rounds_exact_boundary(self):
        class NRounds(SyncAlgorithm):
            def on_round(self, ctx, inbox):
                if ctx.round == 5:
                    ctx.halt()

        result = SyncNetwork(2, NRounds, max_rounds=5).run()
        assert result.rounds_executed == 5


class TestAsyncEdgeCases:
    def test_single_node(self):
        class Solo(AsyncAlgorithm):
            def on_wake(self, ctx):
                ctx.decide_leader()

            def on_message(self, ctx, port, payload):
                pass

        result = AsyncNetwork(1, Solo).run()
        assert result.unique_leader

    def test_send_to_self_impossible(self):
        received = []

        class Probe(AsyncAlgorithm):
            def on_wake(self, ctx):
                if ctx.node == 0:  # only the adversary-woken node sprays
                    for port in range(ctx.port_count):
                        ctx.send(port, ("probe",))

            def on_message(self, ctx, port, payload):
                received.append(ctx.node)

        AsyncNetwork(4, Probe, scheduler=UnitDelayScheduler()).run()
        # Every port of node 0 leads to a *different* node — no loopback.
        assert 0 not in received
        assert sorted(received) == [1, 2, 3]

    def test_duplicate_wake_event_is_idempotent(self):
        wakes = []

        class W(AsyncAlgorithm):
            def on_wake(self, ctx):
                wakes.append(ctx.node)

            def on_message(self, ctx, port, payload):
                pass

        net = AsyncNetwork(3, W, wake_times={1: 0.0})
        net._push(0.5, 0, 1, -1, None)  # adversary tries to wake node 1 again
        net.run()
        assert wakes == [1]

    def test_zero_events_after_halt_everywhere(self):
        class HaltOnWake(AsyncAlgorithm):
            def on_wake(self, ctx):
                ctx.send(0, ("x",))
                ctx.halt()

            def on_message(self, ctx, port, payload):
                raise AssertionError("should never process: all halted")

        result = AsyncNetwork(2, HaltOnWake, wake_times={0: 0.0, 1: 0.0}).run()
        assert result.dropped_deliveries == 2

    def test_equal_timestamps_processed_in_schedule_order(self):
        seen = []

        class TwoAtOnce(AsyncAlgorithm):
            def on_wake(self, ctx):
                if ctx.node == 0:
                    ctx.send(0, ("first",))
                    ctx.send(1, ("second",))

            def on_message(self, ctx, port, payload):
                seen.append((ctx.node, payload[0]))

        from repro.net.ports import CanonicalPortMap

        AsyncNetwork(
            3, TwoAtOnce, port_map=CanonicalPortMap(3), scheduler=UnitDelayScheduler()
        ).run()
        assert seen == [(1, "first"), (2, "second")]


class PortMapMachine(RuleBasedStateMachine):
    """Stateful property test: any interleaving of resolves and forced
    links keeps the port map a partial perfect matching."""

    N = 12

    def __init__(self):
        super().__init__()
        self.pm = LazyPortMap(self.N, RandomPortPolicy(random.Random(777)))
        self.resolved = {}

    @rule(u=st.integers(0, N - 1), port=st.integers(0, N - 2))
    def resolve(self, u, port):
        try:
            endpoint = self.pm.resolve(u, port)
        except PortMapExhausted:
            return
        previous = self.resolved.get((u, port))
        assert previous is None or previous == endpoint
        self.resolved[(u, port)] = endpoint

    @rule(
        u=st.integers(0, N - 1),
        i=st.integers(0, N - 2),
        v=st.integers(0, N - 1),
        j=st.integers(0, N - 2),
    )
    def force(self, u, i, v, j):
        try:
            self.pm.force_link(u, i, v, j)
        except (PortMapExhausted, ValueError):
            return
        self.resolved[(u, i)] = (v, j)
        self.resolved[(v, j)] = (u, i)

    @invariant()
    def involution_holds(self):
        for (u, port), (v, j) in self.resolved.items():
            assert self.pm.resolve(v, j) == (u, port)

    @invariant()
    def one_link_per_pair(self):
        pairs = {}
        for (u, port), (v, _j) in self.resolved.items():
            key = (min(u, v), max(u, v))
            pairs.setdefault(key, set()).add((u, port))
        for key, endpoints in pairs.items():
            assert len(endpoints) <= 2


TestPortMapStateful = PortMapMachine.TestCase
TestPortMapStateful.settings = settings(max_examples=20, stateful_step_count=30, deadline=None)


class TestWakeSetValidation:
    def test_sync_out_of_range_awake_rejected(self):
        import pytest as _pytest

        from repro.sync.engine import SyncNetwork as _SN
        from repro.sync.algorithm import SyncAlgorithm as _SA

        class Quiet(_SA):
            def on_round(self, ctx, inbox):
                ctx.halt()

        with _pytest.raises(ValueError):
            _SN(4, Quiet, awake=[7])
        with _pytest.raises(ValueError):
            _SN(4, Quiet, awake=[-1])

    def test_async_out_of_range_wake_times_rejected(self):
        import pytest as _pytest

        from repro.asyncnet.engine import AsyncNetwork as _AN
        from repro.asyncnet.algorithm import AsyncAlgorithm as _AA

        class Quiet(_AA):
            def on_message(self, ctx, port, payload):
                pass

        with _pytest.raises(ValueError):
            _AN(4, Quiet, wake_times={9: 0.0})
