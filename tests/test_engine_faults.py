"""Engine-level fault semantics: crash-stop, lossy links, timers."""

import pytest

from repro.asyncnet.algorithm import AsyncAlgorithm
from repro.asyncnet.engine import AsyncNetwork
from repro.common import ProtocolError
from repro.faults import CrashFault, DetectorSpec, FaultPlan, LinkFaults
from repro.sync.algorithm import SyncAlgorithm
from repro.sync.engine import SyncNetwork
from repro.trace import MemoryRecorder


class ChattySync(SyncAlgorithm):
    """Broadcasts for a few rounds, then halts (no election)."""

    def __init__(self, rounds=3):
        self.rounds = rounds

    def on_round(self, ctx, inbox):
        if ctx.round > self.rounds:
            ctx.halt()
            return
        ctx.broadcast(("ping", ctx.round))


class ChattyAsync(AsyncAlgorithm):
    def on_wake(self, ctx):
        ctx.broadcast(("ping",))

    def on_message(self, ctx, port, payload):
        ctx.halt()


class TimerAsync(AsyncAlgorithm):
    def __init__(self):
        self.fired = []

    def on_wake(self, ctx):
        ctx.set_timer(0.5, "a")
        ctx.set_timer(1.5, "b")

    def on_message(self, ctx, port, payload):
        pass

    def on_timer(self, ctx, tag):
        self.fired.append((ctx.now, tag))
        if tag == "b":
            ctx.halt()


class TestSyncCrashes:
    def test_crashed_node_stops_stepping_and_receiving(self):
        rec = MemoryRecorder()
        plan = FaultPlan(crashes=(CrashFault(node=1, at=2),))
        net = SyncNetwork(4, ChattySync, seed=0, faults=plan, recorder=rec)
        result = net.run()
        # Node 1 broadcast in round 1 only (3 sends); survivors 3 rounds.
        sends_by_node = {u: 0 for u in range(4)}
        for e in rec.events:
            if e.kind == "send":
                sends_by_node[e.node] += 1
        assert sends_by_node[1] == 3
        assert all(sends_by_node[u] == 9 for u in (0, 2, 3))
        assert result.crashed == [1]
        assert result.crashed_count == 1
        # Round-2/3 messages aimed at node 1 are dropped.
        assert result.dropped_deliveries >= 6
        assert result.fault_metrics.crashes == [(2, 1)]

    def test_crash_event_recorded(self):
        rec = MemoryRecorder()
        plan = FaultPlan(crashes=(CrashFault(node=2, at=1),))
        SyncNetwork(4, ChattySync, seed=0, faults=plan, recorder=rec).run()
        crashes = rec.of_kind("crash")
        assert [(e.when, e.node) for e in crashes] == [(1.0, 2)]

    def test_crash_before_wake_prevents_participation(self):
        plan = FaultPlan(crashes=(CrashFault(node=0, at=1),))
        result = SyncNetwork(4, ChattySync, seed=0, faults=plan).run()
        assert result.awake_count == 3

    def test_last_survivor_never_crashes(self):
        from repro.faults import LeaderKillPolicy

        # Both nodes announce "ping" in round 1, so the policy schedules
        # both kills; the second is suppressed by the survivor guard.
        plan = FaultPlan(
            policies=(LeaderKillPolicy(kinds=("ping",), delay=1, max_kills=2),)
        )
        result = SyncNetwork(2, ChattySync, seed=0, faults=plan).run()
        assert len(result.crashed) == 1
        assert result.fault_metrics.suppressed_crashes == 1

    def test_drop_all_messages(self):
        plan = FaultPlan(links=(LinkFaults(drop_prob=1.0),))
        rec = MemoryRecorder()
        result = SyncNetwork(4, ChattySync, seed=0, faults=plan, recorder=rec).run()
        # Sends still happen (and are billed), deliveries never arrive.
        assert result.messages == 4 * 3 * 3
        assert result.fault_metrics.dropped_messages == result.messages
        assert not rec.of_kind("deliver")  # sync engine records no delivers anyway

    def test_duplication_doubles_inboxes(self):
        class CountInbox(SyncAlgorithm):
            def __init__(self):
                self.got = 0

            def on_round(self, ctx, inbox):
                self.got += len(inbox)
                if ctx.round >= 2:
                    ctx.halt()
                elif ctx.round == 1:
                    ctx.broadcast(("ping",))

        plan = FaultPlan(links=(LinkFaults(duplicate_prob=1.0),))
        net = SyncNetwork(3, CountInbox, seed=0, faults=plan)
        net.run()
        assert all(alg.got == 4 for alg in net.algorithms)  # 2 peers x 2 copies

    def test_detector_available_without_plan(self):
        net = SyncNetwork(3, lambda: ChattySync(rounds=1), seed=0)
        result = net.run()
        assert result.crashed == [] and result.fault_metrics is None
        det = net.contexts[0].detector
        assert det.suspects(99.0) == frozenset()


class TestAsyncCrashes:
    def test_crash_stops_processing(self):
        rec = MemoryRecorder()
        plan = FaultPlan(crashes=(CrashFault(node=1, at=0.5),))
        net = AsyncNetwork(
            4, ChattyAsync, seed=0, faults=plan,
            wake_times={u: 0.0 for u in range(4)}, recorder=rec,
        )
        result = net.run()
        assert result.crashed == [1]
        assert result.dropped_deliveries >= 3  # node 1's deliveries at t=1
        assert [(e.when, e.node) for e in rec.of_kind("crash")] == [(0.5, 1)]

    def test_crash_does_not_extend_time_span(self):
        # The node halts long before its scheduled crash at t=50; the
        # crash still lands (ground truth: the machine died), but the
        # measured time span stays protocol-bound.
        plan = FaultPlan(crashes=(CrashFault(node=1, at=50.0),))
        result = AsyncNetwork(
            4, ChattyAsync, seed=0, faults=plan,
            wake_times={u: 0.0 for u in range(4)},
        ).run()
        assert result.crashed == [1]
        assert result.time <= 2.0

    def test_timers_fire_in_order_and_die_with_halt(self):
        net = AsyncNetwork(1, TimerAsync, seed=0, wake_times={0: 0.0})
        result = net.run()
        assert net.algorithms[0].fired == [(0.5, "a"), (1.5, "b")]
        assert result.metrics.timers_fired == 2
        assert result.time == 1.5

    def test_pending_timer_of_halted_node_dropped(self):
        class HaltEarly(TimerAsync):
            def on_timer(self, ctx, tag):
                self.fired.append((ctx.now, tag))
                ctx.halt()  # halts at the first timer; second must not fire

        net = AsyncNetwork(1, HaltEarly, seed=0, wake_times={0: 0.0})
        result = net.run()
        assert net.algorithms[0].fired == [(0.5, "a")]
        assert result.time == 0.5

    def test_timer_validation(self):
        class BadTimer(AsyncAlgorithm):
            def on_wake(self, ctx):
                ctx.set_timer(0.0, "bad")

            def on_message(self, ctx, port, payload):
                pass

        with pytest.raises(ProtocolError):
            AsyncNetwork(1, BadTimer, seed=0, wake_times={0: 0.0}).run()

    def test_drop_all_messages_async(self):
        plan = FaultPlan(links=(LinkFaults(drop_prob=1.0),))
        result = AsyncNetwork(
            3, ChattyAsync, seed=0, faults=plan,
            wake_times={u: 0.0 for u in range(3)},
        ).run()
        assert result.messages == 6
        assert result.fault_metrics.dropped_messages == 6
        assert result.dropped_deliveries == 0  # dropped in flight, not at door

    def test_duplicates_delivered_async(self):
        got = []

        class Count(AsyncAlgorithm):
            def on_wake(self, ctx):
                if ctx.node == 0:
                    ctx.send(0, ("ping",))

            def on_message(self, ctx, port, payload):
                got.append(ctx.node)

        plan = FaultPlan(links=(LinkFaults(duplicate_prob=1.0),))
        AsyncNetwork(
            2, Count, seed=0, faults=plan, wake_times={0: 0.0, 1: 0.0}
        ).run()
        assert len(got) == 2

    def test_detector_available_without_plan(self):
        net = AsyncNetwork(2, ChattyAsync, seed=0, wake_times={0: 0.0, 1: 0.0})
        net.run()
        assert net.contexts[0].detector.suspects(10.0) == frozenset()


class TestDetectorSpecPlumbing:
    def test_engine_hands_out_spec_detector(self):
        plan = FaultPlan(
            detector=DetectorSpec(kind="eventually_perfect", lag=2.0,
                                  noise_horizon=5.0, false_prob=0.5)
        )
        net = SyncNetwork(3, lambda: ChattySync(rounds=1), seed=0, faults=plan)
        det = net.detector_for(0)
        assert det.lag == 2.0
        assert det is net.detector_for(0)  # cached
