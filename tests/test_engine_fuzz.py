"""Engine fuzzing: randomized protocols must never break engine invariants.

A seeded "chaos protocol" takes arbitrary actions (sends over random
ports, broadcasts, decisions, halts) driven by its node RNG.  Whatever it
does, the engines must preserve:

* conservation — delivered + in-flight-dropped == sent;
* addressing — a message sent over (u, i) arrives exactly at the
  resolved endpoint, on the reverse port;
* FIFO per link (async);
* monotone time / rounds;
* decision irrevocability is enforced (the protocol is written to only
  decide once — the enforcement tests live in the engine suites).
"""

import random

import pytest

from hypothesis import given, settings, strategies as st

from repro.asyncnet.algorithm import AsyncAlgorithm

pytestmark = pytest.mark.slow
from repro.asyncnet.engine import AsyncNetwork
from repro.asyncnet.schedulers import UniformDelayScheduler
from repro.sync.algorithm import SyncAlgorithm
from repro.sync.engine import SyncNetwork
from repro.trace import MemoryRecorder


class SyncChaos(SyncAlgorithm):
    """Random sends/decisions for a bounded number of rounds."""

    LIFETIME = 6

    def on_round(self, ctx, inbox):
        rng = ctx.rng
        if ctx.round - ctx.wake_round >= self.LIFETIME:
            if ctx.decision is None:
                ctx.decide_follower()
            ctx.halt()
            return
        for _ in range(rng.randrange(0, 3)):
            ctx.send(rng.randrange(ctx.port_count), ("c", ctx.my_id, ctx.round))
        if rng.random() < 0.1 and ctx.decision is None:
            ctx.decide_follower()


class AsyncChaos(AsyncAlgorithm):
    """Random fan-out on wake; random forwarding with decaying TTL."""

    def on_wake(self, ctx):
        rng = ctx.rng
        for _ in range(rng.randrange(1, 4)):
            ctx.send(rng.randrange(ctx.port_count), ("m", 3))

    def on_message(self, ctx, port, payload):
        _kind, ttl = payload
        if ttl > 0 and ctx.rng.random() < 0.7:
            ctx.send(ctx.rng.randrange(ctx.port_count), ("m", ttl - 1))


@given(n=st.integers(2, 40), seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_sync_chaos_conservation(n, seed):
    rec = MemoryRecorder()
    net = SyncNetwork(n, SyncChaos, seed=seed, recorder=rec, max_rounds=200)
    result = net.run()
    sends = rec.of_kind("send")
    assert len(sends) == result.messages
    # Addressing: every send's recorded endpoint respects the port map.
    for event in sends:
        port, v, peer_port, _payload = event.detail
        assert net.port_map.resolve(event.node, port) == (v, peer_port)
        assert net.port_map.resolve(v, peer_port) == (event.node, port)
    # Time monotonicity of the trace.
    whens = [e.when for e in rec.events]
    assert whens == sorted(whens)
    # All awake nodes eventually halted (engine quiescence).
    assert result.rounds_executed <= 200


@given(n=st.integers(2, 32), seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_async_chaos_conservation_and_fifo(n, seed):
    rec = MemoryRecorder()
    scheduler = UniformDelayScheduler(random.Random(seed))
    net = AsyncNetwork(
        n, AsyncChaos, seed=seed, scheduler=scheduler, recorder=rec, max_events=100_000
    )
    result = net.run()
    sends = rec.of_kind("send")
    delivers = rec.of_kind("deliver")
    # conservation: nothing halted here, so every send is delivered.
    assert len(sends) == result.messages
    assert len(delivers) == len(sends) - result.dropped_deliveries
    # FIFO per link: per (dst, port), deliveries carry the payloads in
    # send order.
    sent_per_link = {}
    for event in sends:
        port, v, peer_port, payload = event.detail
        sent_per_link.setdefault((v, peer_port), []).append(payload)
    got_per_link = {}
    for event in delivers:
        port, payload = event.detail
        got_per_link.setdefault((event.node, port), []).append(payload)
    for link, got in got_per_link.items():
        assert got == sent_per_link[link][: len(got)], link
    # Event times monotone.
    whens = [e.when for e in rec.events]
    assert whens == sorted(whens)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_chaos_is_reproducible(seed):
    def once():
        rec = MemoryRecorder()
        SyncNetwork(24, SyncChaos, seed=seed, recorder=rec, max_rounds=200).run()
        return [(e.kind, e.when, e.node, e.detail) for e in rec.events]

    assert once() == once()
