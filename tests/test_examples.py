"""Smoke tests: the example scripts must run end to end.

The heavyweight scenario examples are exercised at reduced size where
they accept one, and skipped here when they would dominate the suite's
runtime (the benchmarks run them implicitly at full size anyway).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *argv, timeout=240):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *argv],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "elected ID" in out
        assert "unique leader" in out

    def test_tradeoff_frontier_small(self):
        out = run_example("tradeoff_frontier.py", "128")
        assert "Thm 3.10 (measured)" in out
        assert "Afek-Gafni (measured)" in out
        assert "k = 2" in out

    @pytest.mark.slow
    def test_small_id_universe(self):
        out = run_example("small_id_universe.py")
        assert "o(n log n)!" in out
        assert "ValueError" in out  # the guard-rail demo

    @pytest.mark.slow
    def test_sensor_wakeup(self):
        out = run_example("sensor_wakeup.py")
        assert "reliability" in out
        assert "Theorem 4.2 floor" in out

    @pytest.mark.slow
    def test_datacenter_failover(self):
        out = run_example("datacenter_failover.py", timeout=600)
        assert "new coordinator" in out

    @pytest.mark.slow
    def test_adversary_stress(self):
        out = run_example("adversary_stress.py", timeout=600)
        assert "same winner everywhere" in out

    def test_trace_walkthrough(self):
        out = run_example("trace_walkthrough.py")
        assert "compete" in out
        assert "you-win!" in out
        assert "leader id 99" in out

    def test_partition_drill(self):
        out = run_example("partition_drill.py", "16")
        assert "split-brain window measured" in out
        assert "single agreed coordinator" in out
        assert "SPLIT/NONE" in out

    @pytest.mark.slow
    def test_complexity_scaling_runs(self):
        # full size but fast enough (~1 min); asserts the plot renders.
        out = run_example("complexity_scaling.py", timeout=400)
        assert "fitted power laws" in out
        assert "monte carlo [16]" in out
