"""Result export/import round-trips (repro.analysis.export)."""

import pytest

from repro.analysis.export import (
    records_from_csv,
    records_from_jsonl,
    records_to_csv,
    records_to_jsonl,
)
from repro.analysis.runner import RunRecord, sweep_sync
from repro.core import ImprovedTradeoffElection


@pytest.fixture(scope="module")
def sample_records():
    return sweep_sync(
        [16, 32],
        lambda n: (lambda: ImprovedTradeoffElection(ell=3)),
        seeds=[0, 1],
        params={"ell": 3, "label": "demo"},
    )


class TestJsonl:
    def test_roundtrip(self, sample_records):
        text = records_to_jsonl(sample_records)
        back = records_from_jsonl(text)
        assert back == sample_records

    def test_one_line_per_record(self, sample_records):
        text = records_to_jsonl(sample_records)
        assert len(text.strip().splitlines()) == len(sample_records)

    def test_empty(self):
        assert records_to_jsonl([]) == ""
        assert records_from_jsonl("") == []

    def test_blank_lines_tolerated(self, sample_records):
        text = records_to_jsonl(sample_records) + "\n\n"
        assert len(records_from_jsonl(text)) == len(sample_records)


class TestCsv:
    def test_roundtrip_core_fields(self, sample_records):
        text = records_to_csv(sample_records)
        back = records_from_csv(text)
        for a, b in zip(sample_records, back):
            assert (a.n, a.seed, a.messages, a.time) == (b.n, b.seed, b.messages, b.time)
            assert a.unique_leader == b.unique_leader
            assert a.elected_id == b.elected_id

    def test_param_columns_flattened(self, sample_records):
        text = records_to_csv(sample_records)
        header = text.splitlines()[0]
        assert "param_ell" in header
        assert "param_label" in header
        back = records_from_csv(text)
        assert back[0].params["ell"] == 3
        assert back[0].params["label"] == "demo"

    def test_extra_columns(self, sample_records):
        text = records_to_csv(sample_records)
        back = records_from_csv(text)
        assert back[0].extra["rounds_executed"] == sample_records[0].extra["rounds_executed"]

    def test_heterogeneous_params(self):
        a = RunRecord(4, 0, 1, 1.0, True, 4, 1, 4, 4, params={"x": 1}, extra={})
        b = RunRecord(4, 1, 1, 1.0, True, 4, 1, 4, 4, params={"y": "z"}, extra={})
        text = records_to_csv([a, b])
        back = records_from_csv(text)
        assert back[0].params == {"x": 1}
        assert back[1].params == {"y": "z"}
