"""The batch axis: one engine run executing many independent seeds.

The contract under test (see DESIGN.md "Batched fast engine"): in exact
mode, lane ``b`` of ``FastSyncNetwork(n, seeds=[...])`` is **bit-exact**
to a single run with seed ``seeds[b]`` — same winners, same message
totals, per-kind and per-round counts, round counters, survivor
accounting — with and without crash masks, for every ported algorithm.
Scale-mode lanes are deterministic per ``(n, seed, mode)`` and
independent of the batch composition.
"""

import pytest
from hypothesis import given, settings, strategies as st

pytest.importorskip("numpy")

from repro.fastsync import (  # noqa: E402
    FastSyncNetwork,
    VectorAdversarial2RoundElection,
    VectorAfekGafniElection,
    VectorImprovedTradeoffElection,
    VectorKutten16Election,
    VectorLasVegasElection,
    VectorSmallIdElection,
)

from tests.helpers import make_ids  # noqa: E402

LANE_FIELDS = (
    "n",
    "mode",
    "ids",
    "seed",
    "rounds_executed",
    "messages",
    "last_send_round",
    "leaders",
    "leader_ids",
    "decided_count",
    "awake_count",
    "halted_count",
    "messages_by_kind",
    "sends_by_round",
    "crashed",
)

MAKERS = {
    "improved_tradeoff": lambda: VectorImprovedTradeoffElection(ell=5),
    "afek_gafni": lambda: VectorAfekGafniElection(ell=4),
    "las_vegas": lambda: VectorLasVegasElection(referee_coeff=0.5),
    "small_id": lambda: VectorSmallIdElection(d=4, g=8),
    "kutten16": lambda: VectorKutten16Election(),
    "adversarial_2round": lambda: VectorAdversarial2RoundElection(),
}

#: Crash schedules that keep each algorithm live (afek_gafni stalls on
#: any crash before its full-fan-out referee round, so it gets a late
#: one; adversarial_2round has no crash support).
CRASHES = {
    "improved_tradeoff": [(15, 1), (3, 2)],
    "afek_gafni": [(3, 6)],
    "las_vegas": [(15, 1), (3, 2)],
    "small_id": [(0, 1), (5, 2)],
    "kutten16": [(15, 1), (3, 2)],
}


def assert_lanes_match_singles(n, seeds, maker, *, ids=None, crashes=None,
                               lane_crashes=None, roots=None):
    """Batched lanes must replay the sequential single runs bit for bit."""
    singles = []
    for b, seed in enumerate(seeds):
        lane_sched = crashes if lane_crashes is None else lane_crashes[b]
        singles.append(
            FastSyncNetwork(
                n, ids=ids, seed=seed, mode="exact", crashes=lane_sched, roots=roots
            ).run(maker())
        )
    lanes = FastSyncNetwork(
        n, ids=ids, seeds=seeds, mode="exact", crashes=crashes,
        lane_crashes=lane_crashes, roots=roots,
    ).run(maker())
    assert len(lanes) == len(seeds)
    for single, lane in zip(singles, lanes):
        for field in LANE_FIELDS:
            assert getattr(single, field) == getattr(lane, field), field
    return lanes


class TestBatchedEqualsSequential:
    @pytest.mark.parametrize("name", sorted(MAKERS))
    def test_exact_lanes_replay_single_runs(self, name):
        ids = make_ids(16, seed=2) if name != "small_id" else None
        roots = [0, 5] if name == "adversarial_2round" else None
        assert_lanes_match_singles(
            16, [0, 1, 2, 3], MAKERS[name], ids=ids, roots=roots
        )

    @pytest.mark.parametrize("name", sorted(CRASHES))
    def test_exact_lanes_replay_single_runs_under_shared_crashes(self, name):
        assert_lanes_match_singles(
            16, [0, 1, 2, 3], MAKERS[name], crashes=CRASHES[name]
        )

    def test_per_lane_crash_schedules(self):
        lane_crashes = [[(15, 1)], None, [(3, 2), (7, 4)]]
        lanes = assert_lanes_match_singles(
            16, [5, 6, 7], MAKERS["improved_tradeoff"], lane_crashes=lane_crashes
        )
        assert lanes[0].crashed == [15]
        assert lanes[1].crashed == []
        assert lanes[2].crashed == [3, 7]

    def test_lanes_may_finish_in_different_rounds(self):
        # Las Vegas lanes terminate phase by phase; a decided lane's
        # round counter freezes while stragglers keep restarting.  A low
        # flat candidacy probability makes phase-1 failures likely, so
        # lanes genuinely diverge (seeds 0..7 at n=24 split 4 vs 7).
        lanes = FastSyncNetwork(24, seeds=list(range(8)), mode="exact").run(
            VectorLasVegasElection(candidate_prob_fn=lambda n, p: 0.05)
        )
        rounds = {lane.rounds_executed for lane in lanes}
        assert len(rounds) > 1, "want lanes finishing in different phases"
        for lane in lanes:
            assert lane.unique_leader

    def test_kutten16_zero_candidate_lane_ends_after_round_two(self):
        # Forcing tiny candidacy odds makes empty-candidate lanes likely;
        # those end at round 2 with zero messages like the object twin.
        lanes = FastSyncNetwork(16, seeds=list(range(20)), mode="exact").run(
            VectorKutten16Election(candidate_coeff=0.05)
        )
        empty = [lane for lane in lanes if lane.messages == 0]
        assert empty, "want at least one candidate-free lane"
        for lane in empty:
            assert lane.rounds_executed == 2
            assert lane.leaders == []
            assert lane.decided_count == 16


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_batch_property_exact_bit_equality(data):
    """Hypothesis: any (algorithm, n, seeds, crash mask) batched run is
    bit-exact to the sequential single runs in exact mode."""
    name = data.draw(st.sampled_from(sorted(MAKERS)), label="algorithm")
    n = data.draw(st.integers(min_value=2, max_value=48), label="n")
    k = data.draw(st.integers(min_value=1, max_value=5), label="lanes")
    seeds = data.draw(
        st.lists(st.integers(0, 2**31 - 1), min_size=k, max_size=k), label="seeds"
    )
    ids = make_ids(n, seed=data.draw(st.integers(0, 7), label="id_seed"))
    maker = MAKERS[name]
    if name == "small_id":
        ids = None  # small_id needs the [1, n*g] universe; default 1..n works
        maker = lambda: VectorSmallIdElection(d=min(4, n), g=8)  # noqa: E731
    roots = None
    if name == "adversarial_2round":
        root_count = data.draw(st.integers(1, n), label="roots")
        roots = sorted(
            data.draw(
                st.sets(st.integers(0, n - 1), min_size=root_count, max_size=root_count)
            )
        )
    crashes = None
    if name in ("improved_tradeoff", "las_vegas", "kutten16", "small_id"):
        if data.draw(st.booleans(), label="crashy") and n >= 3:
            victims = data.draw(
                st.sets(st.integers(0, n - 1), min_size=1, max_size=min(3, n - 2)),
                label="victims",
            )
            crashes = [
                (u, data.draw(st.integers(1, 6), label=f"at{u}")) for u in sorted(victims)
            ]
    assert_lanes_match_singles(n, seeds, maker, ids=ids, crashes=crashes,
                               roots=roots)


class TestScaleModeLanes:
    def test_lane_results_do_not_depend_on_batch_composition(self):
        solo = FastSyncNetwork(4096, seeds=[7], mode="scale").run(
            VectorImprovedTradeoffElection(ell=5)
        )[0]
        packed = FastSyncNetwork(4096, seeds=[5, 7, 9], mode="scale").run(
            VectorImprovedTradeoffElection(ell=5)
        )[1]
        for field in LANE_FIELDS:
            assert getattr(solo, field) == getattr(packed, field), field

    def test_scale_lanes_are_deterministic(self):
        runs = [
            FastSyncNetwork(4096, seeds=[0, 1], mode="scale").run(
                VectorLasVegasElection()
            )
            for _ in range(2)
        ]
        for a, b in zip(*runs):
            assert a.messages == b.messages
            assert a.leaders == b.leaders
            assert a.sends_by_round == b.sends_by_round

    def test_scale_lanes_elect_the_max_id(self):
        lanes = FastSyncNetwork(4096, seeds=list(range(6)), mode="scale").run(
            VectorImprovedTradeoffElection(ell=5)
        )
        assert all(lane.unique_leader and lane.elected_id == 4096 for lane in lanes)


class TestEngineValidation:
    def test_batch_must_be_positive(self):
        with pytest.raises(ValueError, match="batch >= 1"):
            FastSyncNetwork(8, batch=0)

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError, match="lane seed"):
            FastSyncNetwork(8, seeds=[])

    def test_batch_and_seeds_must_agree(self):
        with pytest.raises(ValueError, match="disagrees"):
            FastSyncNetwork(8, seeds=[0, 1], batch=3)

    def test_batch_expands_to_consecutive_seeds(self):
        net = FastSyncNetwork(8, seed=5, batch=3)
        assert net.lane_seeds == (5, 6, 7)

    def test_lane_crashes_need_batch_mode(self):
        with pytest.raises(ValueError, match="batch mode"):
            FastSyncNetwork(8, lane_crashes=[[(0, 1)]])

    def test_shared_and_per_lane_crashes_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            FastSyncNetwork(
                8, seeds=[0, 1], crashes=[(0, 1)], lane_crashes=[None, None]
            )

    def test_lane_crashes_length_must_match(self):
        with pytest.raises(ValueError, match="lane crash schedules"):
            FastSyncNetwork(8, seeds=[0, 1], lane_crashes=[[(0, 1)]])

    def test_unbatchable_algorithm_refused(self):
        class NoBatch(VectorImprovedTradeoffElection):
            supports_batch = False

        with pytest.raises(ValueError, match="batched"):
            FastSyncNetwork(8, seeds=[0, 1]).run(NoBatch())

    def test_roots_require_wakeup_aware_port(self):
        with pytest.raises(ValueError, match="wake-up"):
            FastSyncNetwork(8, seeds=[0, 1], roots=[0]).run(
                VectorImprovedTradeoffElection()
            )

    def test_undecided_lane_is_an_error(self):
        class Lazy(VectorImprovedTradeoffElection):
            def run_batch(self, net):
                super().run_batch(net)
                net._lane_leaders[1] = None  # simulate a port bug

        with pytest.raises(RuntimeError, match="lane 1"):
            FastSyncNetwork(8, seeds=[0, 1]).run(Lazy())


class TestRunnerIntegration:
    def test_run_fast_batch_matches_run_fast_trial(self):
        from repro.analysis import run_fast_batch, run_fast_trial

        seeds = [3, 4, 5]
        singles = [
            run_fast_trial(32, "improved_tradeoff", seed=s, params={"ell": 3})
            for s in seeds
        ]
        batched = run_fast_batch(
            32, "improved_tradeoff", seeds=seeds, params={"ell": 3}
        )
        for single, lane in zip(singles, batched):
            assert lane.extra["batch"] == 3
            assert (single.seed, single.messages, single.elected_id, single.time) == (
                lane.seed, lane.messages, lane.elected_id, lane.time
            )

    def test_sweep_fast_batched_equals_unbatched_in_exact_mode(self):
        from repro.analysis import sweep_fast

        plain = sweep_fast([16, 32], "afek_gafni", seeds=[0, 1, 2], params={"ell": 4})
        batched = sweep_fast(
            [16, 32], "afek_gafni", seeds=[0, 1, 2], params={"ell": 4}, batch=2
        )
        assert [(r.n, r.seed, r.messages, r.elected_id) for r in plain] == [
            (r.n, r.seed, r.messages, r.elected_id) for r in batched
        ]

    def test_sweep_fast_batch_rejects_per_seed_ids(self):
        from repro.analysis import sweep_fast

        with pytest.raises(ValueError, match="ids_for_n"):
            sweep_fast([16], "afek_gafni", seeds=[0, 1], batch=2,
                       ids_for_n=lambda n, rng: list(range(1, n + 1)))

    def test_run_fast_batch_with_roots(self):
        from repro.analysis import run_fast_batch

        records = run_fast_batch(
            64, "adversarial_2round", seeds=[0, 1], roots=[0, 1, 2]
        )
        assert len(records) == 2
        for record in records:
            assert record.extra["engine"] == "fast"
