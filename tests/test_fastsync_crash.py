"""Crash masks on the vectorized engine, cross-checked at small n.

In ``exact`` mode a fastsync run under a crash schedule must replay the
object engine bit for bit: same port matrix, same crash rounds, same
winners, message totals, per-kind counts, round counters and survivor
accounting — all asserted by :func:`tests.helpers.assert_twin_run`.
The object twin runs the plain (crash-oblivious) ``improved_tradeoff``
under a ``FaultPlan`` crash schedule — the protocol tolerates missing
responses by demoting survivors, so crashes change outcomes without
stalling either engine.
"""

import pytest

pytest.importorskip("numpy")

from repro.fastsync import (  # noqa: E402
    FastSyncNetwork,
    VectorImprovedTradeoffElection,
)
from repro.sweep import RunSpec  # noqa: E402

from tests.helpers import assert_twin_run  # noqa: E402

CASES = [
    # (n, seed, ell, crashes)
    (8, 0, 3, [(7, 1)]),               # the max-ID node dies at wake-up
    (8, 1, 3, [(3, 2), (5, 2)]),       # two referees die together
    (16, 2, 5, [(15, 3), (0, 1)]),
    (16, 3, 5, [(4, 2)]),
    (5, 4, 3, [(4, 4)]),               # crash lands on the decision round
    (2, 5, 3, [(1, 1)]),
    (33, 6, 7, [(32, 5), (10, 2), (7, 9)]),  # one crash past quiescence
    (12, 7, 3, [(11, 1), (10, 1), (9, 1)]),  # top three all dead at wake
]


class TestCrossEngineEquivalence:
    @pytest.mark.parametrize("n,seed,ell,crashes", CASES)
    def test_exact_mode_replays_the_object_engine(self, n, seed, ell, crashes):
        assert_twin_run(
            RunSpec(
                algorithm="improved_tradeoff",
                n=n,
                seeds=(seed,),
                params={"ell": ell},
                crashes=tuple(crashes),
            )
        )

    def test_crash_free_schedule_is_a_noop(self):
        baseline = FastSyncNetwork(16, seed=9, mode="exact").run(
            VectorImprovedTradeoffElection(ell=5)
        )
        masked = FastSyncNetwork(16, seed=9, mode="exact", crashes=[]).run(
            VectorImprovedTradeoffElection(ell=5)
        )
        assert masked.leader_ids == baseline.leader_ids
        assert masked.messages == baseline.messages
        assert masked.sends_by_round == baseline.sends_by_round


class TestEngineMask:
    def test_alive_mask_follows_the_schedule(self):
        net = FastSyncNetwork(4, seed=0, crashes=[(2, 2)])
        assert net.alive.all()
        net.tick()
        assert net.alive.all()
        net.tick()
        assert not net.alive[2] and net.alive.sum() == 3
        assert net.crashed_at == {2: 2.0}

    def test_last_survivor_guard(self):
        # The guard mirrors FaultRuntime.approve_crash: a crash that
        # would leave nobody alive is suppressed.
        net = FastSyncNetwork(2, seed=0, crashes=[(0, 1)])
        net.tick()
        assert net.alive[1]
        with pytest.raises(ValueError):
            FastSyncNetwork(2, seed=0, crashes=[(0, 1), (1, 2)])

    def test_validation(self):
        with pytest.raises(ValueError, match="out of range"):
            FastSyncNetwork(4, crashes=[(9, 1)])
        with pytest.raises(ValueError, match="twice"):
            FastSyncNetwork(4, crashes=[(1, 1), (1, 2)])
        with pytest.raises(ValueError, match="at >= 0"):
            FastSyncNetwork(4, crashes=[(1, -1)])

    def test_unsupported_algorithm_refused(self):
        from repro.fastsync import VectorAdversarial2RoundElection

        net = FastSyncNetwork(8, seed=0, crashes=[(1, 2)])
        with pytest.raises(ValueError, match="crash-mask support"):
            net.run(VectorAdversarial2RoundElection())

    def test_scale_mode_crash_runs_are_deterministic(self):
        runs = [
            FastSyncNetwork(64, seed=3, mode="scale", crashes=[(63, 1), (5, 3)]).run(
                VectorImprovedTradeoffElection(ell=5)
            )
            for _ in range(2)
        ]
        assert runs[0].leader_ids == runs[1].leader_ids
        assert runs[0].messages == runs[1].messages
        assert runs[0].crashed == runs[1].crashed
