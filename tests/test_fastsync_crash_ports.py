"""Crash masks on the remaining vectorized ports, cross-checked at small n.

``tests/test_fastsync_crash.py`` pins the ``improved_tradeoff`` port;
this file covers the ports that gained crash-mask support with the batch
engine: ``afek_gafni``, ``las_vegas`` and ``small_id`` (``kutten16``
lives with its twin suite in ``tests/test_fastsync_new_ports.py``).
Each exact-mode run under a crash schedule must replay the object engine
bit for bit — including the *stall* modes: the Afek–Gafni
reconstruction's final iteration contacts every peer, so an early crash
starves every candidate on both engines, and a saturated Las Vegas
referee count (``m = n - 1``) does the same.
"""

import random

import pytest

pytest.importorskip("numpy")

from repro.common import SimulationLimitExceeded  # noqa: E402
from repro.core import (  # noqa: E402
    AfekGafniElection,
    LasVegasElection,
    SmallIdElection,
)
from repro.fastsync import (  # noqa: E402
    FastSyncNetwork,
    VectorAfekGafniElection,
    VectorLasVegasElection,
    VectorSmallIdElection,
)
from repro.faults import CrashFault, FaultPlan  # noqa: E402
from repro.sync.engine import SyncNetwork  # noqa: E402


def run_pair(n, seed, vector, object_factory, crashes, ids=None, max_rounds=None):
    fast_net = FastSyncNetwork(
        n, ids=ids, seed=seed, mode="exact", crashes=crashes, max_rounds=max_rounds
    )
    port_map = fast_net.port_map()
    fast = fast_net.run(vector)
    plan = FaultPlan(crashes=tuple(CrashFault(node=u, at=at) for u, at in crashes))
    obj = SyncNetwork(
        n,
        object_factory,
        ids=ids,
        seed=seed,
        port_map=port_map,
        faults=plan,
        max_rounds=max_rounds,
    ).run()
    return fast, obj


def assert_crash_twins_match(fast, obj):
    assert fast.leader_ids == obj.leader_ids
    assert fast.messages == obj.messages
    assert fast.messages_by_kind == dict(obj.metrics.messages_by_kind)
    assert fast.sends_by_round == dict(obj.metrics.sends_by_round)
    assert fast.rounds_executed == obj.rounds_executed
    assert fast.last_send_round == obj.last_send_round
    assert fast.decided_count == obj.decided_count
    assert fast.awake_count == obj.awake_count
    assert sorted(fast.crashed) == sorted(obj.crashed)
    assert fast.unique_surviving_leader == obj.unique_surviving_leader
    assert fast.surviving_leader_id == obj.surviving_leader_id


class TestLasVegasCrashes:
    # referee_coeff below saturation: a crash demotes candidates that
    # sampled the corpse instead of freezing the whole protocol.
    @pytest.mark.parametrize(
        "n,seed,coeff,crashes",
        [
            (16, 0, 0.5, [(15, 1)]),       # max-ID node dies at wake-up
            (16, 1, 0.5, [(3, 2)]),
            (40, 2, 1.0, [(0, 1), (5, 4)]),
            (40, 3, 1.0, [(39, 3), (2, 6)]),
            (24, 5, 0.6, [(23, 2), (22, 5), (21, 7)]),
        ],
    )
    def test_exact_mode_replays_the_object_engine(self, n, seed, coeff, crashes):
        fast, obj = run_pair(
            n,
            seed,
            VectorLasVegasElection(referee_coeff=coeff),
            lambda: LasVegasElection(referee_coeff=coeff),
            crashes,
        )
        assert_crash_twins_match(fast, obj)

    def test_saturated_referee_count_stalls_both_engines(self):
        # At n=8 the default referee count caps at n-1, so every
        # candidate contacts the corpse and nobody ever wins a full set.
        with pytest.raises(SimulationLimitExceeded):
            FastSyncNetwork(8, seed=0, mode="exact", crashes=[(7, 1)],
                            max_rounds=60).run(VectorLasVegasElection())
        plan = FaultPlan(crashes=(CrashFault(node=7, at=1),))
        with pytest.raises(SimulationLimitExceeded):
            SyncNetwork(8, lambda: LasVegasElection(), seed=0, faults=plan,
                        max_rounds=60).run()


class TestAfekGafniCrashes:
    # ell=4 -> two iterations, announce at round 5, follower receipt at 6.
    @pytest.mark.parametrize(
        "n,seed,crashes",
        [
            (8, 0, [(3, 6)]),     # a follower dies before the announcement lands
            (8, 1, [(7, 6)]),     # the freshly announced leader dies
            (16, 2, [(5, 10)]),   # post-quiescence crash
            (8, 3, [(6, 5), (2, 9)]),
        ],
    )
    def test_late_crashes_replay_the_object_engine(self, n, seed, crashes):
        fast, obj = run_pair(
            n,
            seed,
            VectorAfekGafniElection(ell=4),
            lambda: AfekGafniElection(ell=4),
            crashes,
        )
        assert_crash_twins_match(fast, obj)

    @pytest.mark.parametrize("crashes", [[(7, 1)], [(2, 2)], [(0, 4)]])
    def test_early_crashes_stall_both_engines(self, crashes):
        # The reconstruction's final iteration contacts every peer, so a
        # pre-announcement corpse denies every candidate a full response
        # set: nobody announces and the referees idle to the round limit.
        with pytest.raises(SimulationLimitExceeded):
            FastSyncNetwork(8, seed=0, mode="exact", crashes=crashes,
                            max_rounds=64).run(VectorAfekGafniElection(ell=4))
        plan = FaultPlan(
            crashes=tuple(CrashFault(node=u, at=at) for u, at in crashes)
        )
        with pytest.raises(SimulationLimitExceeded):
            SyncNetwork(8, lambda: AfekGafniElection(ell=4), seed=0, faults=plan,
                        max_rounds=64).run()


class TestSmallIdCrashes:
    @pytest.mark.parametrize(
        "n,seed,d,g,crashes",
        [
            (8, 0, 2, 1, [(0, 1)]),                      # min-ID holder dies early
            (12, 1, 3, 2, [(5, 2), (0, 1)]),
            (16, 2, 4, 1, [(0, 1), (1, 1), (2, 1), (3, 1)]),  # first window wiped out
            (9, 3, 3, 1, [(0, 2)]),
        ],
    )
    def test_exact_mode_replays_the_object_engine(self, n, seed, d, g, crashes):
        rng = random.Random(seed)
        ids = rng.sample(range(1, n * g + 1), n)
        fast, obj = run_pair(
            n,
            seed,
            VectorSmallIdElection(d=d, g=g),
            lambda: SmallIdElection(d=d, g=g),
            crashes,
            ids=ids,
        )
        assert_crash_twins_match(fast, obj)

    def test_dead_window_stays_silent(self):
        # IDs 1..8, d=2: window 1 = {1, 2}.  Killing both holders at
        # round 1 pushes the opening to window 2 — one extra silent
        # round, and the minimum *live* broadcaster leads.
        fast, obj = run_pair(
            8,
            0,
            VectorSmallIdElection(d=2),
            lambda: SmallIdElection(d=2),
            [(0, 1), (1, 1)],
        )
        assert_crash_twins_match(fast, obj)
        assert fast.elected_id == 3
        assert fast.rounds_executed == 3
