"""Crash masks on the remaining vectorized ports, cross-checked at small n.

``tests/test_fastsync_crash.py`` pins the ``improved_tradeoff`` port;
this file covers the ports that gained crash-mask support with the batch
engine: ``afek_gafni``, ``las_vegas`` and ``small_id`` (``kutten16``
lives with its twin suite in ``tests/test_fastsync_new_ports.py``).
Each exact-mode run under a crash schedule must replay the object engine
bit for bit (:func:`tests.helpers.assert_twin_run`) — including the
*stall* modes: the Afek–Gafni reconstruction's final iteration contacts
every peer, so an early crash starves every candidate on both engines,
and a saturated Las Vegas referee count (``m = n - 1``) does the same.
"""

import random

import pytest

pytest.importorskip("numpy")

from repro.sweep import RunSpec  # noqa: E402

from tests.helpers import assert_twin_run  # noqa: E402


def crash_spec(algorithm, n, seed, crashes, params=None, ids=None, max_rounds=None):
    return RunSpec(
        algorithm=algorithm,
        n=n,
        seeds=(seed,),
        params=params or {},
        ids=ids,
        crashes=tuple(crashes),
        max_rounds=max_rounds,
    )


class TestLasVegasCrashes:
    # referee_coeff below saturation: a crash demotes candidates that
    # sampled the corpse instead of freezing the whole protocol.
    @pytest.mark.parametrize(
        "n,seed,coeff,crashes",
        [
            (16, 0, 0.5, [(15, 1)]),       # max-ID node dies at wake-up
            (16, 1, 0.5, [(3, 2)]),
            (40, 2, 1.0, [(0, 1), (5, 4)]),
            (40, 3, 1.0, [(39, 3), (2, 6)]),
            (24, 5, 0.6, [(23, 2), (22, 5), (21, 7)]),
        ],
    )
    def test_exact_mode_replays_the_object_engine(self, n, seed, coeff, crashes):
        fast, obj = assert_twin_run(
            crash_spec("las_vegas", n, seed, crashes, {"referee_coeff": coeff})
        )
        assert fast is not None and obj is not None

    def test_saturated_referee_count_stalls_both_engines(self):
        # At n=8 the default referee count caps at n-1, so every
        # candidate contacts the corpse and nobody ever wins a full set.
        fast, obj = assert_twin_run(
            crash_spec("las_vegas", 8, 0, [(7, 1)], max_rounds=60)
        )
        assert fast is None and obj is None  # both engines hit the limit


class TestAfekGafniCrashes:
    # ell=4 -> two iterations, announce at round 5, follower receipt at 6.
    @pytest.mark.parametrize(
        "n,seed,crashes",
        [
            (8, 0, [(3, 6)]),     # a follower dies before the announcement lands
            (8, 1, [(7, 6)]),     # the freshly announced leader dies
            (16, 2, [(5, 10)]),   # post-quiescence crash
            (8, 3, [(6, 5), (2, 9)]),
        ],
    )
    def test_late_crashes_replay_the_object_engine(self, n, seed, crashes):
        fast, obj = assert_twin_run(
            crash_spec("afek_gafni", n, seed, crashes, {"ell": 4})
        )
        assert fast is not None and obj is not None

    @pytest.mark.parametrize("crashes", [[(7, 1)], [(2, 2)], [(0, 4)]])
    def test_early_crashes_stall_both_engines(self, crashes):
        # The reconstruction's final iteration contacts every peer, so a
        # pre-announcement corpse denies every candidate a full response
        # set: nobody announces and the referees idle to the round limit.
        fast, obj = assert_twin_run(
            crash_spec("afek_gafni", 8, 0, crashes, {"ell": 4}, max_rounds=64)
        )
        assert fast is None and obj is None


class TestSmallIdCrashes:
    @pytest.mark.parametrize(
        "n,seed,d,g,crashes",
        [
            (8, 0, 2, 1, [(0, 1)]),                      # min-ID holder dies early
            (12, 1, 3, 2, [(5, 2), (0, 1)]),
            (16, 2, 4, 1, [(0, 1), (1, 1), (2, 1), (3, 1)]),  # first window wiped out
            (9, 3, 3, 1, [(0, 2)]),
        ],
    )
    def test_exact_mode_replays_the_object_engine(self, n, seed, d, g, crashes):
        rng = random.Random(seed)
        ids = rng.sample(range(1, n * g + 1), n)
        assert_twin_run(
            crash_spec("small_id", n, seed, crashes, {"d": d, "g": g}, ids=ids)
        )

    def test_dead_window_stays_silent(self):
        # IDs 1..8, d=2: window 1 = {1, 2}.  Killing both holders at
        # round 1 pushes the opening to window 2 — one extra silent
        # round, and the minimum *live* broadcaster leads.
        fast, _ = assert_twin_run(
            crash_spec("small_id", 8, 0, [(0, 1), (1, 1)], {"d": 2})
        )
        assert fast.elected_id == 3
        assert fast.rounds_executed == 3
