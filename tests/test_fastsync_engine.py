"""The vectorized engine: modes, determinism, primitives, guard rails."""

import importlib
import sys

import pytest

np = pytest.importorskip("numpy")

from repro.common import SimulationLimitExceeded  # noqa: E402
from repro.fastsync import (  # noqa: E402
    ArrayPortMap,
    FastSyncNetwork,
    VectorImprovedTradeoffElection,
    VectorLasVegasElection,
    get_fast_algorithm,
)


class TestConstruction:
    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            FastSyncNetwork(0)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            FastSyncNetwork(8, mode="warp")

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError):
            FastSyncNetwork(3, ids=[1, 2, 2])

    def test_rejects_wrong_id_count(self):
        with pytest.raises(ValueError):
            FastSyncNetwork(3, ids=[1, 2])

    def test_auto_mode_switches_at_exact_limit(self):
        assert FastSyncNetwork(64, exact_limit=64).mode == "exact"
        assert FastSyncNetwork(65, exact_limit=64).mode == "scale"

    def test_default_ids_are_one_based(self):
        net = FastSyncNetwork(5)
        assert list(net.ids) == [1, 2, 3, 4, 5]


class TestPortModel:
    def test_port_matrix_rows_are_peer_permutations(self):
        net = FastSyncNetwork(17, mode="exact", seed=3)
        ports = net._ports
        for u in range(17):
            assert sorted(ports[u]) == [v for v in range(17) if v != u]

    def test_port_map_adapter_is_involutive(self):
        net = FastSyncNetwork(9, mode="exact", seed=1)
        pm = net.port_map()
        for u in range(9):
            for i in range(8):
                v, j = pm.resolve(u, i)
                assert pm.resolve(v, j) == (u, i)

    def test_port_map_unavailable_in_scale_mode(self):
        with pytest.raises(RuntimeError, match="exact"):
            FastSyncNetwork(8, mode="scale").port_map()

    def test_array_port_map_validates_shape(self):
        with pytest.raises(ValueError):
            ArrayPortMap(np.zeros((4, 2), dtype=np.int64))


class TestSamplingPrimitives:
    @pytest.mark.parametrize("mode", ["exact", "scale"])
    @pytest.mark.parametrize("m", [1, 3, 30, 31])
    def test_distinct_targets_exclude_self(self, mode, m):
        net = FastSyncNetwork(32, mode=mode, seed=7)
        src = np.arange(32)
        dst = net.sampled_targets(src, m)
        assert dst.shape == (32, m)
        for row, u in enumerate(src):
            targets = dst[row].tolist()
            assert u not in targets
            assert len(set(targets)) == m
            assert all(0 <= v < 32 for v in targets)

    def test_scale_argpartition_path(self):
        # m*m > 4n forces the chunked argpartition branch.
        net = FastSyncNetwork(64, mode="scale", seed=5)
        dst = net.sampled_targets(np.arange(64), 40)
        for row in range(64):
            targets = dst[row].tolist()
            assert row not in targets
            assert len(set(targets)) == 40

    def test_first_ports_are_stable_in_exact_mode(self):
        net = FastSyncNetwork(16, mode="exact", seed=2)
        src = np.arange(16)
        first = net.first_ports(src, 3)
        again = net.first_ports(src, 5)
        assert (again[:, :3] == first).all()

    def test_too_many_ports_rejected(self):
        net = FastSyncNetwork(8, mode="scale")
        with pytest.raises(ValueError):
            net.first_ports(np.arange(8), 8)

    def test_bernoulli_extremes(self):
        net = FastSyncNetwork(16, mode="scale", seed=0)
        assert not net.bernoulli(0.0).any()
        assert net.bernoulli(1.0).all()


class TestExecution:
    @pytest.mark.parametrize("mode", ["exact", "scale"])
    def test_deterministic_per_seed_and_mode(self, mode):
        runs = [
            FastSyncNetwork(96, mode=mode, seed=11).run(VectorLasVegasElection())
            for _ in range(2)
        ]
        assert runs[0].messages == runs[1].messages
        assert runs[0].leaders == runs[1].leaders
        assert runs[0].rounds_executed == runs[1].rounds_executed

    def test_network_is_single_use(self):
        net = FastSyncNetwork(8)
        net.run(VectorImprovedTradeoffElection(ell=3))
        with pytest.raises(RuntimeError, match="single-use"):
            net.run(VectorImprovedTradeoffElection(ell=3))

    def test_result_shape(self):
        result = FastSyncNetwork(64, seed=4).run(VectorImprovedTradeoffElection(ell=5))
        assert result.unique_leader
        assert result.elected_id == 64
        assert result.decided_count == 64
        assert result.awake_count == result.halted_count == 64
        assert result.crashed == [] and result.fault_metrics is None
        assert result.wall_time_s >= 0
        assert sum(result.messages_by_kind.values()) == result.messages
        assert sum(result.sends_by_round.values()) == result.messages

    def test_simulation_limit_raises(self):
        # A Las Vegas run whose candidacy coin never lands cannot elect.
        net = FastSyncNetwork(16, max_rounds=30)
        alg = VectorLasVegasElection(candidate_prob_fn=lambda n, phase: 0.0)
        with pytest.raises(SimulationLimitExceeded):
            net.run(alg)

    def test_forgotten_decide_is_an_error(self):
        class Lazy:
            def run(self, net):
                net.tick()

        with pytest.raises(RuntimeError, match="decide"):
            FastSyncNetwork(4).run(Lazy())


class TestRegistry:
    def test_unknown_name_suggests_known(self):
        with pytest.raises(KeyError, match="las_vegas"):
            get_fast_algorithm("monarchical")

    def test_core_registry_announces_fast_twins(self):
        from repro.core import ALGORITHMS

        for name in (
            "improved_tradeoff",
            "afek_gafni",
            "las_vegas",
            "small_id",
            "kutten16",
            "adversarial_2round",
        ):
            assert ALGORITHMS[name].has_fast, name
        assert not ALGORITHMS["monarchical"].has_fast

    def test_make_fast_builds_parameterized_port(self):
        from repro.core import ALGORITHMS

        alg = ALGORITHMS["improved_tradeoff"].make_fast(ell=7)()
        assert alg.ell == 7


class TestNumpyGuard:
    def test_missing_numpy_raises_guidance(self, monkeypatch):
        saved = {
            name: sys.modules.pop(name)
            for name in list(sys.modules)
            if name == "repro.fastsync" or name.startswith("repro.fastsync.")
        }
        try:
            monkeypatch.setitem(sys.modules, "numpy", None)
            with pytest.raises(ImportError, match=r"\.\[fast\]"):
                importlib.import_module("repro.fastsync")
        finally:
            sys.modules.pop("repro.fastsync", None)
            sys.modules.update(saved)
