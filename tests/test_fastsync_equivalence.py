"""Cross-engine validation: fastsync (exact mode) vs the object engine.

Each vectorized port is run against its object-model twin — same seed,
same materialized port map, same per-node RNG streams — and must produce
*identical* winners, message totals, per-kind message counts and round
counters.  This is the contract that makes scale-mode numbers
trustworthy: the vectorized survivor logic is proven equal to the
per-node protocol wherever both engines can run.
"""

import pytest

pytest.importorskip("numpy")

from repro.core import (  # noqa: E402
    AfekGafniElection,
    ImprovedTradeoffElection,
    LasVegasElection,
)
from repro.fastsync import (  # noqa: E402
    FastSyncNetwork,
    VectorAfekGafniElection,
    VectorImprovedTradeoffElection,
    VectorLasVegasElection,
)
from repro.sync.engine import SyncNetwork  # noqa: E402

from tests.helpers import make_ids  # noqa: E402

CASES = [
    (
        "improved_tradeoff/ell=3",
        lambda: VectorImprovedTradeoffElection(ell=3),
        lambda: ImprovedTradeoffElection(ell=3),
    ),
    (
        "improved_tradeoff/ell=5",
        lambda: VectorImprovedTradeoffElection(ell=5),
        lambda: ImprovedTradeoffElection(ell=5),
    ),
    (
        "improved_tradeoff/ell=9",
        lambda: VectorImprovedTradeoffElection(ell=9),
        lambda: ImprovedTradeoffElection(ell=9),
    ),
    (
        "afek_gafni/ell=2",
        lambda: VectorAfekGafniElection(ell=2),
        lambda: AfekGafniElection(ell=2),
    ),
    (
        "afek_gafni/ell=4",
        lambda: VectorAfekGafniElection(ell=4),
        lambda: AfekGafniElection(ell=4),
    ),
    (
        "afek_gafni/ell=7",
        lambda: VectorAfekGafniElection(ell=7),
        lambda: AfekGafniElection(ell=7),
    ),
    (
        "las_vegas",
        lambda: VectorLasVegasElection(),
        lambda: LasVegasElection(),
    ),
    (
        "las_vegas/tuned",
        lambda: VectorLasVegasElection(candidate_coeff=1.0, referee_coeff=3.0),
        lambda: LasVegasElection(candidate_coeff=1.0, referee_coeff=3.0),
    ),
]
CASE_IDS = [c[0] for c in CASES]


def assert_twin_runs_match(n, seed, vector_factory, object_factory, ids=None):
    """Run both engines on the same wiring/seed and compare everything."""
    fast_net = FastSyncNetwork(n, ids=ids, seed=seed, mode="exact")
    port_map = fast_net.port_map()
    fast = fast_net.run(vector_factory())
    obj = SyncNetwork(n, object_factory, ids=ids, seed=seed, port_map=port_map).run()

    assert fast.messages == obj.messages
    assert fast.rounds_executed == obj.rounds_executed
    assert fast.last_send_round == obj.last_send_round
    assert fast.leaders == obj.leaders
    assert fast.elected_id == obj.elected_id
    assert fast.unique_leader == obj.unique_leader
    assert fast.decided_count == obj.decided_count
    assert fast.messages_by_kind == dict(obj.metrics.messages_by_kind)
    assert fast.sends_by_round == dict(obj.metrics.sends_by_round)
    return fast


@pytest.mark.parametrize("name,vector_factory,object_factory", CASES, ids=CASE_IDS)
@pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 16, 33, 64])
def test_twins_agree_small(name, vector_factory, object_factory, n):
    for seed in (0, 1, 2):
        assert_twin_runs_match(n, seed, vector_factory, object_factory)


@pytest.mark.parametrize("name,vector_factory,object_factory", CASES, ids=CASE_IDS)
def test_twins_agree_at_256(name, vector_factory, object_factory):
    fast = assert_twin_runs_match(256, 7, vector_factory, object_factory)
    assert fast.unique_leader


SCRAMBLE_CASES = [CASES[0], CASES[1], CASES[4], CASES[6]]


@pytest.mark.parametrize(
    "name,vector_factory,object_factory",
    SCRAMBLE_CASES,
    ids=[c[0] for c in SCRAMBLE_CASES],
)
def test_twins_agree_with_scrambled_ids(name, vector_factory, object_factory):
    ids = make_ids(96, seed=3)
    fast = assert_twin_runs_match(96, 5, vector_factory, object_factory, ids=ids)
    if not name.startswith("las_vegas"):  # deterministic twins elect the max ID
        assert fast.elected_id == max(ids)


def test_las_vegas_forced_restart_matches():
    """A zero-candidate phase restarts identically on both engines."""

    def flaky_prob(n, phase):
        return 0.0 if phase == 0 else 1.0

    assert_twin_runs_match(
        24,
        1,
        lambda: VectorLasVegasElection(candidate_prob_fn=flaky_prob),
        lambda: LasVegasElection(candidate_prob_fn=flaky_prob),
    )


def test_las_vegas_collision_phase_matches():
    """An all-candidate phase (announce collisions likely) still matches."""
    assert_twin_runs_match(
        16,
        2,
        lambda: VectorLasVegasElection(candidate_prob_fn=lambda n, p: 1.0),
        lambda: LasVegasElection(candidate_prob_fn=lambda n, p: 1.0),
    )
