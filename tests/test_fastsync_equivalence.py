"""Cross-engine validation: fastsync (exact mode) vs the object engine.

Each vectorized port is run against its object-model twin — same seed,
same materialized port map, same per-node RNG streams — and must produce
*identical* winners, message totals, per-kind message counts and round
counters.  This is the contract that makes scale-mode numbers
trustworthy: the vectorized survivor logic is proven equal to the
per-node protocol wherever both engines can run.  The comparison itself
lives in :func:`tests.helpers.assert_twin_run`, shared with the crash
and fault twin suites.
"""

import pytest

pytest.importorskip("numpy")

from repro.sweep import RunSpec  # noqa: E402

from tests.helpers import assert_twin_run, make_ids  # noqa: E402

CASES = [
    ("improved_tradeoff/ell=3", "improved_tradeoff", {"ell": 3}),
    ("improved_tradeoff/ell=5", "improved_tradeoff", {"ell": 5}),
    ("improved_tradeoff/ell=9", "improved_tradeoff", {"ell": 9}),
    ("afek_gafni/ell=2", "afek_gafni", {"ell": 2}),
    ("afek_gafni/ell=4", "afek_gafni", {"ell": 4}),
    ("afek_gafni/ell=7", "afek_gafni", {"ell": 7}),
    ("las_vegas", "las_vegas", {}),
    (
        "las_vegas/tuned",
        "las_vegas",
        {"candidate_coeff": 1.0, "referee_coeff": 3.0},
    ),
]
CASE_IDS = [c[0] for c in CASES]


def twin_run(n, seed, algorithm, params, ids=None):
    spec = RunSpec(
        algorithm=algorithm, n=n, seeds=(seed,), params=params, ids=ids
    )
    fast, _ = assert_twin_run(spec)
    return fast


@pytest.mark.parametrize("name,algorithm,params", CASES, ids=CASE_IDS)
@pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 16, 33, 64])
def test_twins_agree_small(name, algorithm, params, n):
    for seed in (0, 1, 2):
        twin_run(n, seed, algorithm, params)


@pytest.mark.parametrize("name,algorithm,params", CASES, ids=CASE_IDS)
def test_twins_agree_at_256(name, algorithm, params):
    fast = twin_run(256, 7, algorithm, params)
    assert fast.unique_leader


SCRAMBLE_CASES = [CASES[0], CASES[1], CASES[4], CASES[6]]


@pytest.mark.parametrize(
    "name,algorithm,params",
    SCRAMBLE_CASES,
    ids=[c[0] for c in SCRAMBLE_CASES],
)
def test_twins_agree_with_scrambled_ids(name, algorithm, params):
    ids = make_ids(96, seed=3)
    fast = twin_run(96, 5, algorithm, params, ids=ids)
    if not name.startswith("las_vegas"):  # deterministic twins elect the max ID
        assert fast.elected_id == max(ids)


def test_las_vegas_forced_restart_matches():
    """A zero-candidate phase restarts identically on both engines."""

    def flaky_prob(n, phase):
        return 0.0 if phase == 0 else 1.0

    twin_run(24, 1, "las_vegas", {"candidate_prob_fn": flaky_prob})


def test_las_vegas_collision_phase_matches():
    """An all-candidate phase (announce collisions likely) still matches."""
    twin_run(16, 2, "las_vegas", {"candidate_prob_fn": lambda n, p: 1.0})
