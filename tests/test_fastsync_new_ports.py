"""Twin equivalence for the ``kutten16`` and ``adversarial_2round`` ports.

Same contract as ``tests/test_fastsync_equivalence.py`` (and the same
:func:`tests.helpers.assert_twin_run` oracle): in exact mode a fastsync
run and an object-model run from the same seed over the same
materialized port map must agree on winners and every complexity
counter.  ``adversarial_2round`` additionally sweeps adversarial wake-up
schedules (the engine's ``roots``), and ``kutten16`` sweeps crash masks.
"""

import pytest

pytest.importorskip("numpy")

from repro.fastsync import (  # noqa: E402
    FastSyncNetwork,
    VectorAdversarial2RoundElection,
    VectorKutten16Election,
)
from repro.sweep import RunSpec  # noqa: E402

from tests.helpers import assert_twin_run, make_ids  # noqa: E402


class TestKutten16Twins:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 16, 33, 64])
    def test_twins_agree_small(self, n):
        for seed in (0, 1, 2):
            assert_twin_run(RunSpec(algorithm="kutten16", n=n, seeds=(seed,)))

    def test_twins_agree_at_256_with_scrambled_ids(self):
        assert_twin_run(
            RunSpec(
                algorithm="kutten16", n=256, seeds=(7,), ids=make_ids(256, seed=3)
            )
        )

    def test_tuned_coefficients_match(self):
        assert_twin_run(
            RunSpec(
                algorithm="kutten16",
                n=64,
                seeds=(5,),
                params={"candidate_coeff": 4.0, "referee_coeff": 1.0},
            )
        )

    @pytest.mark.parametrize(
        "n,seed,crashes",
        [
            (8, 0, [(7, 1)]),
            (16, 1, [(3, 2)]),
            (16, 2, [(0, 1), (5, 2), (9, 3)]),
            (24, 3, [(23, 3)]),  # a crash after quiescence
            (5, 4, [(4, 2), (1, 1)]),
        ],
    )
    def test_crash_masks_replay_the_object_engine(self, n, seed, crashes):
        fast, obj = assert_twin_run(
            RunSpec(
                algorithm="kutten16", n=n, seeds=(seed,), crashes=tuple(crashes)
            )
        )
        assert fast is not None and obj is not None

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            VectorKutten16Election(candidate_coeff=0.0)
        with pytest.raises(ValueError, match="positive"):
            VectorKutten16Election(referee_coeff=-1.0)


ROOT_SCHEDULES = [
    lambda n: [0],
    lambda n: [n - 1],
    lambda n: list(range(min(3, n))),
    lambda n: list(range(n)),          # the adversary wakes everyone
    lambda n: list(range(0, n, 2)),
]


class TestAdversarial2RoundTwins:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 16, 33])
    @pytest.mark.parametrize("schedule", range(len(ROOT_SCHEDULES)))
    def test_twins_agree_across_wakeup_schedules(self, n, schedule):
        roots = tuple(ROOT_SCHEDULES[schedule](n))
        for seed in (0, 1, 2):
            assert_twin_run(
                RunSpec(
                    algorithm="adversarial_2round", n=n, seeds=(seed,), roots=roots
                )
            )

    def test_epsilon_parameter_matches(self):
        for eps in (0.3, 0.01):
            assert_twin_run(
                RunSpec(
                    algorithm="adversarial_2round",
                    n=64,
                    seeds=(9,),
                    roots=(0, 1),
                    params={"epsilon": eps},
                )
            )

    def test_scrambled_ids_match(self):
        assert_twin_run(
            RunSpec(
                algorithm="adversarial_2round",
                n=48,
                seeds=(3,),
                roots=(5,),
                ids=make_ids(48, seed=1),
            )
        )

    def test_default_roots_is_everyone(self):
        # No roots= means the adversary woke the whole clique, which is a
        # legal schedule for Theorem 4.1.
        fast = FastSyncNetwork(32, seed=2, mode="exact").run(
            VectorAdversarial2RoundElection()
        )
        assert fast.awake_count == 32

    def test_sleepers_stay_asleep_without_candidates(self):
        # epsilon near 1 makes candidacy essentially impossible, so only
        # roots and wake-up receivers ever wake — the ε failure mode.
        fast = FastSyncNetwork(64, seed=0, mode="exact", roots=[0]).run(
            VectorAdversarial2RoundElection(epsilon=0.999999)
        )
        assert fast.leaders == []
        assert fast.awake_count < 64
        assert fast.decided_count == fast.awake_count

    def test_validation(self):
        with pytest.raises(ValueError, match="epsilon"):
            VectorAdversarial2RoundElection(epsilon=1.5)
        with pytest.raises(ValueError, match="root"):
            FastSyncNetwork(8, roots=[])
        with pytest.raises(ValueError, match="range|\\[0, n\\)"):
            FastSyncNetwork(8, roots=[9])
