"""Twin equivalence for the ``kutten16`` and ``adversarial_2round`` ports.

Same contract as ``tests/test_fastsync_equivalence.py``: in exact mode a
fastsync run and an object-model run from the same seed over the same
materialized port map must agree on winners and every complexity
counter.  ``adversarial_2round`` additionally sweeps adversarial wake-up
schedules (the engine's ``roots``), and ``kutten16`` sweeps crash masks.
"""

import pytest

pytest.importorskip("numpy")

from repro.core import (  # noqa: E402
    AdversarialTwoRoundElection,
    Kutten16Election,
)
from repro.fastsync import (  # noqa: E402
    FastSyncNetwork,
    VectorAdversarial2RoundElection,
    VectorKutten16Election,
)
from repro.faults import CrashFault, FaultPlan  # noqa: E402
from repro.sync.engine import SyncNetwork  # noqa: E402

from tests.helpers import make_ids  # noqa: E402


def assert_twins_match(fast, obj):
    assert fast.messages == obj.messages
    assert fast.rounds_executed == obj.rounds_executed
    assert fast.last_send_round == obj.last_send_round
    assert fast.leaders == obj.leaders
    assert fast.elected_id == obj.elected_id
    assert fast.decided_count == obj.decided_count
    assert fast.awake_count == obj.awake_count
    assert fast.messages_by_kind == dict(obj.metrics.messages_by_kind)
    assert fast.sends_by_round == dict(obj.metrics.sends_by_round)


class TestKutten16Twins:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 16, 33, 64])
    def test_twins_agree_small(self, n):
        for seed in (0, 1, 2):
            fast_net = FastSyncNetwork(n, seed=seed, mode="exact")
            port_map = fast_net.port_map() if n > 1 else None
            fast = fast_net.run(VectorKutten16Election())
            obj = SyncNetwork(
                n, lambda: Kutten16Election(), seed=seed, port_map=port_map
            ).run()
            assert_twins_match(fast, obj)

    def test_twins_agree_at_256_with_scrambled_ids(self):
        ids = make_ids(256, seed=3)
        fast_net = FastSyncNetwork(256, ids=ids, seed=7, mode="exact")
        port_map = fast_net.port_map()
        fast = fast_net.run(VectorKutten16Election())
        obj = SyncNetwork(
            256, lambda: Kutten16Election(), ids=ids, seed=7, port_map=port_map
        ).run()
        assert_twins_match(fast, obj)

    def test_tuned_coefficients_match(self):
        fast_net = FastSyncNetwork(64, seed=5, mode="exact")
        port_map = fast_net.port_map()
        fast = fast_net.run(
            VectorKutten16Election(candidate_coeff=4.0, referee_coeff=1.0)
        )
        obj = SyncNetwork(
            64,
            lambda: Kutten16Election(candidate_coeff=4.0, referee_coeff=1.0),
            seed=5,
            port_map=port_map,
        ).run()
        assert_twins_match(fast, obj)

    @pytest.mark.parametrize(
        "n,seed,crashes",
        [
            (8, 0, [(7, 1)]),
            (16, 1, [(3, 2)]),
            (16, 2, [(0, 1), (5, 2), (9, 3)]),
            (24, 3, [(23, 3)]),  # a crash after quiescence
            (5, 4, [(4, 2), (1, 1)]),
        ],
    )
    def test_crash_masks_replay_the_object_engine(self, n, seed, crashes):
        fast_net = FastSyncNetwork(n, seed=seed, mode="exact", crashes=crashes)
        port_map = fast_net.port_map()
        fast = fast_net.run(VectorKutten16Election())
        plan = FaultPlan(crashes=tuple(CrashFault(node=u, at=at) for u, at in crashes))
        obj = SyncNetwork(
            n, lambda: Kutten16Election(), seed=seed, port_map=port_map, faults=plan
        ).run()
        assert_twins_match(fast, obj)
        assert sorted(fast.crashed) == sorted(obj.crashed)
        assert fast.unique_surviving_leader == obj.unique_surviving_leader
        assert fast.surviving_leader_id == obj.surviving_leader_id

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            VectorKutten16Election(candidate_coeff=0.0)
        with pytest.raises(ValueError, match="positive"):
            VectorKutten16Election(referee_coeff=-1.0)


ROOT_SCHEDULES = [
    lambda n: [0],
    lambda n: [n - 1],
    lambda n: list(range(min(3, n))),
    lambda n: list(range(n)),          # the adversary wakes everyone
    lambda n: list(range(0, n, 2)),
]


class TestAdversarial2RoundTwins:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 16, 33])
    @pytest.mark.parametrize("schedule", range(len(ROOT_SCHEDULES)))
    def test_twins_agree_across_wakeup_schedules(self, n, schedule):
        roots = ROOT_SCHEDULES[schedule](n)
        for seed in (0, 1, 2):
            fast_net = FastSyncNetwork(n, seed=seed, mode="exact", roots=roots)
            port_map = fast_net.port_map() if n > 1 else None
            fast = fast_net.run(VectorAdversarial2RoundElection())
            obj = SyncNetwork(
                n,
                lambda: AdversarialTwoRoundElection(),
                seed=seed,
                port_map=port_map,
                awake=roots,
            ).run()
            assert_twins_match(fast, obj)

    def test_epsilon_parameter_matches(self):
        for eps in (0.3, 0.01):
            fast_net = FastSyncNetwork(64, seed=9, mode="exact", roots=[0, 1])
            port_map = fast_net.port_map()
            fast = fast_net.run(VectorAdversarial2RoundElection(epsilon=eps))
            obj = SyncNetwork(
                64,
                lambda: AdversarialTwoRoundElection(epsilon=eps),
                seed=9,
                port_map=port_map,
                awake=[0, 1],
            ).run()
            assert_twins_match(fast, obj)

    def test_scrambled_ids_match(self):
        ids = make_ids(48, seed=1)
        fast_net = FastSyncNetwork(48, ids=ids, seed=3, mode="exact", roots=[5])
        port_map = fast_net.port_map()
        fast = fast_net.run(VectorAdversarial2RoundElection())
        obj = SyncNetwork(
            48,
            lambda: AdversarialTwoRoundElection(),
            ids=ids,
            seed=3,
            port_map=port_map,
            awake=[5],
        ).run()
        assert_twins_match(fast, obj)

    def test_default_roots_is_everyone(self):
        # No roots= means the adversary woke the whole clique, which is a
        # legal schedule for Theorem 4.1.
        fast = FastSyncNetwork(32, seed=2, mode="exact").run(
            VectorAdversarial2RoundElection()
        )
        assert fast.awake_count == 32

    def test_sleepers_stay_asleep_without_candidates(self):
        # epsilon near 1 makes candidacy essentially impossible, so only
        # roots and wake-up receivers ever wake — the ε failure mode.
        fast = FastSyncNetwork(64, seed=0, mode="exact", roots=[0]).run(
            VectorAdversarial2RoundElection(epsilon=0.999999)
        )
        assert fast.leaders == []
        assert fast.awake_count < 64
        assert fast.decided_count == fast.awake_count

    def test_validation(self):
        with pytest.raises(ValueError, match="epsilon"):
            VectorAdversarial2RoundElection(epsilon=1.5)
        with pytest.raises(ValueError, match="root"):
            FastSyncNetwork(8, roots=[])
        with pytest.raises(ValueError, match="range|\\[0, n\\)"):
            FastSyncNetwork(8, roots=[9])
