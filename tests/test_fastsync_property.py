"""Property-based cross-engine equivalence (hypothesis).

Random clique sizes, random seeds, scrambled ID universes: for every
ported algorithm, the object-model engine and the fastsync engine must
agree on the winner and on the total message count when run from the
same seed over the same port map.  Complements the fixed-case suite in
``test_fastsync_equivalence.py`` with adversarially-searched inputs.
"""

import pytest
from hypothesis import given, settings, strategies as st

pytest.importorskip("numpy")

from repro.core import (  # noqa: E402
    AfekGafniElection,
    ImprovedTradeoffElection,
    LasVegasElection,
)
from repro.fastsync import (  # noqa: E402
    FastSyncNetwork,
    VectorAfekGafniElection,
    VectorImprovedTradeoffElection,
    VectorLasVegasElection,
)
from repro.sync.engine import SyncNetwork  # noqa: E402

from tests.helpers import make_ids  # noqa: E402

PAIRS = {
    "improved_tradeoff": (
        lambda ell: VectorImprovedTradeoffElection(ell=ell),
        lambda ell: ImprovedTradeoffElection(ell=ell),
        st.sampled_from([3, 5, 7]),
    ),
    "afek_gafni": (
        lambda ell: VectorAfekGafniElection(ell=ell),
        lambda ell: AfekGafniElection(ell=ell),
        st.sampled_from([2, 3, 4, 6]),
    ),
    "las_vegas": (
        lambda ell: VectorLasVegasElection(),
        lambda ell: LasVegasElection(),
        st.just(0),
    ),
}


@pytest.mark.parametrize("algorithm", sorted(PAIRS))
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_engines_agree_on_winner_and_messages(algorithm, data):
    vector_make, object_make, param_strategy = PAIRS[algorithm]
    n = data.draw(st.integers(min_value=2, max_value=128), label="n")
    seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1), label="seed")
    ell = data.draw(param_strategy, label="ell")
    id_seed = data.draw(st.integers(min_value=0, max_value=7), label="id_seed")
    ids = make_ids(n, seed=id_seed)

    fast_net = FastSyncNetwork(n, ids=ids, seed=seed, mode="exact")
    port_map = fast_net.port_map()
    fast = fast_net.run(vector_make(ell))
    obj = SyncNetwork(
        n, lambda: object_make(ell), ids=ids, seed=seed, port_map=port_map
    ).run()

    assert fast.elected_id == obj.elected_id
    assert fast.leaders == obj.leaders
    assert fast.messages == obj.messages
    assert fast.rounds_executed == obj.rounds_executed
