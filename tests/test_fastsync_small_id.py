"""Cross-engine validation of the vectorized ``small_id`` port.

The small-ID election is deterministic and consumes no randomness, so
the exact-mode equivalence is the strictest in the suite: every counter
must match the object twin for any ID assignment from the linear-size
universe, including adversarially clumped and maximally spread ones.
"""

import random

import pytest

pytest.importorskip("numpy")

from repro.fastsync import FastSyncNetwork, VectorSmallIdElection  # noqa: E402
from repro.ids import assign_random, small_universe  # noqa: E402
from repro.sweep.spec import RunSpec  # noqa: E402

from tests.helpers import assert_twin_run  # noqa: E402


def _spec(n, seed, *, ids=None, **params):
    return RunSpec(algorithm="small_id", n=n, seeds=(seed,), params=params, ids=ids)


class TestEquivalence:
    @pytest.mark.parametrize("n", [2, 3, 7, 16, 33, 64])
    @pytest.mark.parametrize("d", [1, 2, 5])
    def test_default_ids_match(self, n, d):
        if d > n:
            pytest.skip("d <= n required")
        assert_twin_run(_spec(n, 7, d=d))

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("g", [1, 2, 3])
    def test_small_universe_ids_match(self, seed, g):
        n, d = 24, 4
        rng = random.Random(f"small-id-equiv:{seed}")
        ids = assign_random(small_universe(n, g), n, rng)
        assert_twin_run(_spec(n, seed, ids=ids, d=d, g=g))

    def test_single_node(self):
        assert_twin_run(_spec(1, 0, d=1))

    def test_clumped_window_ids(self):
        # Every ID inside the very first window: maximal broadcast fan-out.
        n = 16
        assert_twin_run(_spec(n, 3, ids=list(range(1, n + 1)), d=n))

    def test_late_window_ids(self):
        # All IDs at the top of the universe: many silent rounds first.
        n, g = 12, 2
        ids = list(range(n * g - n + 1, n * g + 1))
        assert_twin_run(_spec(n, 5, ids=ids, d=2, g=g))


class TestValidation:
    def test_rejects_out_of_universe_ids(self):
        net = FastSyncNetwork(4, ids=[1, 2, 3, 9], seed=0, mode="exact")
        with pytest.raises(ValueError, match=r"IDs in \[1, n\*g\]"):
            net.run(VectorSmallIdElection(d=2))

    def test_rejects_oversized_d(self):
        net = FastSyncNetwork(4, seed=0, mode="exact")
        with pytest.raises(ValueError, match="d <= n"):
            net.run(VectorSmallIdElection(d=5))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            VectorSmallIdElection(d=0)
        with pytest.raises(ValueError):
            VectorSmallIdElection(d=1, g=0)

    def test_registry_exposes_fast_twin(self):
        from repro.core import get_algorithm

        assert get_algorithm("small_id").has_fast
