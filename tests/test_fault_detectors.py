"""Failure-detector oracles: completeness, accuracy, determinism."""

from repro.faults import (
    DetectorSpec,
    EventuallyPerfectDetector,
    FaultPlan,
    FaultRuntime,
    PerfectDetector,
    make_detector,
)

IDS = [10, 20, 30, 40]


def runtime(seed=0):
    return FaultRuntime(FaultPlan(), len(IDS), IDS, seed=seed)


class TestPerfectDetector:
    def test_no_runtime_never_suspects(self):
        det = PerfectDetector(0, IDS)
        assert det.suspects(100.0) == frozenset()
        assert det.trusted(100.0) == 40

    def test_lag_gates_detection(self):
        rt = runtime()
        rt.note_crash(3, 5.0)
        det = PerfectDetector(0, IDS, runtime=rt, lag=2.0)
        assert det.suspects(6.9) == frozenset()
        assert det.suspects(7.0) == frozenset({40})
        assert det.trusted(7.0) == 30

    def test_membership_sorted(self):
        det = PerfectDetector(0, [3, 1, 2])
        assert det.membership == (1, 2, 3)

    def test_first_suspicion_recorded(self):
        rt = runtime()
        rt.note_crash(1, 2.0)
        det = PerfectDetector(0, IDS, runtime=rt, lag=1.0)
        det.suspects(2.5)  # too early: not recorded
        assert 1 not in rt.metrics.first_suspected
        det.suspects(4.0)
        assert rt.metrics.first_suspected[1] == 4.0
        det.suspects(9.0)  # later queries do not overwrite the first
        assert rt.metrics.first_suspected[1] == 4.0
        assert rt.metrics.detection_latencies(rt.crashed_at) == [2.0]

    def test_last_transition(self):
        rt = runtime()
        det = PerfectDetector(0, IDS, runtime=rt, lag=1.0)
        assert det.last_transition(10.0) == 0.0
        rt.note_crash(1, 2.0)
        rt.note_crash(2, 5.0)
        assert det.last_transition(4.0) == 3.0
        assert det.last_transition(10.0) == 6.0


class TestEventuallyPerfectDetector:
    def make(self, seed=0, **kw):
        rt = runtime(seed)
        defaults = dict(lag=1.0, noise_horizon=8.0, false_prob=0.9)
        defaults.update(kw)
        return rt, EventuallyPerfectDetector(0, IDS, runtime=rt, **defaults)

    def test_eventually_accurate(self):
        rt, det = self.make()
        assert det.suspects(100.0) == frozenset()  # past the horizon: perfect

    def test_noise_is_deterministic(self):
        probes = [t / 2 for t in range(20)]
        _, det_a = self.make(seed=7)
        _, det_b = self.make(seed=7)
        assert [det_a.suspects(t) for t in probes] == [
            det_b.suspects(t) for t in probes
        ]

    def test_noise_varies_with_seed(self):
        probes = [t / 2 for t in range(20)]
        _, det_a = self.make(seed=1)
        _, det_b = self.make(seed=2)
        assert [det_a.suspects(t) for t in probes] != [
            det_b.suspects(t) for t in probes
        ]

    def test_false_suspicions_actually_happen(self):
        _, det = self.make(seed=3)
        seen = set()
        for t in [x / 4 for x in range(32)]:
            seen |= det.suspects(t)
        assert seen, "false_prob=0.9 over 3 peers should produce suspicions"

    def test_crashes_still_detected_during_noise(self):
        rt, det = self.make(seed=0)
        rt.note_crash(3, 1.0)
        assert 40 in det.suspects(2.0)


class TestFactory:
    def test_make_detector_dispatch(self):
        rt = runtime()
        perfect = make_detector(DetectorSpec(), 0, IDS, rt)
        assert isinstance(perfect, PerfectDetector)
        dp = make_detector(
            DetectorSpec(kind="eventually_perfect", noise_horizon=4.0, false_prob=0.5),
            0,
            IDS,
            rt,
        )
        assert isinstance(dp, EventuallyPerfectDetector)
        assert dp.noise_horizon == 4.0
