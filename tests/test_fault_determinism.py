"""Satellite guarantee: same ``(seed, FaultPlan)`` ⇒ identical executions.

Each engine must reproduce a fault-injected run byte for byte: the full
recorded event trace (sends, wakes, decisions, crashes — including
payloads) and the flattened :class:`RunRecord` must be identical across
repeated runs, and must react to either a different seed or a different
plan.
"""

import dataclasses

import pytest

from repro.analysis import run_async_trial, run_sync_trial
from repro.faults import (
    AsyncReElectionElection,
    CrashFault,
    DetectorSpec,
    FaultPlan,
    LeaderKillPolicy,
    LinkFaults,
    MonarchicalElection,
    AsyncMonarchicalElection,
    ReElectionElection,
)
from repro.trace import MemoryRecorder

# Monarchical is detector-driven, so it additionally tolerates lossy and
# duplicating links; the re-election wrapper only claims crash tolerance
# (its inner algorithms assume reliable links), so its plan sticks to
# crashes + adversarial kills.
PLAN = FaultPlan(
    crashes=(CrashFault(node=3, at=2),),
    links=(LinkFaults(drop_prob=0.05, duplicate_prob=0.05),),
    policies=(LeaderKillPolicy(kinds=("ree_coord", "coord"), delay=1, max_kills=1),),
    detector=DetectorSpec(lag=1),
)
REELECT_PLAN = dataclasses.replace(PLAN, links=())
OTHER_PLAN = dataclasses.replace(PLAN, crashes=(CrashFault(node=4, at=2),))


def freeze(events):
    return [(e.kind, e.when, e.node, repr(e.detail)) for e in events]


def strip_record(record):
    # fault_metrics / raw result objects differ by identity; compare values.
    extra = dict(record.extra)
    metrics = extra.pop("fault_metrics", None)
    flat = dataclasses.asdict(dataclasses.replace(record, extra={}))
    flat["extra"] = {k: v for k, v in extra.items()}
    if metrics is not None:
        flat["fault_metrics"] = (
            metrics.crashes,
            metrics.policy_kills,
            metrics.dropped_messages,
            metrics.duplicated_messages,
            metrics.first_suspected,
        )
    return flat


def sync_execution(seed, plan):
    recorder = MemoryRecorder()
    record = run_sync_trial(
        24,
        lambda: MonarchicalElection(stable_rounds=4),
        seed=seed,
        faults=plan,
        recorder=recorder,
    )
    return freeze(recorder.events), strip_record(record)


def sync_reelect_execution(seed, plan):
    recorder = MemoryRecorder()
    record = run_sync_trial(
        24,
        lambda: ReElectionElection(inner="afek_gafni", commit_rounds=4),
        seed=seed,
        faults=plan,
        recorder=recorder,
    )
    return freeze(recorder.events), strip_record(record)


def async_execution(seed, plan):
    recorder = MemoryRecorder()
    record = run_async_trial(
        24,
        lambda: AsyncMonarchicalElection(poll_interval=0.5, stable_polls=5),
        seed=seed,
        wake_times={u: 0.0 for u in range(24)},
        faults=plan,
        recorder=recorder,
    )
    return freeze(recorder.events), strip_record(record)


def async_reelect_execution(seed, plan):
    recorder = MemoryRecorder()
    record = run_async_trial(
        24,
        lambda: AsyncReElectionElection(
            inner="async_tradeoff", commit_delay=4.0, poll_interval=0.5
        ),
        seed=seed,
        wake_times={0: 0.0},
        max_events=2_000_000,
        faults=plan,
        recorder=recorder,
    )
    return freeze(recorder.events), strip_record(record)


EXECUTIONS = [
    ("sync-monarchical", sync_execution, PLAN),
    ("sync-reelect", sync_reelect_execution, REELECT_PLAN),
    ("async-monarchical", async_execution, PLAN),
    ("async-reelect", async_reelect_execution, REELECT_PLAN),
]
IDS = [e[0] for e in EXECUTIONS]


@pytest.mark.parametrize("label,execute,plan", EXECUTIONS, ids=IDS)
def test_identical_trace_and_record_per_seed_and_plan(label, execute, plan):
    trace_a, record_a = execute(11, plan)
    trace_b, record_b = execute(11, plan)
    assert trace_a == trace_b, f"{label}: trace diverged for identical (seed, plan)"
    assert record_a == record_b, f"{label}: RunRecord diverged"
    assert any(kind == "crash" for kind, *_ in trace_a), "plan must actually crash"


@pytest.mark.parametrize("label,execute,plan", EXECUTIONS, ids=IDS)
def test_seed_changes_execution(label, execute, plan):
    trace_a, _ = execute(11, plan)
    trace_c, _ = execute(12, plan)
    assert trace_a != trace_c, f"{label}: seed had no effect"


def test_plan_changes_execution():
    trace_a, _ = sync_execution(11, PLAN)
    trace_d, _ = sync_execution(11, OTHER_PLAN)
    assert trace_a != trace_d, "crashing a different node must change the trace"


def test_detection_metrics_reproducible():
    _, record_a = sync_execution(11, PLAN)
    _, record_b = sync_execution(11, PLAN)
    assert record_a["fault_metrics"] == record_b["fault_metrics"]
    assert record_a["extra"]["unique_surviving_leader"]
