"""Monarchical (eventual) leader election under crash faults."""

import pytest

from repro.asyncnet.engine import AsyncNetwork
from repro.common import Decision
from repro.faults import (
    AsyncMonarchicalElection,
    CrashFault,
    DetectorSpec,
    FaultPlan,
    MonarchicalElection,
    safe_stable_rounds,
)
from repro.sync.engine import SyncNetwork

from tests.helpers import make_ids


def sync_run(n, plan=None, ids=None, seed=0, **params):
    net = SyncNetwork(
        n, lambda: MonarchicalElection(**params), ids=ids, seed=seed, faults=plan
    )
    return net.run()


def async_run(n, plan=None, ids=None, seed=0, **params):
    net = AsyncNetwork(
        n,
        lambda: AsyncMonarchicalElection(**params),
        ids=ids,
        seed=seed,
        faults=plan,
        wake_times={u: 0.0 for u in range(n)},
    )
    return net.run()


class TestSyncMonarchical:
    def test_fault_free_elects_max_id(self):
        ids = make_ids(16, seed=3)
        result = sync_run(16, ids=ids)
        assert result.unique_leader
        assert result.elected_id == max(ids)
        # Explicit election: every follower names the leader.
        assert result.explicit_agreement()
        # One coord broadcast per reign.
        assert result.messages == 15

    def test_crash_of_max_promotes_second_max(self):
        ids = list(range(1, 17))
        plan = FaultPlan(crashes=(CrashFault(node=15, at=2),), detector=DetectorSpec(lag=1))
        result = sync_run(16, plan=plan, ids=ids)
        assert result.unique_surviving_leader
        assert result.surviving_leader_id == 15
        assert result.crashed == [15]

    def test_crash_after_commit_leaves_dead_leader(self):
        # Crash far after stabilization: the max committed LEADER, died
        # later, and nobody re-elects (all halted) — surviving check fails.
        ids = list(range(1, 9))
        plan = FaultPlan(crashes=(CrashFault(node=7, at=30),), detector=DetectorSpec(lag=1))
        result = sync_run(8, plan=plan, ids=ids, stable_rounds=3)
        assert result.unique_leader  # a unique LEADER decision exists...
        assert not result.unique_surviving_leader  # ...but it is dead

    def test_cascading_crashes(self):
        ids = list(range(1, 13))
        plan = FaultPlan(
            crashes=(CrashFault(node=11, at=2), CrashFault(node=10, at=5)),
            detector=DetectorSpec(lag=1),
        )
        result = sync_run(12, plan=plan, ids=ids, stable_rounds=4)
        assert result.unique_surviving_leader
        assert result.surviving_leader_id == 10
        # Two reigns were announced before the final one: 11 then 10.
        assert result.fault_metrics.crash_count == 2

    def test_eventually_perfect_with_safe_window(self):
        ids = list(range(1, 17))
        plan = FaultPlan(
            crashes=(CrashFault(node=15, at=2),),
            detector=DetectorSpec(
                kind="eventually_perfect", lag=1, noise_horizon=6.0, false_prob=0.4
            ),
        )
        result = sync_run(
            16, plan=plan, ids=ids, seed=5,
            stable_rounds=safe_stable_rounds(6.0, 1),
        )
        assert result.unique_surviving_leader
        assert result.surviving_leader_id == 15

    def test_single_node(self):
        result = SyncNetwork(1, MonarchicalElection, seed=0).run()
        assert result.unique_leader


class TestAsyncMonarchical:
    def test_fault_free_elects_max_id(self):
        ids = make_ids(12, seed=1)
        result = async_run(12, ids=ids)
        assert result.unique_leader
        assert result.elected_id == max(ids)

    def test_crash_of_max_promotes_second_max(self):
        ids = list(range(1, 13))
        plan = FaultPlan(
            crashes=(CrashFault(node=11, at=0.7),), detector=DetectorSpec(lag=1.0)
        )
        result = async_run(12, plan=plan, ids=ids)
        assert result.unique_surviving_leader
        assert result.surviving_leader_id == 11
        assert result.crashed == [11]

    def test_followers_learn_leader_explicitly(self):
        ids = list(range(1, 9))
        result = async_run(8, ids=ids)
        for u, decision in enumerate(result.decisions):
            if decision is Decision.NON_LEADER:
                assert result.outputs[u] == 8

    def test_detection_latency_includes_poll_cadence(self):
        ids = list(range(1, 9))
        plan = FaultPlan(
            crashes=(CrashFault(node=7, at=0.6),), detector=DetectorSpec(lag=1.0)
        )
        net = AsyncNetwork(
            8,
            lambda: AsyncMonarchicalElection(poll_interval=0.5, stable_polls=6),
            ids=ids,
            seed=0,
            faults=plan,
            wake_times={u: 0.0 for u in range(8)},
        )
        result = net.run()
        latencies = result.fault_metrics.detection_latencies(
            {u: when for when, u in result.fault_metrics.crashes}
        )
        assert len(latencies) == 1
        # crash at 0.6, visible from 1.6, first poll at a multiple of 0.5
        assert 1.0 <= latencies[0] <= 1.5

    @pytest.mark.parametrize("n", [2, 5])
    def test_small_cliques(self, n):
        result = async_run(n, ids=list(range(1, n + 1)))
        assert result.unique_leader
        assert result.elected_id == n
