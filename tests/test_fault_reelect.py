"""The epoch re-election wrapper: kill leaders, keep electing survivors."""

import pytest

from repro.asyncnet.engine import AsyncNetwork
from repro.common import SimulationLimitExceeded
from repro.core import LasVegasElection
from repro.faults import (
    AsyncReElectionElection,
    CrashFault,
    DetectorSpec,
    FaultPlan,
    LeaderKillPolicy,
    LinkFaults,
    ReElectionElection,
    run_failover_trial,
)
from repro.sync.engine import SyncNetwork

KILL_SYNC = FaultPlan(
    policies=(LeaderKillPolicy(kinds=("ree_coord",), delay=1, max_kills=1),),
    detector=DetectorSpec(lag=1),
)
KILL_ASYNC = FaultPlan(
    policies=(LeaderKillPolicy(kinds=("ree_coord",), delay=0.5, max_kills=1),),
    detector=DetectorSpec(lag=1.0),
)


class TestSyncReElection:
    def test_fault_free_matches_inner_outcome(self):
        # Without faults the wrapper is a thin shell: afek_gafni elects
        # the max ID under simultaneous wake-up, and so does the wrapper.
        result = SyncNetwork(
            32, lambda: ReElectionElection(inner="afek_gafni"), seed=0
        ).run()
        assert result.unique_leader
        assert result.elected_id == 32
        assert result.decided_count == 32

    def test_frontrunner_kill_reelects_survivor(self):
        net = SyncNetwork(
            32,
            lambda: ReElectionElection(inner="afek_gafni", commit_rounds=4),
            seed=1,
            faults=KILL_SYNC,
        )
        result = net.run()
        assert result.crashed, "the kill policy must have fired"
        assert result.unique_surviving_leader
        # The dead frontrunner held the max ID; the survivor is second-max.
        assert result.surviving_leader_id == 31
        # Epoch restarted exactly once on every surviving node.
        assert all(
            alg.epochs_run == 2
            for u, alg in enumerate(net.algorithms)
            if u not in result.crashed
        )

    def test_wrapped_las_vegas(self):
        report = run_failover_trial(
            "sync",
            48,
            lambda: ReElectionElection(inner="las_vegas", commit_rounds=4),
            KILL_SYNC,
            seed=3,
        )
        assert report.crashes == 1
        assert report.unique_surviving_leader
        assert report.reelection_time is not None and report.reelection_time > 0

    def test_callable_inner_factory(self):
        result = SyncNetwork(
            16,
            lambda: ReElectionElection(inner=lambda: LasVegasElection()),
            seed=0,
        ).run()
        assert result.unique_leader

    def test_inner_params_plumb_through(self):
        result = SyncNetwork(
            16, lambda: ReElectionElection(inner="afek_gafni", ell=6), seed=0
        ).run()
        assert result.unique_leader

    def test_adversarial_wakeup_with_kill(self):
        report = run_failover_trial(
            "sync",
            48,
            lambda: ReElectionElection(inner="afek_gafni", commit_rounds=4),
            KILL_SYNC,
            seed=5,
            awake=[0, 7, 13],
        )
        assert report.crashes == 1
        assert report.unique_surviving_leader

    def test_static_crash_of_nonleader_restarts_epoch(self):
        # Any membership change restarts the election; node 0 is almost
        # surely not the max-ID winner, yet the epoch still advances.
        plan = FaultPlan(crashes=(CrashFault(node=0, at=2),), detector=DetectorSpec(lag=1))
        net = SyncNetwork(
            24,
            lambda: ReElectionElection(inner="afek_gafni", commit_rounds=4),
            seed=2,
            faults=plan,
        )
        result = net.run()
        assert result.unique_surviving_leader
        assert result.surviving_leader_id == 24
        survivors = [alg for u, alg in enumerate(net.algorithms) if u != 0]
        assert all(alg.epochs_run == 2 for alg in survivors)

    def test_two_kills_three_epochs(self):
        plan = FaultPlan(
            policies=(LeaderKillPolicy(kinds=("ree_coord",), delay=1, max_kills=2),),
            detector=DetectorSpec(lag=1),
        )
        report = run_failover_trial(
            "sync",
            32,
            lambda: ReElectionElection(inner="afek_gafni", commit_rounds=4),
            plan,
            seed=4,
        )
        assert report.crashes == 2
        assert report.unique_surviving_leader
        # Max and second-max died announcing; third-max survives.
        assert report.surviving_leader_id == 30

    def test_bad_commit_rounds(self):
        with pytest.raises(ValueError):
            ReElectionElection(commit_rounds=0)

    def test_inner_params_conflict_with_callable(self):
        with pytest.raises(ValueError):
            ReElectionElection(inner=lambda: LasVegasElection(), ell=3)


class TestLossyCommit:
    """Regression: dropped ``ree_coord`` messages must not wedge the epoch.

    Before the bounded retransmit, the winner announced once (plus one
    commit-time copy): losing both wedged the victim follower forever —
    undecided, unhalted, spinning until ``SimulationLimitExceeded``.
    The commit window now carries ``commit_rounds + 1`` copies per link.
    """

    def coord_drop_plan(self, max_drops, victim=3):
        return FaultPlan(
            links=(
                LinkFaults(
                    drop_prob=1.0, max_drops=max_drops, dst=victim, kinds=("ree_coord",)
                ),
            ),
            detector=DetectorSpec(lag=1),
        )

    @pytest.mark.parametrize("max_drops", [1, 2, 4])
    def test_coord_drop_burst_recovers(self, max_drops):
        result = SyncNetwork(
            16,
            lambda: ReElectionElection(inner="afek_gafni", commit_rounds=4),
            seed=0,
            faults=self.coord_drop_plan(max_drops),
        ).run()
        assert result.unique_leader
        assert result.elected_id == 16
        assert result.decided_count == 16
        assert result.fault_metrics.dropped_messages == max_drops

    def test_retransmits_are_bounded(self):
        # Fault-free run: the coord traffic is (commit_rounds + 1) copies
        # per survivor link, not an unbounded stream.
        net = SyncNetwork(
            8, lambda: ReElectionElection(inner="afek_gafni", commit_rounds=3), seed=0
        )
        result = net.run()
        assert result.unique_leader
        assert result.metrics.messages_by_kind["ree_coord"] == (3 + 1) * 7

    def test_unbounded_adversary_still_wedges(self):
        # Losing *every* copy is beyond the bounded guarantee — the run
        # must fail loudly (limit exceeded), not silently mis-elect.
        with pytest.raises(SimulationLimitExceeded):
            SyncNetwork(
                16,
                lambda: ReElectionElection(inner="afek_gafni", commit_rounds=4),
                seed=0,
                faults=self.coord_drop_plan(max_drops=None),
                max_rounds=300,
            ).run()

    def test_drop_after_frontrunner_kill(self):
        # Epoch 2's commit succeeds even when its first coord copy into
        # the victim is dropped after a leader kill forced a re-election.
        plan = FaultPlan(
            policies=(LeaderKillPolicy(kinds=("ree_coord",), delay=1, max_kills=1),),
            links=(
                LinkFaults(drop_prob=1.0, max_drops=2, dst=5, kinds=("ree_coord",)),
            ),
            detector=DetectorSpec(lag=1),
        )
        report = run_failover_trial(
            "sync",
            24,
            lambda: ReElectionElection(inner="afek_gafni", commit_rounds=4),
            plan,
            seed=2,
        )
        assert report.crashes == 1
        assert report.unique_surviving_leader
        assert report.surviving_leader_id == 23

    def test_async_commit_survives_coord_drop(self):
        plan = FaultPlan(
            links=(
                LinkFaults(drop_prob=1.0, max_drops=2, dst=3, kinds=("ree_coord",)),
            ),
            detector=DetectorSpec(lag=1.0),
        )
        result = AsyncNetwork(
            16,
            lambda: AsyncReElectionElection(
                inner="async_tradeoff", commit_delay=4.0, poll_interval=0.5
            ),
            seed=1,
            wake_times={u: 0.0 for u in range(16)},
            max_events=2_000_000,
            faults=plan,
        ).run()
        assert result.unique_leader
        assert result.decided_count == 16
        assert result.fault_metrics.dropped_messages >= 1


class TestAsyncReElection:
    def test_fault_free(self):
        result = AsyncNetwork(
            32,
            lambda: AsyncReElectionElection(inner="async_tradeoff"),
            seed=0,
            wake_times={0: 0.0},
            max_events=2_000_000,
        ).run()
        assert result.unique_leader

    def test_frontrunner_kill_reelects_survivor(self):
        report = run_failover_trial(
            "async",
            32,
            lambda: AsyncReElectionElection(
                inner="async_tradeoff", commit_delay=4.0, poll_interval=0.5
            ),
            KILL_ASYNC,
            seed=3,
            wake_times={0: 0.0},
            max_events=2_000_000,
        )
        assert report.crashes == 1
        assert report.unique_surviving_leader
        assert report.reelection_time is not None and report.reelection_time > 0
        assert report.detection_latencies and report.detection_latencies[0] >= 1.0

    def test_all_awake_with_kill(self):
        report = run_failover_trial(
            "async",
            24,
            lambda: AsyncReElectionElection(
                inner="async_tradeoff", commit_delay=4.0, poll_interval=0.5
            ),
            KILL_ASYNC,
            seed=6,
            wake_times={u: 0.0 for u in range(24)},
            max_events=2_000_000,
        )
        assert report.crashes == 1
        assert report.unique_surviving_leader

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            AsyncReElectionElection(commit_delay=0)
        with pytest.raises(ValueError):
            AsyncReElectionElection(poll_interval=-1)
