"""FaultPlan model: validation and runtime crash bookkeeping."""

import pytest

from repro.faults import (
    CrashFault,
    DetectorSpec,
    FaultPlan,
    FaultRuntime,
    LeaderKillPolicy,
    LinkFaults,
)


class TestPlanValidation:
    def test_crash_fault_bounds(self):
        with pytest.raises(ValueError):
            CrashFault(node=-1, at=1)
        with pytest.raises(ValueError):
            CrashFault(node=0, at=-0.5)

    def test_duplicate_crash_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            FaultPlan(crashes=(CrashFault(0, 1), CrashFault(0, 2)))

    def test_protected_node_cannot_be_scheduled(self):
        with pytest.raises(ValueError, match="protected"):
            FaultPlan(crashes=(CrashFault(0, 1),), protect=(0,))

    def test_link_rule_must_do_something(self):
        with pytest.raises(ValueError):
            LinkFaults()

    def test_link_probabilities_in_range(self):
        with pytest.raises(ValueError):
            LinkFaults(drop_prob=1.5)

    def test_policy_delay_positive(self):
        with pytest.raises(ValueError):
            LeaderKillPolicy(delay=0)

    def test_max_drops_validation(self):
        with pytest.raises(ValueError, match="max_drops"):
            LinkFaults(drop_prob=1.0, max_drops=0)
        with pytest.raises(ValueError, match="drop_prob"):
            LinkFaults(duplicate_prob=1.0, max_drops=2)

    def test_detector_spec_validation(self):
        with pytest.raises(ValueError):
            DetectorSpec(kind="psychic")
        with pytest.raises(ValueError):
            DetectorSpec(kind="perfect", false_prob=0.5)
        with pytest.raises(ValueError):
            DetectorSpec(kind="eventually_perfect", false_prob=0.5)  # no horizon

    def test_validate_for_checks_indices(self):
        plan = FaultPlan(crashes=(CrashFault(9, 1),))
        with pytest.raises(ValueError, match="out of range"):
            plan.validate_for(4)

    def test_cannot_crash_everyone(self):
        plan = FaultPlan(crashes=tuple(CrashFault(u, 1) for u in range(4)))
        with pytest.raises(ValueError, match="every node"):
            plan.validate_for(4)


class TestRuntime:
    def make(self, plan, n=8):
        return FaultRuntime(plan, n, list(range(1, n + 1)), seed=0)

    def test_due_crashes_pop_in_order(self):
        plan = FaultPlan(crashes=(CrashFault(2, 3), CrashFault(1, 1)))
        rt = self.make(plan)
        assert rt.due_crashes(1) == [1]
        assert rt.due_crashes(2) == []
        assert rt.due_crashes(5) == [2]

    def test_last_survivor_is_protected(self):
        rt = self.make(FaultPlan(), n=2)
        assert rt.approve_crash(0)
        rt.note_crash(0, 1)
        assert not rt.approve_crash(1)
        assert rt.metrics.suppressed_crashes == 1

    def test_protect_list_respected(self):
        rt = self.make(FaultPlan(protect=(3,)))
        assert not rt.approve_crash(3)

    def test_policy_kill_fires_once_per_target(self):
        plan = FaultPlan(policies=(LeaderKillPolicy(kinds=("leader",), delay=2),))
        rt = self.make(plan)
        assert rt.observe_send(5, 4, "leader") == [(7, 4)]
        assert rt.observe_send(6, 4, "leader") == []  # already marked
        assert rt.observe_send(6, 5, "leader") == []  # max_kills exhausted
        assert rt.metrics.policy_kills == [(7, 4, "leader")]

    def test_policy_ignores_other_kinds(self):
        plan = FaultPlan(policies=(LeaderKillPolicy(kinds=("leader",), delay=1),))
        rt = self.make(plan)
        assert rt.observe_send(1, 0, "compete") == []

    def test_link_outcomes_deterministic_per_seed(self):
        plan = FaultPlan(links=(LinkFaults(drop_prob=0.5),))
        outcomes = []
        for _ in range(2):
            rt = self.make(plan)
            outcomes.append([rt.deliveries(0, 1, "x") for _ in range(64)])
        assert outcomes[0] == outcomes[1]
        assert 0 in outcomes[0] and 1 in outcomes[0]

    def test_link_rule_scoping(self):
        plan = FaultPlan(links=(LinkFaults(drop_prob=1.0, src=0, kinds=("a",)),))
        rt = self.make(plan)
        assert rt.deliveries(0, 1, "a") == 0
        assert rt.deliveries(1, 0, "a") == 1  # wrong src
        assert rt.deliveries(0, 1, "b") == 1  # wrong kind
        assert rt.metrics.dropped_messages == 1

    def test_max_drops_budget_exhausts(self):
        plan = FaultPlan(links=(LinkFaults(drop_prob=1.0, max_drops=2, kinds=("a",)),))
        rt = self.make(plan)
        assert rt.deliveries(0, 1, "a") == 0
        assert rt.deliveries(2, 1, "a") == 0
        # Budget spent: the rule still claims the message but delivers it.
        assert rt.deliveries(0, 1, "a") == 1
        assert rt.metrics.dropped_messages == 2

    def test_max_drops_can_still_duplicate_after_budget(self):
        plan = FaultPlan(
            links=(LinkFaults(drop_prob=1.0, duplicate_prob=1.0, max_drops=1),)
        )
        rt = self.make(plan)
        assert rt.deliveries(0, 1, "x") == 0
        assert rt.deliveries(0, 1, "x") == 2

    def test_duplication_counted(self):
        plan = FaultPlan(links=(LinkFaults(duplicate_prob=1.0),))
        rt = self.make(plan)
        assert rt.deliveries(0, 1, "x") == 2
        assert rt.metrics.duplicated_messages == 1
