"""Power-law fitting (repro.analysis.fit)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import fit_polylog, fit_power_law
from repro.analysis.fit import local_exponents


class TestFitPowerLaw:
    def test_recovers_exact_power_law(self):
        xs = [2**i for i in range(5, 12)]
        ys = [3.5 * x**1.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.5, abs=1e-9)
        assert fit.coefficient == pytest.approx(3.5, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_power_law([10, 100, 1000], [20, 200, 2000])
        assert fit.predict(500) == pytest.approx(1000, rel=1e-6)

    def test_noisy_data_reasonable(self):
        xs = [2**i for i in range(6, 14)]
        ys = [x**2 * (1 + 0.05 * ((i * 37) % 7 - 3) / 3) for i, x in enumerate(xs)]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(2.0, abs=0.05)
        assert fit.r_squared > 0.99

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2, 0], [1, 2, 3])
        with pytest.raises(ValueError):
            fit_power_law([1, 2, 3], [1, -2, 3])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            fit_power_law([10], [100])

    def test_rejects_constant_x(self):
        with pytest.raises(ValueError):
            fit_power_law([5, 5, 5], [1, 2, 3])

    @given(
        st.floats(0.2, 3.0),
        st.floats(0.1, 100.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, exponent, coefficient):
        xs = [10.0, 100.0, 1000.0, 10000.0]
        ys = [coefficient * x**exponent for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(exponent, abs=1e-6)

    def test_str_contains_exponent(self):
        fit = fit_power_law([10, 100], [10, 1000])
        assert "n^2.000" in str(fit)


class TestFitPolylog:
    def test_removes_log_factor(self):
        xs = [2**i for i in range(6, 14)]
        ys = [x**0.5 * math.log2(x) ** 1.5 for x in xs]
        plain = fit_power_law(xs, ys)
        corrected = fit_polylog(xs, ys, log_power=1.5)
        # The plain fit over-estimates the exponent; the corrected fit
        # recovers 0.5 exactly.
        assert plain.exponent > 0.6
        assert corrected.exponent == pytest.approx(0.5, abs=1e-9)
        assert corrected.log_power == 1.5

    def test_predict_includes_log(self):
        xs = [2**i for i in range(6, 12)]
        ys = [7 * x * math.log2(x) for x in xs]
        fit = fit_polylog(xs, ys, log_power=1.0)
        assert fit.predict(4096) == pytest.approx(7 * 4096 * 12, rel=1e-6)


class TestLocalExponents:
    def test_constant_for_pure_power(self):
        xs = [10, 100, 1000]
        ys = [x**1.3 for x in xs]
        slopes = local_exponents(xs, ys)
        assert all(s == pytest.approx(1.3) for s in slopes)

    def test_detects_drift(self):
        xs = [2**i for i in range(4, 12)]
        ys = [x * math.log2(x) for x in xs]  # exponent drifts toward 1
        slopes = local_exponents(xs, ys)
        assert slopes == sorted(slopes, reverse=True)
        assert all(s > 1.0 for s in slopes)
