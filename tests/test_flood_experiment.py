"""The Theorem 3.8 flood probe (repro.lowerbound.flood_experiment)."""

import pytest

from repro.lowerbound.flood_experiment import (
    FloodProtocol,
    flood_rounds_to_majority,
    flood_sweep,
)


class TestFloodProtocol:
    def test_rejects_zero_budget(self):
        with pytest.raises(ValueError):
            FloodProtocol(0, 8)

    def test_spends_exact_budget_per_round(self):
        from repro.sync.engine import SyncNetwork

        n, f, rounds = 32, 3, 4
        net = SyncNetwork(n, lambda: FloodProtocol(f, rounds), seed=0)
        result = net.run()
        # every node sends f messages per round for `rounds` rounds
        assert result.messages == n * f * rounds
        for r in range(1, rounds + 1):
            assert result.metrics.sends_by_round[r] == n * f

    def test_stops_at_port_exhaustion(self):
        from repro.sync.engine import SyncNetwork

        n = 8
        net = SyncNetwork(n, lambda: FloodProtocol(100, 3), seed=0)
        result = net.run()
        assert result.messages == n * (n - 1)  # all ports once


class TestRoundsToMajority:
    def test_measured_at_least_floor(self):
        out = flood_rounds_to_majority(128, 8)
        assert out.rounds_to_majority is not None
        assert out.rounds_to_majority >= out.theorem_floor

    def test_curve_decreasing_in_budget(self):
        outcomes = flood_sweep(128, [4, 16, 64])
        rounds = [o.rounds_to_majority for o in outcomes]
        assert all(r is not None for r in rounds)
        assert rounds[0] > rounds[1] > rounds[2]

    def test_full_budget_needs_two_rounds(self):
        # f = n-1: everything connects almost immediately, but the floor
        # (and connectivity arithmetic) still require at least 2 rounds'
        # worth of edges to bind a majority through the adversary.
        out = flood_rounds_to_majority(64, 63)
        assert out.rounds_to_majority is not None
        assert out.rounds_to_majority <= 3

    def test_trace_attached(self):
        out = flood_rounds_to_majority(64, 8)
        assert out.trace.largest_by_round
        assert out.messages > 0

    @pytest.mark.slow
    def test_linear_growth_regime(self):
        """The insight the probe surfaces: against capacity-first
        routing, uniform flooding grows the largest component roughly
        linearly (~f per round), not by the 2f factor per round the
        block adversary of the proof concedes."""
        n, f = 256, 8
        out = flood_rounds_to_majority(n, f)
        assert out.rounds_to_majority is not None
        # Far above the logarithmic floor: at least ~n/(4f) rounds.
        assert out.rounds_to_majority >= n / (2 * f) / 4
