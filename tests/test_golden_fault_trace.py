"""Golden pin of a *faulted* fast-engine trace, diffed against its twin.

``tests/data/golden_trace_partition_heal_fast_n64.jsonl`` was recorded
with::

    python -m repro trace record improved_tradeoff --n 64 --engine fast \
        --partition 32@2-4 --param ell=11 --seed 0 -o <golden>

i.e. a 64-node run whose bisection is cut for rounds [2, 4) and healed
afterwards — the vectorized fault runtime blocks the cross-component
traffic, demotes the starved frontrunners, and the post-heal survivors
still elect.  Two pins:

* re-recording the same CLI invocation must reproduce the golden file
  byte for byte (the vectorized fault path is deterministic end to end);
* the object-engine twin of the same run — same IDs, same seed, same
  fault plan, and the *shared port matrix* from the fast engine (the
  twin contract) — must satisfy ``repro trace diff`` with exit 0: the
  aggregate fast trace and the per-message object trace agree on every
  per-round send total and on the per-kind message census.
"""

import os
import random

import pytest

pytest.importorskip("numpy")

from repro.__main__ import _ids_for, main  # noqa: E402
from repro.core.registry import get_algorithm  # noqa: E402
from repro.faults import FaultPlan, PartitionMask  # noqa: E402
from repro.fastsync import FastSyncNetwork, get_fast_algorithm  # noqa: E402
from repro.sync.engine import SyncNetwork  # noqa: E402
from repro.telemetry import JsonlRecorder, RunContext, load_trace  # noqa: E402

GOLDEN = os.path.join(
    os.path.dirname(__file__), "data", "golden_trace_partition_heal_fast_n64.jsonl"
)
N = 64
SEED = 0
PARAMS = {"ell": 11}
PLAN = FaultPlan(
    partitions=(
        PartitionMask(
            components=(tuple(range(32)), tuple(range(32, N))), start=2, end=4
        ),
    )
)


def record_cli_args(out):
    return [
        "trace", "record", "improved_tradeoff", "--n", str(N),
        "--engine", "fast", "--partition", "32@2-4",
        "--param", "ell=11", "--seed", str(SEED), "-o", out,
    ]


class TestGoldenFaultedTrace:
    def test_cli_rerecord_matches_golden_bytes(self, tmp_path):
        out = str(tmp_path / "fresh.jsonl")
        assert main(record_cli_args(out)) == 0
        with open(out) as fh:
            fresh = fh.read()
        with open(GOLDEN) as fh:
            golden = fh.read()
        assert fresh == golden

    def test_golden_is_loadable_and_sane(self):
        trace = load_trace(GOLDEN)
        assert trace.run_context.algorithm == "improved_tradeoff"
        assert trace.run_context.n == N
        assert trace.run_context.engine == "fast"
        assert len(trace.of_kind("round")) > 4  # the run outlived the heal
        assert len(trace.of_kind("decide")) == 1

    def test_object_twin_diffs_clean(self, tmp_path, capsys):
        # The object twin runs the same plan over the fast engine's port
        # matrix (the twin contract); its per-message trace must carry
        # the same per-round send totals and kind census as the golden
        # aggregate trace.
        ids = _ids_for("improved_tradeoff", N, PARAMS, random.Random(f"cli:{N}:{SEED}"))
        fast_net = FastSyncNetwork(N, ids=ids, seed=SEED, mode="exact", faults=PLAN)
        result = fast_net.run(get_fast_algorithm("improved_tradeoff")(**PARAMS))
        assert result.fault_metrics.partition_blocked > 0

        twin_path = str(tmp_path / "object_twin.jsonl")
        recorder = JsonlRecorder(
            twin_path,
            context=RunContext(
                algorithm="improved_tradeoff", n=N, seed=SEED,
                engine="sync", params=PARAMS,
            ),
        )
        spec = get_algorithm("improved_tradeoff")
        net = SyncNetwork(
            N,
            lambda: spec.factory(**PARAMS),
            ids=ids,
            seed=SEED,
            port_map=fast_net.port_map(),
            faults=PLAN,
            recorder=recorder,
        )
        net.run()
        recorder.close()

        assert [net.ids[u] for u in net.leaders] == result.leader_ids
        assert main(["trace", "diff", GOLDEN, twin_path]) == 0
        assert "traces agree" in capsys.readouterr().out


class TestPartitionFlagValidation:
    def test_cut_out_of_range_rejected(self, tmp_path):
        out = str(tmp_path / "x.jsonl")
        args = record_cli_args(out)
        args[args.index("32@2-4")] = "64@2-4"
        with pytest.raises(SystemExit, match="cut must be in"):
            main(args)

    def test_malformed_spec_rejected(self, tmp_path):
        out = str(tmp_path / "x.jsonl")
        args = record_cli_args(out)
        args[args.index("32@2-4")] = "half"
        with pytest.raises(SystemExit):
            main(args)

    def test_sync_engine_accepts_the_flag(self, tmp_path):
        # The flag is engine-agnostic: the object engines run the same
        # plan through FaultRuntime (their own port draw, so counters
        # differ from the golden — the twin diff above shares ports).
        out = str(tmp_path / "sync_part.jsonl")
        args = record_cli_args(out)
        args[args.index("fast")] = "sync"
        assert main(args) == 0
        trace = load_trace(out)
        assert trace.run_context.engine == "sync"
        assert len(trace.of_kind("send")) > 0
