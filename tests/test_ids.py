"""ID universes and assignments (repro.ids)."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.ids import (
    IdUniverse,
    assign_adversarial_spread,
    assign_contiguous,
    assign_random,
    log_universe_size,
    small_universe,
    time_bounded_universe,
    tradeoff_universe,
    validate_assignment,
)


class TestIdUniverse:
    def test_size(self):
        assert IdUniverse(1, 10).size == 10

    def test_membership(self):
        u = IdUniverse(5, 9)
        assert 5 in u and 9 in u
        assert 4 not in u and 10 not in u

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IdUniverse(3, 2)

    def test_sample_distinct(self):
        u = IdUniverse(1, 100)
        ids = u.sample(50, random.Random(0))
        assert len(set(ids)) == 50
        assert all(i in u for i in ids)

    def test_sample_too_many(self):
        with pytest.raises(ValueError):
            IdUniverse(1, 5).sample(6, random.Random(0))


class TestUniverseConstructors:
    def test_tradeoff_universe_size(self):
        # Theorem 3.8 needs >= 2 n log2 n + n.
        n = 1024
        u = tradeoff_universe(n)
        assert u.size >= 2 * n * math.log2(n) + n - 1

    def test_tradeoff_universe_rejects_tiny(self):
        with pytest.raises(ValueError):
            tradeoff_universe(1)

    def test_small_universe(self):
        u = small_universe(100, g=3)
        assert u.lo == 1 and u.hi == 300

    def test_small_universe_rejects_nonpositive_g(self):
        with pytest.raises(ValueError):
            small_universe(10, g=0)

    def test_time_bounded_universe_small_case(self):
        u = time_bounded_universe(16, 2)
        # size n * log2(n) * T^(log2 n - 1) = 16*4*2^3 = 512
        assert u.size >= 512

    def test_time_bounded_universe_overflows(self):
        with pytest.raises(OverflowError):
            time_bounded_universe(1 << 16, 1 << 16)

    def test_log_universe_size(self):
        assert log_universe_size(IdUniverse(1, 1024)) == 10.0


class TestAssignments:
    def test_random_assignment_valid(self):
        u = tradeoff_universe(64)
        ids = assign_random(u, 64, random.Random(1))
        validate_assignment(ids, u)

    def test_spread_assignment_monotone_distinct(self):
        u = IdUniverse(1, 1000)
        ids = assign_adversarial_spread(u, 100)
        assert ids == sorted(ids)
        assert len(set(ids)) == 100
        assert ids[0] == 1 and ids[-1] == 1000

    def test_spread_single(self):
        assert assign_adversarial_spread(IdUniverse(7, 20), 1) == [7]

    def test_spread_full_universe(self):
        u = IdUniverse(1, 10)
        assert assign_adversarial_spread(u, 10) == list(range(1, 11))

    def test_contiguous(self):
        u = small_universe(10, g=2)
        assert assign_contiguous(u, 5, offset=3) == [4, 5, 6, 7, 8]

    def test_contiguous_overflow(self):
        with pytest.raises(ValueError):
            assign_contiguous(IdUniverse(1, 10), 8, offset=5)

    def test_validate_rejects_duplicates(self):
        with pytest.raises(ValueError):
            validate_assignment([1, 2, 2])

    def test_validate_rejects_outside(self):
        with pytest.raises(ValueError):
            validate_assignment([1, 99], IdUniverse(1, 10))

    @given(st.integers(2, 200), st.integers(0, 5))
    def test_spread_always_valid(self, n, seed):
        u = tradeoff_universe(max(n, 2))
        ids = assign_adversarial_spread(u, n)
        validate_assignment(ids, u)
