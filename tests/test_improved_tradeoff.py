"""Theorem 3.10 algorithm (repro.core.improved_tradeoff)."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ImprovedTradeoffElection
from repro.lowerbound import bounds
from repro.net.ports import CanonicalPortMap, LazyPortMap, SequentialPortPolicy

from tests.helpers import make_ids, run_sync


class TestParameters:
    def test_rejects_even_ell(self):
        with pytest.raises(ValueError):
            ImprovedTradeoffElection(ell=4)

    def test_rejects_small_ell(self):
        with pytest.raises(ValueError):
            ImprovedTradeoffElection(ell=1)

    def test_k_derivation(self):
        assert ImprovedTradeoffElection(ell=3).k == 3
        assert ImprovedTradeoffElection(ell=9).k == 6

    def test_referee_counts_monotone(self):
        algo = ImprovedTradeoffElection(ell=9)  # k = 6, iterations 1..4
        counts = [algo.referee_count(4096, i) for i in range(1, 5)]
        assert counts == sorted(counts)
        assert counts[0] >= 4096 ** (1 / 5) - 1

    def test_referee_count_capped(self):
        algo = ImprovedTradeoffElection(ell=3)
        assert algo.referee_count(4, 1) <= 3


class TestCorrectness:
    @pytest.mark.parametrize("ell", [3, 5, 7, 9])
    @pytest.mark.parametrize("n", [2, 3, 17, 64, 100])
    def test_max_id_always_elected(self, ell, n):
        ids = make_ids(n, seed=ell)
        result = run_sync(n, lambda: ImprovedTradeoffElection(ell=ell), ids=ids, seed=5)
        assert result.unique_leader
        assert result.elected_id == max(ids)

    @pytest.mark.parametrize("ell", [3, 5])
    def test_all_nodes_decide_and_agree(self, ell):
        result = run_sync(60, lambda: ImprovedTradeoffElection(ell=ell), seed=2)
        assert result.decided_count == 60
        assert result.explicit_agreement()

    def test_exact_round_count(self):
        for ell in (3, 5, 7):
            result = run_sync(64, lambda: ImprovedTradeoffElection(ell=ell), seed=1)
            assert result.last_send_round == ell

    def test_no_dropped_messages(self):
        result = run_sync(64, lambda: ImprovedTradeoffElection(ell=5), seed=1)
        assert result.dropped_deliveries == 0

    def test_works_under_canonical_ports(self):
        n = 50
        result = run_sync(
            n, lambda: ImprovedTradeoffElection(ell=5), port_map=CanonicalPortMap(n)
        )
        assert result.unique_leader and result.elected_id == n

    def test_works_under_sequential_adversarial_ports(self):
        n = 50
        pm = LazyPortMap(n, SequentialPortPolicy())
        result = run_sync(n, lambda: ImprovedTradeoffElection(ell=3), port_map=pm)
        assert result.unique_leader and result.elected_id == n

    @given(st.integers(2, 80), st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_unique_leader_property(self, n, seed):
        ids = make_ids(n, seed=seed)
        result = run_sync(n, lambda: ImprovedTradeoffElection(ell=5), ids=ids, seed=seed)
        assert result.unique_leader
        assert result.elected_id == max(ids)
        assert result.decided_count == n


class TestComplexity:
    @pytest.mark.parametrize("ell", [3, 5, 7])
    def test_messages_within_paper_bound(self, ell):
        for n in (64, 256, 1024):
            result = run_sync(n, lambda: ImprovedTradeoffElection(ell=ell), seed=0)
            bound = bounds.thm310_messages(n, ell)
            # The theorem's O() hides a small constant; 2x covers the
            # compete+response pairs.
            assert result.messages <= 2 * bound, (n, ell, result.messages, bound)

    def test_messages_above_thm38_floor(self):
        # Sanity: the lower bound (which the algorithm nearly matches)
        # cannot exceed what the algorithm actually sends by more than
        # the gap the paper allows.
        n = 1024
        for ell in (3, 5):
            k_rounds = ell
            result = run_sync(n, lambda: ImprovedTradeoffElection(ell=ell), seed=0)
            lb = bounds.thm38_message_lb(n, k_rounds)
            # LB(messages for ell rounds) <= measured (LB is a true floor).
            assert result.messages >= lb / (4 * ell), (result.messages, lb)

    def test_more_rounds_fewer_messages(self):
        n = 1024
        msgs = [
            run_sync(n, lambda: ImprovedTradeoffElection(ell=ell), seed=0).messages
            for ell in (3, 5, 9)
        ]
        assert msgs[0] > msgs[1] > msgs[2]

    def test_round1_message_count_exact(self):
        # Round 1: all n survivors contact ceil(n^(1/(k-1))) referees.
        n = 256
        algo = ImprovedTradeoffElection(ell=5)  # k = 4
        m1 = algo.referee_count(n, 1)
        result = run_sync(n, lambda: ImprovedTradeoffElection(ell=5), seed=0)
        assert result.metrics.sends_by_round[1] == n * m1


class TestDeterminism:
    def test_identical_given_fixed_ports(self):
        n = 64
        r1 = run_sync(n, lambda: ImprovedTradeoffElection(ell=5), port_map=CanonicalPortMap(n))
        r2 = run_sync(n, lambda: ImprovedTradeoffElection(ell=5), port_map=CanonicalPortMap(n))
        assert r1.messages == r2.messages
        assert r1.leaders == r2.leaders

    def test_port_mapping_does_not_change_winner(self):
        n = 40
        ids = make_ids(n, seed=3)
        winners = set()
        for seed in range(5):
            result = run_sync(n, lambda: ImprovedTradeoffElection(ell=3), ids=ids, seed=seed)
            winners.add(result.elected_id)
        assert winners == {max(ids)}


class TestSurvivorInvariant:
    """The counting argument behind Theorem 3.10: at most n/m_i survivors
    outlive iteration i, because each one needs all of its m_i referees
    and a referee answers at most one compete per iteration."""

    @pytest.mark.parametrize("ell", [5, 7, 9])
    def test_survivor_decay_bound(self, ell):
        n = 512
        algo = ImprovedTradeoffElection(ell=ell)
        result = run_sync(n, lambda: ImprovedTradeoffElection(ell=ell), seed=1)
        survivors = n
        for i in range(1, algo.k - 1):
            m_i = algo.referee_count(n, i)
            compete_round = 2 * i - 1
            sent = result.metrics.sends_by_round.get(compete_round, 0)
            entering = sent // m_i
            assert sent % m_i == 0  # everyone sends exactly m_i competes
            assert entering <= survivors, (ell, i)
            # the paper's bound on who can survive iteration i-1:
            survivors = max(1, n // m_i)
        # final broadcast round: the remaining survivors, at most n/m_{k-2}
        final_round = 2 * algo.k - 3
        finalists = result.metrics.sends_by_round[final_round] // (n - 1)
        assert finalists <= max(1, n // algo.referee_count(n, algo.k - 2))

    def test_response_count_at_most_referee_count(self):
        # A referee answers at most one compete per iteration, so
        # responses in round 2i never exceed the distinct referees.
        n = 256
        result = run_sync(n, lambda: ImprovedTradeoffElection(ell=5), seed=2)
        for r, count in result.metrics.sends_by_round.items():
            if r % 2 == 0:  # response rounds
                assert count <= n, (r, count)
