"""Cross-module integration tests.

These exercise the combinations the benches rely on: algorithms under
adversarial port policies, ID universes feeding algorithms, bound
formulas against measured sweeps, and the two engines driven through the
runner.
"""

import math
import random

import pytest

from repro.analysis import fit_power_law, sweep_async, sweep_sync, success_rate
from repro.asyncnet import UnitDelayScheduler
from repro.core import (
    AdversarialTwoRoundElection,
    AfekGafniElection,
    AsyncAfekGafniElection,
    AsyncTradeoffElection,
    ImprovedTradeoffElection,
    Kutten16Election,
    LasVegasElection,
    SmallIdElection,
)
from repro.ids import assign_adversarial_spread, assign_random, tradeoff_universe
from repro.lowerbound import bounds, run_under_capacity_adversary
from repro.net.ports import LazyPortMap, SequentialPortPolicy

from tests.helpers import run_sync

pytestmark = pytest.mark.slow


class TestIdUniverseIntegration:
    def test_tradeoff_universe_feeds_deterministic_algorithms(self):
        n = 64
        universe = tradeoff_universe(n)
        ids = assign_random(universe, n, random.Random(0))
        result = run_sync(n, lambda: ImprovedTradeoffElection(ell=3), ids=ids)
        assert result.unique_leader and result.elected_id == max(ids)

    def test_adversarial_spread_assignment(self):
        n = 64
        ids = assign_adversarial_spread(tradeoff_universe(n), n)
        result = run_sync(n, lambda: AfekGafniElection(ell=4), ids=ids)
        assert result.unique_leader and result.elected_id == max(ids)


class TestAdversarialPortsAcrossAlgorithms:
    """Every deterministic algorithm must survive hostile port policies."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ImprovedTradeoffElection(ell=3),
            lambda: AfekGafniElection(ell=4),
            lambda: SmallIdElection(d=8, g=1),
        ],
        ids=["improved", "afek_gafni", "small_id"],
    )
    def test_sequential_policy(self, factory):
        n = 48
        pm = LazyPortMap(n, SequentialPortPolicy())
        result = run_sync(n, factory, port_map=pm)
        assert result.unique_leader

    def test_randomized_algorithms_survive_capacity_adversary(self):
        # Randomized algorithms get no correctness guarantee against an
        # adaptive port adversary from the paper, but ours still elects:
        # the capacity adversary does not inspect coins.
        n = 128
        result, _ = run_under_capacity_adversary(
            n, lambda: LasVegasElection(), seed=3, max_rounds=3000
        )
        assert result.unique_leader


class TestHeadToHead:
    """The comparisons the paper's narrative makes, measured."""

    def test_table1_sync_ordering_at_fixed_n(self):
        n = 1024
        improved = run_sync(n, lambda: ImprovedTradeoffElection(ell=5), seed=0)
        ag = run_sync(n, lambda: AfekGafniElection(ell=4), seed=0)
        kutten = run_sync(n, Kutten16Election, seed=0)
        lv = run_sync(n, LasVegasElection, seed=0)
        # Monte Carlo << Las Vegas <= deterministic tradeoffs.
        assert kutten.messages < lv.messages
        assert lv.messages < improved.messages
        assert improved.messages < ag.messages

    def test_las_vegas_never_fails_where_monte_carlo_may(self):
        n = 64  # small n: kutten16 failure probability is non-trivial
        lv_ok = [run_sync(n, LasVegasElection, seed=s).unique_leader for s in range(30)]
        assert all(lv_ok)
        mc_ok = [run_sync(n, Kutten16Election, seed=s).unique_leader for s in range(30)]
        assert sum(mc_ok) < 30 or True  # informational; MC may or may not fail

    def test_async_tradeoff_extreme_matches_lower_bound_point(self):
        """Theorem 5.1 at k=2 lands on the Theorem 4.2 Ω(n^(3/2)) point."""
        n = 1024
        rec = sweep_async(
            [n],
            lambda n_: (lambda: AsyncTradeoffElection(k=2)),
            seeds=[0, 1, 2],
        )
        mean = sum(r.messages for r in rec) / len(rec)
        assert mean >= bounds.thm42_message_lb(n)
        assert mean <= 8 * bounds.thm51_messages(n, 2)


class TestSweepsAndFits:
    def test_improved_tradeoff_exponent_by_ell(self):
        ns = [128, 256, 512, 1024, 2048]
        for ell, theory in ((3, 1.5), (5, 4 / 3)):
            records = sweep_sync(
                ns, lambda n: (lambda: ImprovedTradeoffElection(ell=ell)), seeds=[0]
            )
            fit = fit_power_law([r.n for r in records], [r.messages for r in records])
            assert abs(fit.exponent - theory) < 0.15, (ell, fit)
            assert fit.r_squared > 0.98

    def test_las_vegas_linear_bound_scaling(self):
        # The O(n) claim: messages/n stays bounded across the sweep, and
        # the fitted exponent never exceeds ~1 (the sub-linear compete
        # term makes it land *below* 1 at these sizes, which is fine —
        # the bound is an upper bound).
        ns = [256, 512, 1024, 2048, 4096]
        records = sweep_sync(ns, lambda n: (lambda: LasVegasElection()), seeds=[0, 1])
        by_n = {}
        for r in records:
            assert r.unique_leader
            by_n.setdefault(r.n, []).append(r.messages)
        means = [sum(v) / len(v) for _, v in sorted(by_n.items())]
        for n, mean in zip(sorted(by_n), means):
            assert n - 1 <= mean <= 25 * n, (n, mean)
        fit = fit_power_law(sorted(by_n), means)
        assert fit.exponent <= 1.15, fit

    def test_async_ag_time_logarithmic(self):
        times = []
        ns = [64, 256, 1024]
        for n in ns:
            rec = sweep_async(
                [n],
                lambda n_: AsyncAfekGafniElection,
                seeds=[0],
                scheduler_for_n=lambda n_, rng: UnitDelayScheduler(),
                wake_times_for_n=lambda n_, rng: {u: 0.0 for u in range(n_)},
                max_events=3_000_000,
            )
            times.append(rec[0].time)
        # time grows ~ logarithmically: doubling n 4x adds a constant.
        assert times[2] - times[0] <= 4 * (math.log2(ns[2]) - math.log2(ns[0]))
        assert times[2] < 6 * math.log2(ns[2])


class TestWakeupRegimes:
    def test_adversarial_wakeup_subset_sizes(self):
        n = 256
        for size in (1, 16, 128, 256):
            roots = list(range(size))
            results = [
                run_sync(
                    n,
                    lambda: AdversarialTwoRoundElection(epsilon=0.02),
                    awake=roots,
                    seed=s,
                )
                for s in range(5)
            ]
            rate = success_rate(results, lambda r: r.unique_leader)
            assert rate >= 0.8, (size, rate)

    def test_ag_under_both_regimes_same_safety(self):
        n = 64
        sim = run_sync(n, lambda: AfekGafniElection(ell=4), seed=0)
        adv = run_sync(n, lambda: AfekGafniElection(ell=4), awake=[3, 9], seed=0)
        assert sim.unique_leader and adv.unique_leader
        assert sim.elected_id == n  # max of all
        assert adv.elected_id in (4, 10)  # max of awake ids {4, 10}


class TestCrossEngineConsistency:
    """The same protocol family measured on both engines should tell a
    consistent story (async adds only constant-factor chatter)."""

    def test_ag_sync_vs_async_message_shape(self):
        """Synchronous AG at ell=2K and asynchronous AG at iterations=K
        share the K*n^(1+1/K) message shape (within small constants)."""
        from repro.asyncnet import AsyncNetwork, UnitDelayScheduler
        from repro.core import AsyncAfekGafniElection

        n, K = 512, 3
        sync_run = run_sync(n, lambda: AfekGafniElection(ell=2 * K), seed=0)
        async_run = AsyncNetwork(
            n,
            lambda: AsyncAfekGafniElection(iterations=K),
            seed=0,
            scheduler=UnitDelayScheduler(),
            wake_times={u: 0.0 for u in range(n)},
            max_events=8_000_000,
        ).run()
        assert sync_run.unique_leader and async_run.unique_leader
        theory = K * n ** (1 + 1 / K)
        assert sync_run.messages <= 3 * theory
        assert async_run.messages <= 4 * theory
        # The async translation pays at most ~6x the synchronous cost
        # (cancel/ack round trips replace free synchronous batching).
        assert async_run.messages <= 6 * sync_run.messages

    def test_k2_points_line_up_across_models(self):
        """Theorem 5.1 (k=2), the async AG schedule (K=2) and the sync
        Theorem 4.1 algorithm all sit on the n^{3/2} shelf."""
        from repro.asyncnet import AsyncNetwork, UnitDelayScheduler
        from repro.core import AsyncAfekGafniElection, AsyncTradeoffElection

        n = 512
        shelf = n**1.5
        thm51 = AsyncNetwork(
            n, lambda: AsyncTradeoffElection(k=2), seed=1, max_events=8_000_000
        ).run()
        ag2 = AsyncNetwork(
            n,
            lambda: AsyncAfekGafniElection(iterations=2),
            seed=1,
            scheduler=UnitDelayScheduler(),
            wake_times={u: 0.0 for u in range(n)},
            max_events=8_000_000,
        ).run()
        thm41 = run_sync(
            n,
            lambda: AdversarialTwoRoundElection(epsilon=0.05),
            awake=list(range(n)),
            seed=1,
        )
        for result in (thm51, ag2, thm41):
            assert shelf / 4 <= result.messages <= 8 * shelf, result.messages
