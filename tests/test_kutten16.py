"""The Kutten et al. [16] 2-round Monte Carlo baseline (repro.core.kutten16)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Kutten16Election
from repro.lowerbound import bounds
from repro.analysis import success_rate

from tests.helpers import make_ids, run_sync


class TestParameters:
    def test_rejects_bad_coefficients(self):
        with pytest.raises(ValueError):
            Kutten16Election(candidate_coeff=0)
        with pytest.raises(ValueError):
            Kutten16Election(referee_coeff=-1)

    def test_candidate_probability_shrinks(self):
        algo = Kutten16Election()
        assert algo.candidate_probability(64) > algo.candidate_probability(4096)

    def test_referee_count_scales_like_sqrt_n_log_n(self):
        algo = Kutten16Election(referee_coeff=1.0)
        n = 4096
        expected = math.sqrt(n * math.log(n))
        assert abs(algo.referee_count(n) - expected) <= 1

    def test_referee_count_capped(self):
        algo = Kutten16Election(referee_coeff=100.0)
        assert algo.referee_count(16) == 15


class TestCorrectness:
    def test_two_rounds_only(self):
        result = run_sync(512, Kutten16Election, seed=0)
        assert result.last_send_round == 2

    def test_whp_unique_leader(self):
        results = [run_sync(512, Kutten16Election, seed=s) for s in range(20)]
        rate = success_rate(results, lambda r: r.unique_leader)
        assert rate >= 0.95, rate

    def test_all_nodes_decide(self):
        result = run_sync(256, Kutten16Election, seed=3)
        assert result.decided_count == 256

    def test_implicit_election_no_two_leaders(self):
        # Two leaders are a catastrophic failure; zero leaders is the
        # tolerated whp failure mode.
        for seed in range(30):
            result = run_sync(256, Kutten16Election, seed=seed)
            assert len(result.leaders) <= 1

    def test_n_one(self):
        result = run_sync(1, Kutten16Election, seed=0)
        assert result.unique_leader

    def test_forced_all_candidates_still_at_most_one_leader(self):
        # candidate_coeff huge -> every node competes; the max rank holder
        # must win all its referees or nobody does.
        for seed in range(5):
            result = run_sync(64, lambda: Kutten16Election(candidate_coeff=1e9), seed=seed)
            assert len(result.leaders) <= 1

    @given(st.integers(16, 256), st.integers(0, 20))
    @settings(max_examples=25, deadline=None)
    def test_never_two_leaders_property(self, n, seed):
        result = run_sync(n, Kutten16Election, ids=make_ids(n, seed), seed=seed)
        assert len(result.leaders) <= 1


class TestComplexity:
    @pytest.mark.parametrize("n", [256, 1024, 4096])
    def test_messages_scale_sublinearly(self, n):
        result = run_sync(n, Kutten16Election, seed=1)
        # paper bound with generous constant (candidates ~ 2 ln n, each
        # sending ~2 sqrt(n ln n) competes plus as many responses)
        bound = 12 * bounds.kutten16_messages(n)
        assert result.messages <= bound, (n, result.messages, bound)

    @pytest.mark.slow
    def test_relative_cost_shrinks_with_n(self):
        # Sublinearity in relative terms: the per-node message cost
        # decreases as n grows (theory: ~log^1.5(n)/sqrt(n)).  The
        # candidate count is random, so average over seeds and compare
        # the endpoints of the sweep.
        def mean_per_node(n):
            totals = [run_sync(n, Kutten16Election, seed=s).messages for s in range(6)]
            return sum(totals) / (6 * n)

        assert mean_per_node(1024) > 1.5 * mean_per_node(16384)

    def test_deterministic_message_bound_holds(self):
        algo = Kutten16Election()
        n = 512
        result = run_sync(n, Kutten16Election, seed=5)
        assert result.messages <= algo.message_bound(n)

    def test_above_sqrt_n_lower_bound(self):
        # [16]'s own Omega(sqrt n) lower bound: any run that elects a
        # leader moved at least ~sqrt(n) messages.
        for seed in range(5):
            result = run_sync(1024, Kutten16Election, seed=seed)
            if result.unique_leader:
                assert result.messages >= bounds.kutten16_lb(1024)


class TestRefereeOverlapInvariant:
    """[16]'s uniqueness engine: with m = Theta(sqrt(n log n)) referees,
    any two candidates share one whp — check it holds in actual runs."""

    def test_pairwise_overlap_in_practice(self):
        from repro.sync.engine import SyncNetwork
        from repro.trace import MemoryRecorder

        n = 1024
        overlaps_checked = 0
        for seed in range(5):
            rec = MemoryRecorder()
            net = SyncNetwork(n, Kutten16Election, seed=seed, recorder=rec)
            net.run()
            referees = {}
            for e in rec.of_kind("send"):
                port, v, peer_port, payload = e.detail
                if payload[0] == "compete":
                    referees.setdefault(e.node, set()).add(v)
            candidates = sorted(referees)
            for i, a in enumerate(candidates):
                for b in candidates[i + 1 :]:
                    overlaps_checked += 1
                    assert referees[a] & referees[b], (seed, a, b)
        assert overlaps_checked >= 10  # enough pairs to be meaningful

    def test_winner_is_max_rank_candidate(self):
        from repro.sync.engine import SyncNetwork

        for seed in range(5):
            net = SyncNetwork(512, Kutten16Election, seed=seed)
            result = net.run()
            if not result.unique_leader:
                continue
            ranks = {
                u: algo.rank
                for u, algo in enumerate(net.algorithms)
                if algo.candidate
            }
            assert result.leaders[0] == max(ranks, key=ranks.get)
