"""Theorem 3.16 Las Vegas election (repro.core.las_vegas)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import LasVegasElection
from repro.lowerbound import bounds

from tests.helpers import make_ids, run_sync


class TestBasics:
    def test_rejects_bad_coefficients(self):
        with pytest.raises(ValueError):
            LasVegasElection(candidate_coeff=0)

    def test_three_rounds_whp(self):
        successes = 0
        for seed in range(15):
            result = run_sync(256, LasVegasElection, seed=seed)
            assert result.unique_leader  # Las Vegas: never wrong
            successes += result.last_send_round == 3
        assert successes >= 13

    def test_explicit_agreement(self):
        result = run_sync(128, LasVegasElection, seed=1)
        assert result.unique_leader
        assert result.decided_count == 128
        assert result.explicit_agreement()

    def test_n_one(self):
        result = run_sync(1, LasVegasElection, seed=0)
        assert result.unique_leader


class TestLasVegasProperty:
    """Las Vegas means: however the coins fall, the output is correct."""

    @given(st.integers(8, 128), st.integers(0, 40))
    @settings(max_examples=40, deadline=None)
    def test_always_exactly_one_leader(self, n, seed):
        result = run_sync(n, LasVegasElection, ids=make_ids(n, seed), seed=seed)
        assert result.unique_leader
        assert result.decided_count == n

    def test_all_candidates_every_phase_still_correct(self):
        # Maximal contention: everyone is a candidate.
        for seed in range(5):
            result = run_sync(
                64, lambda: LasVegasElection(candidate_prob_fn=lambda n, p: 1.0), seed=seed
            )
            assert result.unique_leader


class TestRestarts:
    def test_forced_restart_no_candidates_phase_zero(self):
        """Failure injection: phase 0 has zero candidates, so every node
        must restart; phase 1 runs normally and elects."""

        def prob(n, phase):
            return 0.0 if phase == 0 else 1.0

        result = run_sync(32, lambda: LasVegasElection(candidate_prob_fn=prob), seed=0)
        assert result.unique_leader
        # Phase 1 decision round is 3*1 + 4 = round 7; announcements in
        # round 6.
        assert result.last_send_round == 6

    def test_multiple_forced_restarts(self):
        def prob(n, phase):
            return 0.0 if phase < 3 else 1.0

        result = run_sync(24, lambda: LasVegasElection(candidate_prob_fn=prob), seed=0)
        assert result.unique_leader
        assert result.last_send_round == 3 * 3 + 3

    def test_restart_counter_recorded(self):
        def prob(n, phase):
            return 0.0 if phase == 0 else 1.0

        from repro.sync.engine import SyncNetwork

        net = SyncNetwork(16, lambda: LasVegasElection(candidate_prob_fn=prob), seed=0)
        net.run()
        assert all(a.phases_run >= 1 for a in net.algorithms)

    def test_collision_restart_is_consistent(self):
        """With every node a candidate and referee sets small enough for
        frequent multi-winner collisions, no run may ever end with two
        leaders — nodes restart in lockstep until a clean phase."""
        saw_restart = False
        for seed in range(10):
            result = run_sync(
                16,
                lambda: LasVegasElection(candidate_coeff=1e9, referee_coeff=0.4),
                seed=seed,
                max_rounds=2000,
            )
            assert result.unique_leader
            saw_restart |= result.last_send_round > 3
        assert saw_restart  # the parameterization did exercise restarts


class TestComplexity:
    @pytest.mark.slow
    def test_expected_messages_linear(self):
        n = 1024
        totals = [run_sync(n, LasVegasElection, seed=s).messages for s in range(10)]
        mean = sum(totals) / len(totals)
        # O(n) with a modest constant: announcement (n-1) + competes.
        assert mean <= 20 * bounds.thm316_las_vegas_messages(n), mean

    def test_messages_at_least_announcement(self):
        # The Omega(n) side: a correct Las Vegas run must move >= n-1
        # messages (here: the announcement broadcast alone is n-1).
        for seed in range(5):
            result = run_sync(512, LasVegasElection, seed=seed)
            assert result.messages >= bounds.thm316_las_vegas_lb(512) - 1

    def test_dominated_by_announcement_for_large_n(self):
        n = 4096
        result = run_sync(n, LasVegasElection, seed=3)
        announce = result.metrics.messages_by_kind.get("announce", 0)
        assert announce >= n - 1
        assert announce <= result.messages <= announce + 12 * bounds.kutten16_messages(n)
