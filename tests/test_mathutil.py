"""Exact integer power/log helpers (repro.mathutil)."""


import pytest
from hypothesis import given, strategies as st

from repro.mathutil import (
    ceil_log2,
    ceil_pow_frac,
    ceil_sqrt,
    floor_log2,
    floor_pow_frac,
)


class TestCeilPowFrac:
    def test_square_root_exact(self):
        assert ceil_pow_frac(1024, 1, 2) == 32

    def test_square_root_inexact(self):
        assert ceil_pow_frac(1000, 1, 2) == 32  # 31^2=961 < 1000 <= 1024

    def test_identity_power(self):
        assert ceil_pow_frac(77, 1, 1) == 77

    def test_power_greater_than_one(self):
        assert ceil_pow_frac(10, 3, 2) == 32  # 10^1.5 = 31.62...

    def test_num_zero(self):
        assert ceil_pow_frac(99, 0, 3) == 1

    def test_n_one(self):
        assert ceil_pow_frac(1, 5, 2) == 1

    def test_cube_root(self):
        assert ceil_pow_frac(27, 1, 3) == 3
        assert ceil_pow_frac(28, 1, 3) == 4

    def test_no_float_inflation(self):
        # 2^20 with exponent 1/2: float gives 1024.0000000000001-style
        # noise; the exact result must be 1024, not 1025.
        assert ceil_pow_frac(2**20, 1, 2) == 1024

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ceil_pow_frac(0, 1, 2)
        with pytest.raises(ValueError):
            ceil_pow_frac(4, -1, 2)
        with pytest.raises(ValueError):
            ceil_pow_frac(4, 1, 0)

    @given(st.integers(2, 10_000), st.integers(1, 4), st.integers(1, 4))
    def test_is_exact_ceiling(self, n, num, den):
        m = ceil_pow_frac(n, num, den)
        assert m**den >= n**num
        assert (m - 1) ** den < n**num


class TestFloorPowFrac:
    def test_square_root(self):
        assert floor_pow_frac(1000, 1, 2) == 31

    def test_exact(self):
        assert floor_pow_frac(1024, 1, 2) == 32

    @given(st.integers(2, 10_000), st.integers(1, 4), st.integers(1, 4))
    def test_is_exact_floor(self, n, num, den):
        m = floor_pow_frac(n, num, den)
        assert m**den <= n**num
        assert (m + 1) ** den > n**num


class TestLogs:
    def test_ceil_log2_powers(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(1024) == 10

    def test_ceil_log2_between(self):
        assert ceil_log2(3) == 2
        assert ceil_log2(1025) == 11

    def test_floor_log2(self):
        assert floor_log2(1) == 0
        assert floor_log2(1023) == 9
        assert floor_log2(1024) == 10

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ceil_log2(0)
        with pytest.raises(ValueError):
            floor_log2(0)

    @given(st.integers(1, 1 << 40))
    def test_log_consistency(self, n):
        assert 2 ** ceil_log2(n) >= n
        assert 2 ** floor_log2(n) <= n


class TestCeilSqrt:
    def test_small(self):
        assert ceil_sqrt(0) == 0
        assert ceil_sqrt(1) == 1
        assert ceil_sqrt(2) == 2
        assert ceil_sqrt(4) == 2
        assert ceil_sqrt(5) == 3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ceil_sqrt(-1)

    @given(st.integers(0, 1 << 50))
    def test_is_ceiling(self, n):
        r = ceil_sqrt(n)
        assert r * r >= n
        assert r == 0 or (r - 1) * (r - 1) < n
