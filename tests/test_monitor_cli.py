"""``repro monitor check``, ``repro history``, ``repro compare`` and the
``trace diff --json`` export.

The CLI acceptance bar: a fault-free monitored smoke sweep exits 0 with
100% conformance and a non-empty ledger, and ``repro compare`` exits
non-zero when message counts regress beyond slack.
"""

import json

from repro.__main__ import main
from repro.monitor import append_entry, make_entry, read_ledger
from tests.test_monitor_ledger import record


def check(tmp_path, *extra):
    """A tiny monitored sweep with a tmp ledger; returns (rc, ledger)."""
    ledger = str(tmp_path / "ledger.jsonl")
    rc = main(
        ["monitor", "check", "--algorithms", "las_vegas", "improved_tradeoff",
         "--ns", "16", "--seeds", "0", "1", "--ledger", ledger, *extra]
    )
    return rc, ledger


class TestMonitorCheck:
    def test_smoke_sweep_conforms_and_appends_ledger(self, tmp_path, capsys):
        rc, ledger = check(tmp_path, "--label", "smoke")
        out = capsys.readouterr().out
        assert rc == 0
        assert "violations: 0" in out
        assert "conformance: 4/4 (100.0%)" in out
        assert "Thm 3.16" in out and "Thm 3.10" in out
        assert f"ledger: appended to {ledger}" in out
        entries = read_ledger(ledger)
        assert len(entries) == 1
        assert entries[0]["label"] == "smoke"
        assert entries[0]["runs"] == 4
        assert entries[0]["context"]["cli"] == "monitor check"

    def test_impossible_slack_exits_nonzero(self, tmp_path, capsys):
        rc, _ = check(tmp_path, "--slack", "0.0001")
        out = capsys.readouterr().out
        assert rc == 1
        assert "OUT OF ENVELOPE" in out

    def test_json_report(self, tmp_path, capsys):
        rc, _ = check(tmp_path, "--json", "-")
        assert rc == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["ok"] is True
        assert payload["conformance"]["total"] == 4
        assert payload["ledger_path"]

    def test_records_export(self, tmp_path):
        from repro.analysis.export import records_from_jsonl

        records_path = tmp_path / "records.jsonl"
        rc, _ = check(tmp_path, "--records", str(records_path))
        assert rc == 0
        records = records_from_jsonl(records_path.read_text())
        assert len(records) == 4
        assert {r.extra["algorithm"] for r in records} == {
            "las_vegas", "improved_tradeoff",
        }

    def test_progress_flag_renders_line(self, tmp_path, capsys):
        rc, _ = check(tmp_path, "--progress")
        assert rc == 0
        err = capsys.readouterr().err
        assert "cells" in err and "done" in err

    def test_bad_n_is_usage_error(self, tmp_path, capsys):
        rc = main(["monitor", "check", "--algorithms", "las_vegas",
                   "--ns", "0", "--seeds", "0"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestHistory:
    def test_empty_ledger(self, tmp_path, capsys):
        path = str(tmp_path / "none.jsonl")
        assert main(["history", "--ledger", path]) == 0
        assert "is empty" in capsys.readouterr().out

    def test_lists_entries(self, tmp_path, capsys):
        rc, ledger = check(tmp_path, "--label", "first")
        capsys.readouterr()
        assert main(["history", "--ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert "run ledger" in out and "first" in out
        assert "100.0%" in out

    def test_limit_and_json(self, tmp_path, capsys):
        ledger = str(tmp_path / "ledger.jsonl")
        for label in ("alpha", "beta", "gamma"):
            append_entry(
                make_entry([record("las_vegas")], label=label), ledger
            )
        assert main(["history", "--ledger", ledger, "--limit", "2",
                     "--json", "-"]) == 0
        out = capsys.readouterr().out
        assert "alpha" not in out and "gamma" in out
        payload = json.loads(out[out.index("{"):])
        assert [e["label"] for e in payload["entries"]] == ["beta", "gamma"]


class TestCompare:
    def seed_ledger(self, tmp_path, base_messages, new_messages):
        ledger = str(tmp_path / "ledger.jsonl")
        for label, messages in (("base", base_messages), ("new", new_messages)):
            append_entry(
                make_entry(
                    [record("las_vegas", messages=messages, seed=s)
                     for s in (0, 1)],
                    label=label,
                ),
                ledger,
            )
        return ledger

    def test_stable_entries_exit_zero(self, tmp_path, capsys):
        ledger = self.seed_ledger(tmp_path, 100, 102)
        assert main(["compare", "0", "--ledger", ledger]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_message_regression_exits_nonzero(self, tmp_path, capsys):
        ledger = self.seed_ledger(tmp_path, 100, 150)
        assert main(["compare", "0", "--to", "-1", "--ledger", ledger]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "verdict: REGRESSED" in out

    def test_slack_widens_the_gate(self, tmp_path):
        ledger = self.seed_ledger(tmp_path, 100, 150)
        assert main(["compare", "0", "--ledger", ledger, "--slack", "0.6"]) == 0

    def test_unknown_ref_exits_two(self, tmp_path, capsys):
        ledger = self.seed_ledger(tmp_path, 100, 100)
        assert main(["compare", "zzz", "--ledger", ledger]) == 2
        assert "error:" in capsys.readouterr().err

    def test_json_export(self, tmp_path, capsys):
        ledger = self.seed_ledger(tmp_path, 100, 150)
        assert main(["compare", "0", "--ledger", ledger, "--json", "-"]) == 1
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["regressed"] is True


class TestTraceDiffJson:
    def test_diff_json_export(self, tmp_path, capsys):
        a = str(tmp_path / "a.jsonl")
        b = str(tmp_path / "b.jsonl")
        main(["trace", "record", "las_vegas", "--n", "16", "-o", a])
        main(["trace", "record", "las_vegas", "--n", "16", "--seed", "5",
              "-o", b])
        capsys.readouterr()
        json_path = tmp_path / "diff.json"
        rc = main(["trace", "diff", a, b, "--json", str(json_path)])
        payload = json.loads(json_path.read_text())
        assert payload["a"] == a and payload["b"] == b
        assert payload["diff"]["identical"] is (rc == 0)
        assert "summary" in payload

    def test_identical_diff_json_to_stdout(self, tmp_path, capsys):
        a = str(tmp_path / "a.jsonl")
        main(["trace", "record", "las_vegas", "--n", "16", "-o", a])
        capsys.readouterr()
        assert main(["trace", "diff", a, a, "--json", "-"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["diff"]["identical"] is True
