"""Theory-bound conformance: envelopes, record checks, and the pinning sweep.

The acceptance bar from the observability PR: every one of the six sync
algorithms carries an envelope derived from its paper statement, and a
fault-free smoke sweep conforms at 100% with zero invariant violations.
The calibrated slack constants in ``repro.monitor.conformance`` are
pinned here — if an implementation's message complexity regresses past
its theorem curve, this file is what goes red.
"""

import pytest

from repro.analysis.runner import RunRecord
from repro.core import ALGORITHMS, get_algorithm
from repro.lowerbound import bounds
from repro.monitor import (
    ENVELOPES,
    SweepMonitor,
    check_record,
    get_envelope,
    summarize,
)
from repro.sweep import RunSpec, sweep

SYNC_SIX = [
    "improved_tradeoff",
    "afek_gafni",
    "small_id",
    "kutten16",
    "las_vegas",
    "adversarial_2round",
]


def record(name, n=64, seed=0, messages=10, time=2.0, params=None, **kw):
    defaults = dict(
        unique_leader=True,
        elected_id=n,
        leaders=1,
        decided=n,
        awake=n,
    )
    defaults.update(kw)
    return RunRecord(
        n=n,
        seed=seed,
        messages=messages,
        time=time,
        params=dict(params or {}),
        extra={"algorithm": name},
        **defaults,
    )


class TestEnvelopeRegistry:
    @pytest.mark.parametrize("name", SYNC_SIX)
    def test_every_sync_algorithm_has_an_envelope(self, name):
        envelope = get_envelope(name)
        assert envelope is not None
        assert envelope.paper_ref
        assert get_algorithm(name).envelope is envelope

    @pytest.mark.parametrize("name", ["async_tradeoff", "async_afek_gafni"])
    def test_async_algorithms_covered_too(self, name):
        assert get_algorithm(name).envelope is not None

    @pytest.mark.parametrize("name", ["monarchical", "reelect", "quorum_reelect"])
    def test_wrappers_have_no_envelope(self, name):
        # No theorem statement covers the fault wrappers; absence is not
        # an error and check_record simply skips them.
        assert get_algorithm(name).envelope is None
        assert check_record(record(name)) is None

    def test_every_envelope_names_a_registered_algorithm(self):
        assert set(ENVELOPES) <= set(ALGORITHMS)

    def test_limits_follow_the_paper_curves(self):
        envelope = get_envelope("improved_tradeoff")
        n, ell = 128, 5
        assert envelope.message_limit(n, {"ell": ell}) == pytest.approx(
            envelope.messages_slack * bounds.thm310_messages(n, ell)
        )
        assert envelope.round_limit(n, {"ell": ell}) == pytest.approx(
            envelope.rounds_slack * ell
        )
        # Explicit slack overrides the calibrated constant.
        assert envelope.message_limit(n, {"ell": ell}, slack=1.0) == pytest.approx(
            bounds.thm310_messages(n, ell)
        )

    def test_small_id_envelope_is_exact(self):
        envelope = get_envelope("small_id")
        assert envelope.messages_slack == 1.0
        assert envelope.message_limit(100, {"d": 4}) == pytest.approx(
            bounds.thm315_messages(100, 4, 1)
        )


class TestCheckRecord:
    def test_within_envelope(self):
        result = check_record(record("las_vegas", n=64, messages=64, time=3.0))
        assert result is not None and result.ok
        assert result.messages_ok and result.rounds_ok
        assert result.paper_ref == "Thm 3.16"

    def test_message_blowout_flagged(self):
        result = check_record(record("las_vegas", n=64, messages=10_000))
        assert result is not None and not result.messages_ok
        assert not result.ok
        assert "FAILED" in str(result) and "OUT OF ENVELOPE" in str(result)

    def test_round_blowout_flagged(self):
        result = check_record(
            record("improved_tradeoff", n=64, messages=10, time=50.0)
        )
        assert result is not None and result.messages_ok and not result.rounds_ok

    def test_tiny_slack_override_flags_everything(self):
        healthy = record("las_vegas", n=64, messages=64, time=3.0)
        assert check_record(healthy).ok
        assert not check_record(healthy, slack=0.01).ok

    def test_algorithm_from_extra_or_argument(self):
        anonymous = record("las_vegas", n=64, messages=64, time=3.0)
        anonymous.extra.pop("algorithm")
        assert check_record(anonymous) is None
        assert check_record(anonymous, algorithm="las_vegas") is not None

    def test_summarize(self):
        results = [
            check_record(record("las_vegas", n=64, messages=64, time=3.0)),
            check_record(record("las_vegas", n=64, messages=99_999)),
            None,  # unregistered algorithm: skipped, not counted
        ]
        summary = summarize(results)
        assert summary.total == 2 and summary.conforming == 1
        assert summary.rate == 0.5 and not summary.ok
        assert len(summary.failures) == 1
        assert summarize([]).rate == 1.0 and summarize([]).ok


class TestPinningSweep:
    """The calibration pin: fault-free runs of all six sync algorithms
    stay inside their envelopes at the shipped slack constants."""

    def test_smoke_sweep_fully_conforms(self):
        specs = [
            RunSpec(
                algorithm=name,
                n=n,
                seeds=(0, 1),
                params={"d": 4} if name == "small_id" else {},
            )
            for name in SYNC_SIX
            for n in (16, 32)
        ]
        monitor = SweepMonitor()
        records = sweep(specs, monitor=monitor)
        assert len(records) == len(specs) * 2
        assert monitor.violations == []
        assert monitor.conformance.total == len(records)
        assert monitor.conformance.ok and monitor.conformance.rate == 1.0
        assert monitor.ok
        # The sweep stamped every record with its algorithm name.
        assert all("algorithm" in r.extra for r in records)
