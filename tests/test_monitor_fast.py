"""Monitoring the vectorized engine: aggregate checks + sampled-lane replay.

The fast engine has no recorder seam, so :func:`monitor_fast_lane` runs
the sampled lane on both engines and fans the object twin's event stream
into a live :class:`MonitorSuite`.  The acceptance bar here is
bit-exactness: the violations found by monitoring the lane live must
equal a post-hoc replay of the recorded events — same dicts, same order.
:func:`check_fast_telemetry` covers the cheap aggregate-only path.
"""

import pytest

pytest.importorskip("numpy")

from repro.monitor import MonitorSuite, check_fast_telemetry, monitor_fast_lane
from repro.telemetry import FastTelemetry


class TestMonitorFastLane:
    @pytest.mark.parametrize("name", ["improved_tradeoff", "las_vegas"])
    def test_clean_lane_no_violations(self, name):
        lane, suite = monitor_fast_lane(16, name, seed=3)
        assert lane.matches  # the engines agreed on every aggregate
        assert suite.ok
        assert lane.sync_result.unique_leader

    def test_live_equals_replay_bit_exact(self):
        context = {"engine": "fast", "algorithm": "improved_tradeoff"}
        live = MonitorSuite(n=32, context=context)
        lane, suite = monitor_fast_lane(
            32, "improved_tradeoff", seed=7, suite=live
        )
        assert suite is live

        replayed = MonitorSuite(n=32, context=context)
        replayed.replay(lane.events).finish(lane.sync_result)

        assert [v.to_dict() for v in live.violations] == [
            v.to_dict() for v in replayed.violations
        ]
        # The lane stream is real: wakes, sends and decides all present.
        kinds = {e.kind for e in lane.events}
        assert {"wake", "send", "decide"} <= kinds

    def test_batched_lane_selection(self):
        lane, suite = monitor_fast_lane(
            16, "improved_tradeoff", seeds=[4, 5, 6], lane=1
        )
        assert lane.lane == 1
        assert suite.ok
        assert suite.context["seed"] == 5

    def test_bound_violation_reported(self):
        # improved_tradeoff at ell=3 runs 3 rounds; a bound of 0.5 is
        # impossible to satisfy, so termination_bound must fire.
        _, suite = monitor_fast_lane(16, "improved_tradeoff", seed=0, bound=0.5)
        assert any(v.monitor == "termination_bound" for v in suite.violations)


class TestCheckFastTelemetry:
    def test_clean_telemetry_via_real_run(self):
        lane, _ = monitor_fast_lane(16, "las_vegas", seed=2)
        violations = check_fast_telemetry(lane.telemetry)
        assert violations == []

    def test_two_leaders_in_tally(self):
        telemetry = FastTelemetry()
        telemetry.on_send(0, 1, "probe", 12)
        telemetry.on_decide(0, 2, [3, 9])
        violations = check_fast_telemetry(telemetry)
        assert [v.monitor for v in violations] == ["unique_leader_per_epoch"]
        assert "2 leaders" in violations[0].message
        assert violations[0].context["engine"] == "fast"

    def test_no_decision(self):
        telemetry = FastTelemetry()
        telemetry.on_send(0, 1, "probe", 4)
        violations = check_fast_telemetry(telemetry)
        assert [v.monitor for v in violations] == ["termination_bound"]
        assert "without any decision" in violations[0].message

    def test_bound_breaches(self):
        telemetry = FastTelemetry()
        telemetry.on_send(0, 1, "probe", 4)
        telemetry.on_send(0, 7, "late", 1)
        telemetry.on_decide(0, 7, [3])
        violations = check_fast_telemetry(telemetry, bound=2.0)
        monitors = [v.monitor for v in violations]
        assert monitors == ["termination_bound", "termination_bound"]
        assert "decision at round 7" in violations[0].message
        assert "sends at round 7" in violations[1].message

    def test_lane_isolation(self):
        telemetry = FastTelemetry()
        telemetry.on_decide(0, 2, [3])
        telemetry.on_decide(1, 2, [3, 4])
        assert check_fast_telemetry(telemetry, lane=0) == []
        bad = check_fast_telemetry(telemetry, lane=1)
        assert bad and bad[0].context["lane"] == 1
