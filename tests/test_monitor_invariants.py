"""Event-level invariant monitors: every checker fires on a broken toy.

Each "toy" is a deliberately wrong SyncAlgorithm that breaks exactly one
invariant; attaching a :class:`MonitorSuite` as the engine recorder must
surface the breach as a :class:`Violation` (never an exception), and a
post-hoc :meth:`replay` of the recorded stream must be bit-equal to the
live attachment.  A healthy paper algorithm closes the loop: zero
violations.
"""

import pytest

from repro.common import Decision
from repro.core import get_algorithm
from repro.monitor import (
    MONITOR_NAMES,
    AgreementMonitor,
    MonitorSuite,
    QuorumOneLeaderMonitor,
    TerminationMonitor,
    UniqueLeaderMonitor,
    ValidityMonitor,
    Violation,
    default_monitors,
    trace_slice,
)
from repro.sync.engine import SyncNetwork
from repro.trace import CompositeRecorder, MemoryRecorder, TraceEvent


# --------------------------------------------------------------------- #
# broken toys — each violates exactly one invariant


class EveryoneLeader:
    """Every node crowns itself: unique_leader_per_epoch must fire."""

    def on_wake(self, ctx):
        pass

    def on_round(self, ctx, inbox):
        ctx.decide_leader()
        ctx.halt()


class SelfishFollowers:
    """Every node follows *itself*: agreement must fire (validity holds —
    each named id is a woken member)."""

    def on_wake(self, ctx):
        pass

    def on_round(self, ctx, inbox):
        ctx.decide_follower(ctx.my_id)
        ctx.halt()


class GhostFollower:
    """Everyone follows an id outside the membership: validity must fire."""

    def on_wake(self, ctx):
        pass

    def on_round(self, ctx, inbox):
        ctx.decide_follower(999_999)
        ctx.halt()


class Sleepwalker:
    """Names a member that never woke (runs with ``awake=[0]``)."""

    def on_wake(self, ctx):
        pass

    def on_round(self, ctx, inbox):
        ctx.decide_follower(2)  # default ids: id 2 is node 1, who is asleep
        ctx.halt()


class Mute:
    """Halts without ever deciding: termination_bound must fire at finish."""

    def on_wake(self, ctx):
        pass

    def on_round(self, ctx, inbox):
        ctx.halt()


class Procrastinator:
    """Decides correctly but only in round 5 — breaks an explicit bound."""

    def on_wake(self, ctx):
        pass

    def on_round(self, ctx, inbox):
        if ctx.round >= 5:
            if ctx.my_id == 1:
                ctx.decide_leader()
            else:
                ctx.decide_follower(1)
            ctx.halt()


def run_with_suite(factory, n=5, suite=None, **net_kw):
    suite = suite if suite is not None else MonitorSuite(n=n)
    result = SyncNetwork(n, factory, recorder=suite, **net_kw).run()
    suite.finish(result)
    return result, suite


def fired(suite):
    return {v.monitor for v in suite.violations}


class TestBrokenToys:
    def test_everyone_leader_trips_unique_leader(self):
        result, suite = run_with_suite(EveryoneLeader)
        assert "unique_leader_per_epoch" in fired(suite)
        assert not suite.ok
        unique = suite.monitor("unique_leader_per_epoch")
        assert unique.concurrent_leaders == 5
        assert unique.max_concurrent == 5
        # One violation per new reigning set, not one per event replayed.
        assert (
            len([v for v in suite.violations
                 if v.monitor == "unique_leader_per_epoch"]) == 4
        )

    def test_everyone_leader_trips_quorum_overlap(self):
        _, suite = run_with_suite(
            EveryoneLeader, suite=MonitorSuite(n=5, quorum=True)
        )
        assert "quorum_one_leader" in fired(suite)

    def test_selfish_followers_trip_agreement_only(self):
        _, suite = run_with_suite(SelfishFollowers)
        assert "agreement" in fired(suite)
        assert "validity" not in fired(suite)

    def test_ghost_follower_trips_validity(self):
        _, suite = run_with_suite(GhostFollower)
        violations = [v for v in suite.violations if v.monitor == "validity"]
        assert len(violations) == 1  # deduped by offending id
        assert "not a member id" in violations[0].message

    def test_sleepwalker_trips_validity(self):
        _, suite = run_with_suite(Sleepwalker, awake=[0])
        violations = [v for v in suite.violations if v.monitor == "validity"]
        assert len(violations) == 1
        assert "never woke" in violations[0].message

    def test_mute_trips_termination_at_finish(self):
        _, suite = run_with_suite(Mute)
        violations = [
            v for v in suite.violations if v.monitor == "termination_bound"
        ]
        assert len(violations) == 1
        assert "never decided" in violations[0].message
        assert violations[0].when is None  # finish-time, not a round

    def test_procrastinator_trips_explicit_bound(self):
        _, suite = run_with_suite(
            Procrastinator, suite=MonitorSuite(n=5, bound=2.0)
        )
        violations = [
            v for v in suite.violations if v.monitor == "termination_bound"
        ]
        assert violations and "exceeds the termination bound" in violations[0].message
        assert violations[0].when is not None and violations[0].when > 2.0

    def test_procrastinator_ok_without_bound(self):
        _, suite = run_with_suite(Procrastinator)
        assert suite.ok

    def test_quorum_minority_commit_via_replay(self):
        suite = MonitorSuite(monitors=[QuorumOneLeaderMonitor()], n=5)
        events = (
            [TraceEvent("wake", 1.0, u, ()) for u in range(5)]
            + [TraceEvent("crash", 2.0, u, ()) for u in (1, 2, 3)]
            + [TraceEvent("decide", 3.0, 0, (Decision.LEADER, 1))]
        )
        suite.replay(events).finish()
        assert [v.monitor for v in suite.violations] == ["quorum_one_leader"]
        assert "no live majority" in suite.violations[0].message

    def test_crash_ends_a_reign(self):
        monitor = UniqueLeaderMonitor()
        suite = MonitorSuite(monitors=[monitor], n=3)
        suite.replay(
            [
                TraceEvent("decide", 1.0, 0, (Decision.LEADER, 1)),
                TraceEvent("crash", 2.0, 0, ()),
                TraceEvent("decide", 3.0, 1, (Decision.LEADER, 2)),
            ]
        ).finish()
        # Sequential reigns separated by a crash: never two alive at once.
        assert suite.ok
        assert monitor.concurrent_leaders == 1
        assert monitor.max_concurrent == 1


class TestHealthyRuns:
    @pytest.mark.parametrize("name", ["improved_tradeoff", "las_vegas"])
    def test_paper_algorithm_is_clean(self, name):
        spec = get_algorithm(name)
        result, suite = run_with_suite(spec.make(), n=16, seed=3)
        assert result.unique_leader
        assert suite.ok
        assert suite.violations == []


class TestReplayEquivalence:
    def test_replay_is_bit_equal_to_live_attachment(self):
        memory = MemoryRecorder()
        live = MonitorSuite(n=5, context={"path": "either"})
        result = SyncNetwork(
            5, EveryoneLeader, recorder=CompositeRecorder(memory, live)
        ).run()
        live.finish(result)

        replayed = MonitorSuite(n=5, context={"path": "either"})
        replayed.replay(memory.events).finish(result)

        assert [v.to_dict() for v in live.violations] == [
            v.to_dict() for v in replayed.violations
        ]
        assert live.violations  # the comparison is not vacuous

    def test_unique_leader_finish_cross_checks_result(self):
        # A suite that saw no events at all still flags a split brain
        # from the engine's own survivor accounting.
        result = SyncNetwork(4, EveryoneLeader).run()
        suite = MonitorSuite(monitors=[UniqueLeaderMonitor()], n=4)
        suite.finish(result)
        assert not suite.ok
        assert "alive at run end" in suite.violations[0].message


class TestSuiteMechanics:
    def test_default_monitor_set(self):
        names = [m.name for m in default_monitors()]
        assert names == [
            "unique_leader_per_epoch",
            "agreement",
            "validity",
            "termination_bound",
        ]
        with_quorum = [m.name for m in default_monitors(quorum=True)]
        assert set(with_quorum) == set(MONITOR_NAMES)

    def test_monitor_lookup(self):
        suite = MonitorSuite(n=3)
        assert isinstance(suite.monitor("agreement"), AgreementMonitor)
        assert isinstance(suite.monitor("validity"), ValidityMonitor)
        assert isinstance(
            suite.monitor("termination_bound"), TerminationMonitor
        )
        with pytest.raises(KeyError, match="quorum_one_leader"):
            suite.monitor("quorum_one_leader")

    def test_ids_default_to_engine_convention(self):
        suite = MonitorSuite(n=4)
        assert suite.ids == [1, 2, 3, 4]
        assert suite.id_to_node == {1: 0, 2: 1, 3: 2, 4: 3}

    def test_explicit_ids_and_inferred_n(self):
        suite = MonitorSuite(ids=[30, 10, 20])
        assert suite.n == 3
        assert suite.id_to_node[20] == 2

    def test_finish_is_idempotent(self):
        _, suite = run_with_suite(Mute)
        before = len(suite.violations)
        suite.finish()
        suite.finish()
        assert len(suite.violations) == before

    def test_violations_carry_context_and_slice(self):
        _, suite = run_with_suite(
            EveryoneLeader, suite=MonitorSuite(n=4, context={"algorithm": "toy"})
        )
        violation = suite.violations[0]
        assert violation.context["algorithm"] == "toy"
        assert violation.trace_slice  # events around the offense captured
        assert all(isinstance(line, str) for line in violation.trace_slice)
        assert "decide" in " ".join(violation.trace_slice)


class TestViolationRecord:
    def test_str_and_dict(self):
        violation = Violation(
            monitor="agreement",
            message="nodes disagree",
            when=3.0,
            node=2,
            context={"n": 5},
            trace_slice=["[   3.00] decide  node=2 (...)"],
        )
        assert str(violation) == "[agreement] at t=3 node=2: nodes disagree"
        payload = violation.to_dict()
        assert payload["monitor"] == "agreement"
        assert payload["context"] == {"n": 5}
        assert payload["trace_slice"] == violation.trace_slice

    def test_trace_slice_window_and_cap(self):
        events = [TraceEvent("send", float(r), 0, (0, 1, 0, "x")) for r in range(10)]
        window = trace_slice(events, 5.0)
        assert len(window) == 3  # rounds 4, 5, 6
        capped = trace_slice(events, 5.0, radius=100.0, limit=4)
        assert len(capped) == 4
        tail = trace_slice(events, None, limit=3)
        assert len(tail) == 3 and "9" in tail[-1]
