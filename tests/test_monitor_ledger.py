"""The persistent run ledger: entries, refs, and cross-entry regression diffs.

Everything runs against tmp_path ledgers; ``spec_hash`` stability is the
load-bearing property (same workload on a later commit must land on the
same hash so ``repro compare`` pairs the entries).
"""

import json

import pytest

from repro.analysis.runner import RunRecord
from repro.monitor import (
    SweepMonitor,
    Violation,
    append_entry,
    compare_entries,
    make_entry,
    read_ledger,
    resolve_ref,
    spec_hash,
)
from repro.monitor.ledger import LEDGER_SCHEMA, git_sha
from repro.sweep import RunSpec, sweep


def record(name, messages=100, time=3.0, n=16, seed=0):
    return RunRecord(
        n=n, seed=seed, messages=messages, time=time, unique_leader=True,
        elected_id=n, leaders=1, decided=n, awake=n, params={},
        extra={"algorithm": name},
    )


def entry(messages=100, violations=(), label=None, specs=None):
    return make_entry(
        [record("las_vegas", messages=messages, seed=s) for s in (0, 1)],
        specs=specs,
        violations=violations,
        label=label,
    )


class TestSpecHash:
    def test_stable_across_equal_workloads(self):
        a = [RunSpec(algorithm="las_vegas", n=16, seeds=(0, 1))]
        b = [RunSpec(algorithm="las_vegas", n=16, seeds=(0, 1))]
        assert spec_hash(a) == spec_hash(b)
        assert len(spec_hash(a)) == 16

    @pytest.mark.parametrize(
        "other",
        [
            dict(algorithm="kutten16"),
            dict(n=32),
            dict(seeds=(0, 2)),
            dict(params={"d": 4}),
        ],
    )
    def test_sensitive_to_workload_coordinates(self, other):
        base = dict(algorithm="las_vegas", n=16, seeds=(0, 1))
        assert spec_hash([RunSpec(**base)]) != spec_hash(
            [RunSpec(**{**base, **other})]
        )

    def test_callable_algorithms_hash_by_qualname(self):
        class Toy:
            pass

        spec = RunSpec(algorithm=Toy, n=4)
        assert spec_hash([spec]) == spec_hash([RunSpec(algorithm=Toy, n=4)])


class TestEntries:
    def test_make_entry_shape(self):
        violations = [Violation(monitor="agreement", message="boom")]
        e = entry(violations=violations, label="smoke",
                  specs=[RunSpec(algorithm="las_vegas", n=16, seeds=(0, 1))])
        assert e["schema"] == LEDGER_SCHEMA
        assert e["runs"] == 2 and e["label"] == "smoke"
        assert e["spec_hash"] is not None
        assert e["messages"]["mean"] == 100.0
        assert e["by_algorithm"]["messages"]["las_vegas"]["count"] == 2
        assert e["violations"][0]["monitor"] == "agreement"
        # git_sha inside a checkout; the entry just mirrors it.
        assert e["git_sha"] == git_sha()
        json.dumps(e)  # JSON-safe end to end

    def test_append_and_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "deep" / "ledger.jsonl")
        assert append_entry(entry(label="a"), path) == path
        append_entry(entry(label="b"), path)
        entries = read_ledger(path)
        assert [e["label"] for e in entries] == ["a", "b"]

    def test_read_skips_garbage_lines(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        append_entry(entry(label="good"), path)
        with open(path, "a") as fh:
            fh.write("not json\n\n[1, 2]\n")
        entries = read_ledger(path)
        assert len(entries) == 1 and entries[0]["label"] == "good"

    def test_read_missing_ledger(self, tmp_path):
        assert read_ledger(str(tmp_path / "absent.jsonl")) == []


class TestResolveRef:
    def test_by_index_and_negative_index(self):
        entries = [entry(label=str(i)) for i in range(3)]
        assert resolve_ref(entries, "0")["label"] == "0"
        assert resolve_ref(entries, "-1")["label"] == "2"

    def test_by_hash_prefix_newest_wins(self):
        old = entry(label="old")
        new = entry(label="new")
        old["git_sha"] = new["git_sha"] = "deadbeef" * 5
        assert resolve_ref([old, new], "deadbeef")["label"] == "new"

    def test_by_spec_hash_prefix(self):
        e = entry(specs=[RunSpec(algorithm="las_vegas", n=16)])
        assert resolve_ref([e], e["spec_hash"][:6]) is e

    def test_by_exact_label_newest_wins(self):
        old, new = entry(label="nightly"), entry(label="nightly")
        new["messages"]["mean"] = 999.0
        assert resolve_ref([old, new], "nightly") is new
        # Prefixes of a label do not match — only hashes match by prefix.
        with pytest.raises(LookupError):
            resolve_ref([old, new], "night")

    def test_lookup_errors(self):
        with pytest.raises(LookupError, match="empty"):
            resolve_ref([], "0")
        with pytest.raises(LookupError, match="zzz"):
            resolve_ref([entry()], "zzz")
        with pytest.raises(LookupError):
            resolve_ref([entry()], "7")  # index out of range


class TestCompareEntries:
    def test_identical_entries_ok(self):
        e = entry()
        diff = compare_entries(e, e)
        assert not diff.regressed
        assert "verdict: ok" in diff.summary()

    def test_message_regression_beyond_slack(self):
        diff = compare_entries(entry(messages=100), entry(messages=150))
        assert diff.regressed
        assert diff.deltas["messages/las_vegas"]["rel"] == pytest.approx(0.5)
        assert any("REGRESSION" in line for line in diff.lines)
        assert "verdict: REGRESSED" in diff.summary()

    def test_within_slack_ok_and_slack_configurable(self):
        base, new = entry(messages=100), entry(messages=108)
        assert not compare_entries(base, new).regressed
        assert compare_entries(base, new, slack=0.05).regressed

    def test_improvement_never_regresses(self):
        assert not compare_entries(entry(messages=100), entry(messages=50)).regressed

    def test_new_violations_regress(self):
        bad = entry(violations=[Violation(monitor="agreement", message="boom")])
        diff = compare_entries(entry(), bad)
        assert diff.regressed
        # And the mirror image — violations fixed — is fine.
        assert not compare_entries(bad, entry()).regressed

    def test_differing_spec_hashes_noted(self):
        a = entry(specs=[RunSpec(algorithm="las_vegas", n=16)])
        b = entry(specs=[RunSpec(algorithm="las_vegas", n=32)])
        diff = compare_entries(a, b)
        assert any("spec hashes differ" in line for line in diff.lines)

    def test_algorithm_only_in_one_entry(self):
        other = make_entry([record("kutten16")])
        diff = compare_entries(entry(), other)
        assert any("only in" in line for line in diff.lines)

    def test_to_dict_roundtrips_through_json(self):
        diff = compare_entries(entry(messages=100), entry(messages=150))
        payload = json.loads(json.dumps(diff.to_dict()))
        assert payload["regressed"] is True


class TestSweepMonitorLedger:
    def test_monitored_sweep_appends_an_entry(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        monitor = SweepMonitor(ledger=path, label="pin")
        specs = [RunSpec(algorithm="las_vegas", n=16, seeds=(0, 1))]
        sweep(specs, monitor=monitor)
        assert monitor.ledger_path == path
        entries = read_ledger(path)
        assert len(entries) == 1
        e = entries[0]
        assert e["label"] == "pin" and e["runs"] == 2
        assert e["spec_hash"] == spec_hash(specs)
        assert e["conformance"]["ok"] is True
        assert e["wall_time_s"] > 0
