"""Live sweep progress: scheduler events, cost-weighted ETA, crash immunity.

The scheduler drives any :class:`ProgressListener`; ``SweepProgress``
accumulates the events (asserted here) and optionally renders a live
line (asserted on a fake TTY stream).  A listener that throws must never
kill the sweep.
"""

import io

from repro.monitor import ProgressListener, SweepProgress
from repro.sweep import RunSpec, sweep
from repro.sweep.scheduler import SweepCell, run_cells


def cell_fn(payload):
    return payload * 10, {}


def cells(costs):
    return [
        SweepCell(index=i, cost=cost, payload=i) for i, cost in enumerate(costs)
    ]


class TestSchedulerEvents:
    def test_inline_run_emits_full_event_stream(self):
        progress = SweepProgress(live=False)
        values = run_cells(cells([4.0, 2.0, 1.0]), cell_fn, progress=progress)
        assert values == [0, 10, 20]
        kinds = [e.kind for e in progress.events]
        assert kinds[0] == "start" and kinds[-1] == "finish"
        assert kinds.count("cell_start") == 3
        assert kinds.count("cell_finish") == 3
        start = progress.events[0]
        assert start.cost == 7.0 and start.slot == 1  # total cost, workers
        assert progress.completed_cells == 3
        assert progress.completed_cost == 7.0
        assert progress.cost_fraction == 1.0

    def test_pooled_run_emits_per_cell_events(self):
        progress = SweepProgress(live=False)
        run_cells(cells([1.0] * 4), cell_fn, workers=2, progress=progress)
        finishes = [e for e in progress.events if e.kind == "cell_finish"]
        assert sorted(e.index for e in finishes) == [0, 1, 2, 3]
        assert all(e.slot is not None for e in finishes)

    def test_eta_appears_after_first_finish(self):
        progress = SweepProgress(live=False)
        run_cells(cells([1.0, 1.0]), cell_fn, progress=progress)
        finishes = [e for e in progress.events if e.kind == "cell_finish"]
        assert finishes[0].eta is not None and finishes[0].eta >= 0.0
        # All cost done: nothing remains.
        assert progress.eta == 0.0

    def test_broken_listener_never_kills_the_sweep(self):
        class Bomb(ProgressListener):
            def cell_finish(self, cell, wall, slot):
                raise RuntimeError("progress bars must be harmless")

        values = run_cells(cells([1.0, 1.0]), cell_fn, progress=Bomb())
        assert values == [0, 10]

    def test_partial_listener_is_enough(self):
        # Duck-typed listeners with a subset of the hooks are fine.
        seen = []

        class Finishes:
            def cell_finish(self, cell, wall, slot):
                seen.append(cell.index)

        run_cells(cells([1.0, 1.0]), cell_fn, progress=Finishes())
        assert sorted(seen) == [0, 1]


class TestSweepIntegration:
    def test_sweep_drives_progress_per_shard(self):
        progress = SweepProgress(live=False)
        records = sweep(
            [RunSpec(algorithm="las_vegas", n=16, seeds=(0, 1, 2))],
            progress=progress,
        )
        assert len(records) == 3
        # One cell per shard; every shard start/finish observed.
        starts = [e for e in progress.events if e.kind == "cell_start"]
        finishes = [e for e in progress.events if e.kind == "cell_finish"]
        assert len(starts) == len(finishes) == progress.total_cells
        assert progress.cost_fraction == 1.0


class TestRendering:
    def make_tty(self):
        stream = io.StringIO()
        stream.isatty = lambda: True
        return stream

    def test_live_auto_detects_tty(self):
        assert SweepProgress(stream=self.make_tty()).live
        assert not SweepProgress(stream=io.StringIO()).live

    def test_live_line_overwrites_and_finishes(self):
        stream = self.make_tty()
        progress = SweepProgress(stream=stream, live=True)
        run_cells(cells([1.0, 1.0]), cell_fn, progress=progress)
        out = stream.getvalue()
        assert "\r" in out
        assert "cells" in out
        assert out.endswith("\n")
        assert "done" in out.splitlines()[-1]

    def test_silent_mode_writes_nothing(self):
        stream = self.make_tty()
        progress = SweepProgress(stream=stream, live=False)
        run_cells(cells([1.0]), cell_fn, progress=progress)
        assert stream.getvalue() == ""

    def test_render_line_states(self):
        progress = SweepProgress(live=False)
        assert "eta --" in progress.render_line()
        progress.start(4, 8.0, 2)
        progress.cell_finish(SweepCell(index=0, cost=2.0, payload=0), 0.1, 0)
        line = progress.render_line()
        assert "1/4 cells" in line
        assert "25.0% cost" in line
        assert "workers=2" in line
        assert "eta" in line
        assert "done" in progress.render_line(final=True)

    def test_utilization_bounded(self):
        progress = SweepProgress(live=False)
        progress.start(1, 1.0, 1)
        # Claim absurd busy time: utilization still capped at 1.
        progress.cell_finish(SweepCell(index=0, cost=1.0, payload=0), 1e6, 0)
        assert progress.utilization == 1.0
