"""Property test: quorum re-election under random crash schedules is safe.

Hypothesis drives ``quorum_reelect`` with arbitrary crash schedules of
``f < n/2`` nodes; the event-level ``unique_leader_per_epoch`` and
``quorum_one_leader`` monitors must stay silent on every run — two
committed leaders simultaneously alive, or a commit without a live
majority, would be exactly the split-brain the quorum layer exists to
rule out.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.adversary import QuorumReElectionElection
from repro.common import SimulationLimitExceeded
from repro.faults import CrashFault, DetectorSpec, FaultPlan, run_failover_trial
from repro.monitor import (
    MonitorSuite,
    QuorumOneLeaderMonitor,
    UniqueLeaderMonitor,
)


@st.composite
def crash_schedules(draw):
    """n, a crash schedule of f < n/2 distinct nodes, and an engine seed."""
    n = draw(st.integers(min_value=4, max_value=9))
    f = draw(st.integers(min_value=0, max_value=(n - 1) // 2))
    nodes = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            unique=True, min_size=f, max_size=f,
        )
    )
    times = draw(
        st.lists(
            st.integers(min_value=1, max_value=12), min_size=f, max_size=f
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**16))
    crashes = tuple(
        CrashFault(node=node, at=float(at)) for node, at in zip(nodes, times)
    )
    return n, crashes, seed


def monitored_trial(n, crashes, seed, *, max_rounds=None):
    plan = FaultPlan(
        crashes=crashes, detector=DetectorSpec(kind="perfect", lag=1.0)
    )
    report = run_failover_trial(
        "sync", n, lambda: QuorumReElectionElection(), plan, seed=seed,
        max_rounds=max_rounds,
    )
    result = report.record.extra["result"]
    suite = MonitorSuite(
        monitors=[UniqueLeaderMonitor(), QuorumOneLeaderMonitor()],
        n=n,
        context={"n": n, "seed": seed, "crashes": len(crashes)},
    )
    suite.replay(report.events).finish(result)
    return report, suite


class TestQuorumSafetyProperty:
    @settings(max_examples=25, deadline=None)
    @given(crash_schedules())
    def test_minority_crashes_never_split_the_brain(self, schedule):
        n, crashes, seed = schedule
        try:
            report, suite = monitored_trial(n, crashes, seed, max_rounds=256)
        except SimulationLimitExceeded:
            # Adversarial crash timing can stall re-election (a liveness
            # edge — e.g. the round-1 coordinator crashing with a second
            # crash queued); this property pins *safety* only, so a
            # stalled run carries no verdict either way.
            assume(False)
        assert suite.ok, [str(v) for v in suite.violations]
        # And the engine's own accounting agrees with the silent monitor.
        assert len(report.record.extra["result"].surviving_leaders) <= 1

    def test_fixed_minority_crash_converges_uniquely(self):
        # A deterministic anchor next to the property: crash 2 of 7
        # (including the initial winner's likely id-range) and require a
        # unique surviving leader, not just the absence of a violation.
        crashes = (CrashFault(node=6, at=4.0), CrashFault(node=0, at=6.0))
        report, suite = monitored_trial(7, crashes, seed=1)
        assert suite.ok
        assert report.unique_surviving_leader
