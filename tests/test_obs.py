"""The observability plane: spooling, the collector, ``top``, HTML reports."""

import io
import json
import os

import pytest

from repro.__main__ import main
from repro.analysis import RunSpec, sweep
from repro.obs import (
    SPOOL_SCHEMA,
    SweepTop,
    collect,
    new_spool_dir,
    read_spool,
    spool_snapshot,
    write_campaign_report,
)
from repro.telemetry import MetricsRegistry


def _grid():
    return [
        RunSpec(algorithm="improved_tradeoff", n=16, seeds=(0, 1)),
        RunSpec(algorithm="afek_gafni", n=16, seeds=(0, 1, 2)),
        RunSpec(algorithm="las_vegas", n=8, seeds=(0,)),
    ]


class TestSpool:
    def test_snapshot_roundtrip(self, tmp_path):
        spool = str(tmp_path / "obs")
        registry = MetricsRegistry()
        registry.counter("sweep.records").inc(3)
        assert spool_snapshot(spool, cell=0, wall_s=0.5, metrics=registry.as_dict())
        assert spool_snapshot(spool, cell=1, wall_s=0.25, metrics=registry.as_dict())
        snapshots = read_spool(spool)
        assert len(snapshots) == 2
        worker, payload = snapshots[0]
        assert worker.startswith("worker-") and payload["cell"] == 0
        assert payload["wall_s"] == 0.5
        # The header line names the schema and is not a snapshot.
        files = os.listdir(spool)
        assert len(files) == 1
        with open(os.path.join(spool, files[0]), encoding="utf-8") as fh:
            header = json.loads(fh.readline())
        assert header["schema"] == SPOOL_SCHEMA

    def test_read_skips_garbage_lines(self, tmp_path):
        spool = tmp_path / "obs"
        spool.mkdir()
        (spool / "worker-1.jsonl").write_text(
            '{"schema": "%s", "pid": 1}\n'
            "not json\n"
            '["a", "list"]\n'
            '{"cell": 4, "wall_s": 0.1, "metrics": {}}\n' % SPOOL_SCHEMA
        )
        snapshots = read_spool(str(spool))
        assert [payload["cell"] for _, payload in snapshots] == [4]

    def test_write_failures_are_swallowed(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("file, not directory")
        assert not spool_snapshot(
            str(target / "spool"), cell=0, wall_s=0.0, metrics={}
        )

    def test_new_spool_dir_is_fresh(self, tmp_path):
        root = str(tmp_path / "obs-root")
        first = new_spool_dir(root, sweep_id="alpha")
        assert os.path.isdir(first)
        assert first == os.path.join(root, "alpha")


class TestCollect:
    def test_report_identical_across_worker_counts(self, tmp_path):
        reports = {}
        for workers in (1, 4):
            spool = str(tmp_path / f"spool-{workers}")
            records = sweep(_grid(), workers=workers, spool_dir=spool)
            assert len(records) == 6
            reports[workers] = collect(spool)
        assert (
            reports[1].canonical_bytes() == reports[4].canonical_bytes()
        )
        report = reports[4]
        assert report.cells >= len(_grid())
        assert report.records == 6
        assert report.messages > 0
        assert report.canonical()["counters"]["sweep.records"] == 6
        # Wall-clock stays out of the canonical projection.
        assert "wall" not in json.dumps(report.canonical()).lower()

    def test_profile_fold_identical_and_populated(self, tmp_path):
        pytest.importorskip("numpy")
        spec = RunSpec(
            algorithm="improved_tradeoff", n=256, engine="fast",
            seeds=(0, 1), profile=True,
        )
        canonicals = []
        for workers in (1, 2):
            spool = str(tmp_path / f"spool-{workers}")
            registry = MetricsRegistry()
            sweep([spec], workers=workers, registry=registry, spool_dir=spool)
            report = collect(spool)
            canonicals.append(report.canonical_bytes())
            # Satellite: child-process profiling folds into the merged
            # registry as profile.<phase> histograms.
            payload = registry.as_dict()
            profile_hists = {
                name: h for name, h in payload["histograms"].items()
                if name.startswith("profile.")
            }
            assert profile_hists, "profile phases missing from merged metrics"
            assert all(h["count"] > 0 for h in profile_hists.values())
            assert set(report.profile) == {
                name[len("profile."):] for name in profile_hists
            }
        assert canonicals[0] == canonicals[1]

    def test_summary_names_workers(self, tmp_path):
        spool = str(tmp_path / "spool")
        sweep(_grid()[:1], workers=1, spool_dir=spool)
        report = collect(spool)
        text = report.summary()
        assert "sweep report:" in text
        assert "worker-" in text

    def test_collect_empty_spool(self, tmp_path):
        spool = tmp_path / "empty"
        spool.mkdir()
        report = collect(str(spool))
        assert report.cells == 0 and report.records == 0


class _TtyStream(io.StringIO):
    def isatty(self):
        return True


class TestSweepTop:
    def test_multiline_dashboard_on_tty(self):
        stream = _TtyStream()
        top = SweepTop(stream=stream, live=True)
        assert top.multiline
        sweep(_grid()[:2], workers=1, progress=top)
        top.finalize()
        out = stream.getvalue()
        assert "worker 0" in out
        assert "cells/s" in out
        assert "monitor: (none attached)" in out

    def test_monitor_row_after_finalize(self):
        from repro.monitor import SweepMonitor

        stream = _TtyStream()
        monitor = SweepMonitor()
        top = SweepTop(stream=stream, live=True, monitor=monitor)
        sweep(_grid()[:2], workers=1, progress=top, monitor=monitor)
        top.finalize(monitor)
        final = stream.getvalue()
        assert "conformance 5/5" in final

    def test_degrades_to_one_line_off_tty(self):
        stream = io.StringIO()  # not a TTY
        top = SweepTop(stream=stream, live=True)
        assert not top.multiline
        sweep(_grid()[:1], workers=1, progress=top)
        out = stream.getvalue()
        assert "worker 0" not in out  # parent's one-line rendering only
        assert "\x1b[2K" not in out or "\n" in out

    def test_cli_top_offline(self, capsys):
        assert main([
            "top", "--algorithms", "improved_tradeoff", "--ns", "16",
            "--seeds", "0", "--workers", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "sweep report:" in out
        assert "conformance: 2/2" in out or "conformance" in out


class TestHtmlReport:
    def _ledger(self, tmp_path):
        ledger = str(tmp_path / "ledger.jsonl")
        from repro.monitor import SweepMonitor

        monitor = SweepMonitor(ledger=ledger, label="unit")
        sweep(_grid(), workers=1, monitor=monitor)
        return ledger

    def test_report_is_self_contained(self, tmp_path):
        ledger = self._ledger(tmp_path)
        out = str(tmp_path / "report.html")
        assert write_campaign_report(out, ledger_path=ledger) == out
        with open(out, encoding="utf-8") as fh:
            html = fh.read()
        # Standalone: no external fetches of any kind.
        assert "http://" not in html and "https://" not in html
        assert "<script src" not in html and "link rel" not in html
        # Ledger and tradeoff sections are populated.
        assert "Run ledger" in html and "unit" in html
        assert "Messages vs rounds" in html
        assert html.count('class="pt"') >= 3  # one point per algorithm
        assert 'class="envelope"' in html  # theorem guides
        assert "Critical paths" in html

    def test_report_ranks_critical_paths(self, tmp_path, capsys):
        ledger = self._ledger(tmp_path)
        trace = str(tmp_path / "t.jsonl")
        assert main(["trace", "record", "improved_tradeoff", "--n", "16",
                     "--seed", "0", "-o", trace]) == 0
        capsys.readouterr()
        out = str(tmp_path / "report.html")
        write_campaign_report(out, ledger_path=ledger, traces=(trace,))
        with open(out, encoding="utf-8") as fh:
            html = fh.read()
        assert "causal summary" in html
        assert "critical path 4 rounds" in html

    def test_empty_ledger_still_renders(self, tmp_path):
        out = str(tmp_path / "report.html")
        write_campaign_report(
            out,
            ledger_path=str(tmp_path / "missing.jsonl"),
            bench_dirs=(str(tmp_path / "nothing"),),
        )
        with open(out, encoding="utf-8") as fh:
            html = fh.read()
        assert "the ledger is empty" in html
        assert "no BENCH_" in html

    def test_cli_report_html(self, tmp_path, capsys):
        ledger = self._ledger(tmp_path)
        out = str(tmp_path / "cli.html")
        assert main(["report", "--html", out, "--ledger", ledger]) == 0
        assert "wrote" in capsys.readouterr().out
        assert os.path.getsize(out) > 1000

    def test_bench_baselines_section(self, tmp_path):
        bench_dir = tmp_path / "baselines"
        bench_dir.mkdir()
        (bench_dir / "BENCH_demo.json").write_text(
            json.dumps({"bench": "demo", "metrics": {"messages": 123.0}})
        )
        out = str(tmp_path / "report.html")
        write_campaign_report(
            out,
            ledger_path=str(tmp_path / "missing.jsonl"),
            bench_dirs=(str(bench_dir),),
        )
        with open(out, encoding="utf-8") as fh:
            html = fh.read()
        assert "demo" in html and "123" in html


class TestHistoryPrune:
    def test_prune_keeps_newest(self, tmp_path, capsys):
        ledger = str(tmp_path / "ledger.jsonl")
        from repro.monitor import SweepMonitor

        for label in ("first", "second", "third"):
            monitor = SweepMonitor(ledger=ledger, label=label)
            sweep(_grid()[:1], workers=1, monitor=monitor)
        assert main(["history", "prune", "--keep", "2",
                     "--ledger", ledger]) == 0
        assert "kept 2, dropped 1" in capsys.readouterr().out
        from repro.monitor import read_ledger

        labels = [e["label"] for e in read_ledger(ledger)]
        assert labels == ["second", "third"]

    def test_prune_rejects_negative(self, tmp_path, capsys):
        assert main(["history", "prune", "--keep", "-1",
                     "--ledger", str(tmp_path / "l.jsonl")]) == 2
        assert "keep must be" in capsys.readouterr().err

    def test_history_still_lists_without_subcommand(self, tmp_path, capsys):
        assert main(["history", "--ledger", str(tmp_path / "l.jsonl")]) == 0
        assert "is empty" in capsys.readouterr().out
