"""PartitionMask: plan validation, runtime blocking, detector awareness."""

import pytest

from repro.faults import (
    DetectorSpec,
    FaultPlan,
    FaultRuntime,
    LinkFaults,
    MonarchicalElection,
    PartitionMask,
    ReElectionElection,
    make_detector,
)
from repro.analysis.runner import run_async_trial, run_sync_trial


class TestMaskValidation:
    def test_basic_properties(self):
        mask = PartitionMask(components=((0, 1), (2, 3)), start=2.0, end=6.0)
        assert mask.component_of(0) == 0
        assert mask.component_of(3) == 1
        assert mask.component_of(9) is None
        assert not mask.active(1.9)
        assert mask.active(2.0)
        assert not mask.active(6.0)  # heal is automatic at end

    def test_blocks_cross_component_only(self):
        mask = PartitionMask(components=((0, 1), (2,)), start=0.0)
        assert mask.blocks(0, 2, 5.0)
        assert not mask.blocks(0, 1, 5.0)
        assert mask.blocks(3, 0, 5.0)  # unlisted nodes are isolated
        assert mask.blocks(3, 4, 5.0)

    def test_endless_mask_never_heals(self):
        mask = PartitionMask(components=((0,), (1,)), start=1.0, end=None)
        assert mask.active(1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionMask(components=())
        with pytest.raises(ValueError):
            PartitionMask(components=((0, 1), (1, 2)))
        with pytest.raises(ValueError):
            PartitionMask(components=((0,), ()))
        with pytest.raises(ValueError):
            PartitionMask(components=((0,), (1,)), start=3.0, end=3.0)
        plan = FaultPlan(partitions=(PartitionMask(components=((0,), (9,))),))
        with pytest.raises(ValueError, match="out of range"):
            plan.validate_for(4)
        assert plan.has_partitions


class TestRuntimeBlocking:
    def plan(self, **kwargs):
        return FaultPlan(
            partitions=(PartitionMask(components=((0, 1), (2, 3)), **kwargs),)
        )

    def test_window_respected(self):
        rt = FaultRuntime(self.plan(start=2.0, end=6.0), 4, [1, 2, 3, 4], seed=0)
        assert rt.deliveries(0, 2, "x", now=1.0) == 1   # before the window
        assert rt.deliveries(0, 2, "x", now=2.0) == 0   # inside
        assert rt.deliveries(0, 1, "x", now=3.0) == 1   # same component
        assert rt.deliveries(0, 2, "x", now=6.0) == 1   # healed
        assert rt.metrics.partition_blocked == 1

    def test_partition_consumes_no_randomness(self):
        """A mask must not perturb the link-fault RNG stream."""
        lossy = (LinkFaults(drop_prob=0.5),)
        with_mask = FaultPlan(
            links=lossy,
            partitions=(PartitionMask(components=((0, 1), (2, 3)), start=100.0),),
        )
        without_mask = FaultPlan(links=lossy)
        rt_a = FaultRuntime(with_mask, 4, [1, 2, 3, 4], seed=7)
        rt_b = FaultRuntime(without_mask, 4, [1, 2, 3, 4], seed=7)
        fates_a = [rt_a.deliveries(0, 1, "x", now=1.0) for _ in range(64)]
        fates_b = [rt_b.deliveries(0, 1, "x", now=1.0) for _ in range(64)]
        assert fates_a == fates_b


class TestPartitionAwareDetectors:
    def detector(self, node, lag=1.0, end=8.0):
        spec = DetectorSpec(kind="perfect", lag=lag)
        mask = PartitionMask(components=((0, 1), (2, 3)), start=2.0, end=end)
        return make_detector(spec, node, [1, 2, 3, 4], None, partitions=(mask,))

    def test_suspects_cross_component_during_window(self):
        det = self.detector(0)
        assert det.suspects(2.5) == frozenset()          # lag not yet elapsed
        assert det.suspects(3.0) == frozenset({3, 4})    # other side suspected
        assert det.suspects(9.0) == frozenset()          # heal + lag forgives

    def test_alive_and_trusted_follow_the_component(self):
        det = self.detector(3)
        assert det.alive(3.0) == [3, 4]
        assert det.trusted(3.0) == 4

    def test_last_transition_tracks_partition_edges(self):
        det = self.detector(0)
        assert det.last_transition(2.0) == 0.0
        assert det.last_transition(3.5) == 3.0   # start + lag
        assert det.last_transition(10.0) == 9.0  # end + lag


class TestPartitionedElections:
    def test_monarchical_sync_elects_per_component(self):
        plan = FaultPlan(
            partitions=(PartitionMask(components=((0, 1, 2), (3, 4, 5)), start=0.0),),
            detector=DetectorSpec(kind="perfect", lag=1.0),
        )
        record = run_sync_trial(
            6, lambda: MonarchicalElection(stable_rounds=3), seed=1,
            faults=plan, keep_result=True,
        )
        result = record.extra["result"]
        assert sorted(result.leader_ids) == [3, 6]
        assert result.outputs == [3, 3, 3, 6, 6, 6]

    def test_reelect_sync_elects_per_component(self):
        plan = FaultPlan(
            partitions=(PartitionMask(components=((0, 1, 2), (3, 4, 5)), start=0.0),),
            detector=DetectorSpec(kind="perfect", lag=1.0),
        )
        record = run_sync_trial(
            6,
            lambda: ReElectionElection(inner="afek_gafni", commit_rounds=3),
            seed=1,
            faults=plan,
            keep_result=True,
        )
        result = record.extra["result"]
        assert sorted(result.leader_ids) == [3, 6]

    def test_reelect_async_elects_per_component(self):
        from repro.faults import AsyncReElectionElection

        plan = FaultPlan(
            partitions=(PartitionMask(components=((0, 1, 2), (3, 4, 5)), start=0.0),),
            detector=DetectorSpec(kind="perfect", lag=1.0),
        )
        record = run_async_trial(
            6,
            lambda: AsyncReElectionElection(inner="async_tradeoff", commit_delay=3.0),
            seed=1,
            faults=plan,
            wake_times={u: 0.0 for u in range(6)},
            max_events=500_000,
            keep_result=True,
        )
        result = record.extra["result"]
        assert len(result.leader_ids) == 2
        # One leader per component, every node follows its own side.
        left = {result.outputs[u] for u in (0, 1, 2)}
        right = {result.outputs[u] for u in (3, 4, 5)}
        assert len(left) == 1 and len(right) == 1
        assert left != right

    def test_healing_mask_lets_a_late_election_cross(self):
        # A partition that heals before the election finishes does not
        # wedge it: messages after `end` flow again.
        plan = FaultPlan(
            partitions=(
                PartitionMask(components=((0, 1), (2, 3)), start=0.0, end=2.0),
            ),
            detector=DetectorSpec(kind="perfect", lag=1.0),
        )
        record = run_sync_trial(
            4, lambda: MonarchicalElection(stable_rounds=6), seed=1,
            faults=plan, keep_result=True,
        )
        result = record.extra["result"]
        # After heal + stability window everyone converges on the max.
        assert result.leader_ids == [4]
