"""ASCII plotting and the Table 1 report generator."""

import pytest

from repro.analysis import bar_chart, scatter
from repro.analysis.report import table1_report


class TestBarChart:
    def test_log_scale_bars(self):
        text = bar_chart([("a", 10.0), ("b", 1000.0)], width=20)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") > lines[0].count("#")
        assert "1,000" in lines[1]

    def test_linear_scale(self):
        text = bar_chart([("x", 5.0), ("y", 10.0)], width=10, log=False)
        lines = text.splitlines()
        assert lines[1].count("#") == 2 * lines[0].count("#")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([])

    def test_unit_suffix(self):
        assert "ms" in bar_chart([("a", 3.0)], unit="ms")


class TestScatter:
    def test_markers_and_legend(self):
        text = scatter(
            {"lb": [(10, 100), (100, 1000)], "ub": [(10, 500), (100, 20000)]},
            width=30,
            height=8,
        )
        assert "o=lb" in text
        assert "x=ub" in text
        assert text.count("o") >= 2  # both lb points rendered (plus legend)

    def test_extremes_on_borders(self):
        text = scatter({"s": [(1, 1), (1000, 1000)]}, width=20, height=5)
        grid_lines = [line for line in text.splitlines() if line.startswith("|")]
        assert grid_lines[0].rstrip("|").endswith("o")  # max in top-right
        assert grid_lines[-1].lstrip("|").startswith("o")  # min bottom-left

    def test_log_requires_positive(self):
        with pytest.raises(ValueError):
            scatter({"s": [(0, 1)]})

    def test_linear_axes(self):
        text = scatter({"s": [(0, 0), (10, 5)]}, logx=False, logy=False)
        assert "linear" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            scatter({})

    def test_title_shown(self):
        assert scatter({"s": [(1, 1), (2, 2)]}, title="frontier").startswith("frontier")


class TestTable1Report:
    @pytest.fixture(scope="class")
    def report_text(self):
        return table1_report(n=128, seeds=(0,)).render()

    def test_every_row_group_present(self, report_text):
        for fragment in (
            "LB Thm 3.8",
            "Alg Thm 3.10 (ell=3)",
            "Alg Thm 3.10 (ell=5)",
            "LB Thm 3.11",
            "Alg Thm 3.15",
            "Alg [1] AG",
            "LB [1]",
            "Alg Thm 3.16 (Las Vegas)",
            "LB Thm 3.16",
            "Alg [16] (Monte Carlo)",
            "Alg Thm 4.1",
            "LB Thm 4.2",
            "Alg Thm 5.1 (k=2)",
            "Alg Thm 5.1 (k=4)",
            "Alg [14]",
            "Alg Thm 5.14",
        ):
            assert fragment in report_text, fragment

    def test_sections_match_paper_groups(self, report_text):
        assert "synchronous / deterministic / simultaneous wake-up" in report_text
        assert "synchronous / deterministic / adversarial wake-up" in report_text
        assert "synchronous / randomized / simultaneous wake-up" in report_text
        assert "synchronous / randomized / adversarial wake-up" in report_text
        assert "asynchronous / randomized" in report_text

    def test_deterministic_rows_always_succeed(self, report_text):
        # the deterministic algorithms must print success == yes
        for line in report_text.splitlines():
            if line.startswith(("Alg Thm 3.10", "Alg Thm 3.15", "Alg [1] AG", "Alg Thm 5.14")):
                assert line.rstrip().endswith("yes"), line

    def test_cli_report_command(self, capsys):
        from repro.__main__ import main

        assert main(["report", "--n", "64", "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "Table 1, regenerated at n=64" in out
