"""The clique port model (repro.net.ports)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.ports import (
    CallbackPortPolicy,
    CanonicalPortMap,
    LazyPortMap,
    PortMapExhausted,
    SequentialPortPolicy,
    random_port_map,
)


class TestCanonicalPortMap:
    def test_involution(self):
        pm = CanonicalPortMap(7)
        for u in range(7):
            for i in range(6):
                v, j = pm.resolve(u, i)
                assert pm.resolve(v, j) == (u, i)

    def test_each_port_distinct_peer(self):
        pm = CanonicalPortMap(9)
        for u in range(9):
            peers = {pm.peer(u, i) for i in range(8)}
            assert peers == set(range(9)) - {u}

    def test_always_resolved(self):
        pm = CanonicalPortMap(4)
        assert pm.is_resolved(2, 1)

    def test_bad_port_rejected(self):
        pm = CanonicalPortMap(4)
        with pytest.raises(ValueError):
            pm.resolve(0, 3)
        with pytest.raises(ValueError):
            pm.resolve(4, 0)


class TestLazyPortMapRandom:
    def test_involution_after_resolution(self):
        pm = random_port_map(16, random.Random(0))
        endpoints = {}
        for u in range(16):
            for i in range(5):
                endpoints[(u, i)] = pm.resolve(u, i)
        for (u, i), (v, j) in endpoints.items():
            assert pm.resolve(v, j) == (u, i)

    def test_resolution_is_stable(self):
        pm = random_port_map(8, random.Random(1))
        first = pm.resolve(3, 2)
        for _ in range(5):
            assert pm.resolve(3, 2) == first

    def test_one_link_per_pair(self):
        pm = random_port_map(8, random.Random(2))
        peers = [pm.peer(0, i) for i in range(7)]
        assert sorted(peers) == [1, 2, 3, 4, 5, 6, 7]

    def test_exhaustion(self):
        pm = random_port_map(3, random.Random(3))
        for i in range(2):
            pm.resolve(0, i)
        # all peers of node 0 are now linked; resolving via policy for
        # another node is fine, but node 0 has no ports left anyway.
        with pytest.raises(ValueError):
            pm.resolve(0, 2)

    def test_link_count(self):
        pm = random_port_map(10, random.Random(4))
        pm.resolve(0, 0)
        pm.resolve(1, 5)
        assert pm.link_count() in (1, 2)  # (1,5) may have hit node 0

    def test_bound_port_count(self):
        pm = random_port_map(10, random.Random(5))
        assert pm.bound_port_count(0) == 0
        pm.resolve(0, 3)
        assert pm.bound_port_count(0) == 1

    @given(st.integers(2, 24), st.integers(0, 10))
    @settings(max_examples=25, deadline=None)
    def test_full_resolution_is_perfect_matching(self, n, seed):
        pm = random_port_map(n, random.Random(seed))
        seen = set()
        for u in range(n):
            for i in range(n - 1):
                v, j = pm.resolve(u, i)
                assert v != u
                seen.add((min(u, v), max(u, v)))
        assert len(seen) == n * (n - 1) // 2


class TestSequentialPolicy:
    def test_connects_to_smallest(self):
        pm = LazyPortMap(6, SequentialPortPolicy())
        assert pm.peer(3, 0) == 0
        assert pm.peer(3, 1) == 1
        assert pm.peer(3, 2) == 2
        assert pm.peer(3, 3) == 4  # 3 itself skipped

    def test_respects_existing_links(self):
        pm = LazyPortMap(4, SequentialPortPolicy())
        pm.force_link(1, 0, 0, 2)
        assert pm.peer(1, 1) == 2  # 0 already linked


class TestForceLink:
    def test_force_then_resolve(self):
        pm = random_port_map(5, random.Random(0))
        pm.force_link(0, 1, 3, 2)
        assert pm.resolve(0, 1) == (3, 2)
        assert pm.resolve(3, 2) == (0, 1)

    def test_force_duplicate_pair_rejected(self):
        pm = random_port_map(5, random.Random(0))
        pm.force_link(0, 1, 3, 2)
        with pytest.raises(PortMapExhausted):
            pm.force_link(0, 2, 3, 3)

    def test_force_bound_port_rejected(self):
        pm = random_port_map(5, random.Random(0))
        pm.force_link(0, 1, 3, 2)
        with pytest.raises(PortMapExhausted):
            pm.force_link(0, 1, 2, 0)

    def test_self_link_rejected(self):
        pm = random_port_map(5, random.Random(0))
        with pytest.raises(ValueError):
            pm.force_link(2, 0, 2, 1)


class TestCallbackPolicy:
    def test_callback_controls_peer(self):
        calls = []

        def choose(pm, u, port):
            calls.append((u, port))
            return (u + 2) % pm.n

        pm = LazyPortMap(7, CallbackPortPolicy(choose))
        assert pm.peer(1, 0) == 3
        assert calls == [(1, 0)]

    def test_invalid_callback_peer_raises(self):
        pm = LazyPortMap(4, CallbackPortPolicy(lambda pm_, u, p: u))
        with pytest.raises(PortMapExhausted):
            pm.resolve(0, 0)

    def test_callback_peer_port(self):
        policy = CallbackPortPolicy(lambda pm_, u, p: 2, lambda pm_, u, p, v: 1)
        pm = LazyPortMap(4, policy)
        assert pm.resolve(0, 0) == (2, 1)


class TestHelpers:
    def test_first_free_port_skips_bound(self):
        pm = random_port_map(5, random.Random(0))
        pm.force_link(1, 0, 2, 0)
        assert pm.first_free_port(2) == 1

    def test_random_free_port_all_bound(self):
        pm = LazyPortMap(3, SequentialPortPolicy())
        pm.resolve(0, 0)
        pm.resolve(0, 1)
        with pytest.raises(PortMapExhausted):
            pm.random_free_port(0, random.Random(0))

    def test_random_unlinked_peer_none_left(self):
        pm = LazyPortMap(3, SequentialPortPolicy())
        pm.resolve(0, 0)
        pm.resolve(0, 1)
        with pytest.raises(PortMapExhausted):
            pm.random_unlinked_peer(0, random.Random(0))

    def test_linked_peers(self):
        pm = random_port_map(6, random.Random(9))
        v, _ = pm.resolve(0, 0)
        assert set(pm.linked_peers(0)) == {v}
