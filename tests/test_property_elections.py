"""Cross-algorithm property-based invariants (hypothesis).

These are the paper's Section 2 requirements, checked uniformly across
every algorithm: never more than one leader; decisions are never revoked;
message conservation (everything delivered was sent); determinism per
seed.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.asyncnet.engine import AsyncNetwork
from repro.core import (
    AdversarialTwoRoundElection,
    AfekGafniElection,
    AsyncAfekGafniElection,
    AsyncTradeoffElection,
    ImprovedTradeoffElection,
    Kutten16Election,
    LasVegasElection,
    SmallIdElection,
)
from repro.ids import assign_random, small_universe
from repro.sync.engine import SyncNetwork
from repro.trace import MemoryRecorder

from tests.helpers import make_ids

SYNC_CASES = [
    ("improved3", lambda n, rng: ImprovedTradeoffElection(ell=3), None),
    ("improved7", lambda n, rng: ImprovedTradeoffElection(ell=7), None),
    ("afek_gafni", lambda n, rng: AfekGafniElection(ell=4), None),
    ("kutten16", lambda n, rng: Kutten16Election(), None),
    ("las_vegas", lambda n, rng: LasVegasElection(), None),
    (
        "adversarial2r",
        lambda n, rng: AdversarialTwoRoundElection(epsilon=0.1),
        lambda n, rng: rng.sample(range(n), rng.randint(1, n)),
    ),
]


@pytest.mark.parametrize("name,make,awake_fn", SYNC_CASES, ids=[c[0] for c in SYNC_CASES])
@given(n=st.integers(4, 96), seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_sync_at_most_one_leader_and_sane_accounting(name, make, awake_fn, n, seed):
    rng = random.Random(seed)
    awake = awake_fn(n, rng) if awake_fn else None
    rec = MemoryRecorder()
    net = SyncNetwork(
        n,
        lambda: make(n, rng),
        ids=make_ids(n, seed),
        seed=seed,
        awake=awake,
        recorder=rec,
        max_rounds=3000,
    )
    result = net.run()
    # safety: never two leaders
    assert len(result.leaders) <= 1
    # accounting: recorder sends == metric sends; delivered <= sent
    assert len(rec.of_kind("send")) == result.messages
    # decisions only from awake nodes
    assert result.decided_count <= result.awake_count
    # time metric sanity
    assert result.last_send_round <= result.rounds_executed


@given(n=st.integers(4, 64), seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_small_id_always_elects_minimum(n, seed):
    rng = random.Random(seed)
    g = rng.randint(1, 3)
    d = rng.randint(1, n)
    ids = assign_random(small_universe(n, g), n, rng)
    result = SyncNetwork(
        n, lambda: SmallIdElection(d=d, g=g), ids=ids, seed=seed
    ).run()
    assert result.unique_leader
    assert result.elected_id == min(ids)


ASYNC_CASES = [
    ("async_k2", lambda: AsyncTradeoffElection(k=2), False),
    ("async_k4", lambda: AsyncTradeoffElection(k=4), False),
    ("async_ag", AsyncAfekGafniElection, True),
]


@pytest.mark.parametrize("name,factory,simultaneous", ASYNC_CASES, ids=[c[0] for c in ASYNC_CASES])
@given(n=st.integers(4, 64), seed=st.integers(0, 10_000))
@settings(max_examples=12, deadline=None)
def test_async_at_most_one_leader(name, factory, simultaneous, n, seed):
    wake_times = {u: 0.0 for u in range(n)} if simultaneous else None
    result = AsyncNetwork(
        n,
        factory,
        ids=make_ids(n, seed),
        seed=seed,
        wake_times=wake_times,
        max_events=2_000_000,
    ).run()
    assert len(result.leaders) <= 1
    if name == "async_ag":
        assert result.unique_leader  # deterministic safety + liveness


@given(seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_sync_runs_are_reproducible(seed):
    def once():
        rec = MemoryRecorder()
        result = SyncNetwork(
            48, Kutten16Election, seed=seed, recorder=rec
        ).run()
        return result.messages, result.leaders, len(rec.events)

    assert once() == once()


@given(seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_async_runs_are_reproducible(seed):
    def once():
        result = AsyncNetwork(
            48, lambda: AsyncTradeoffElection(k=2), seed=seed, max_events=2_000_000
        ).run()
        return result.messages, result.leaders, result.time

    assert once() == once()


@given(n=st.integers(2, 64), seed=st.integers(0, 1000))
@settings(max_examples=15, deadline=None)
def test_deterministic_algorithms_ignore_node_rng(n, seed):
    """The deterministic algorithms' outcome depends only on IDs (not on
    the engine seed) once the port mapping is fixed."""
    from repro.net.ports import CanonicalPortMap

    ids = make_ids(n, seed)
    outcomes = set()
    for engine_seed in (seed, seed + 1):
        result = SyncNetwork(
            n,
            lambda: ImprovedTradeoffElection(ell=3),
            ids=ids,
            seed=engine_seed,
            port_map=CanonicalPortMap(n),
        ).run()
        outcomes.add((result.elected_id, result.messages, result.last_send_round))
    assert len(outcomes) == 1
