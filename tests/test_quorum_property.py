"""Quorum safety, property-tested: one epoch never commits two leaders.

The protocol argument of ``quorum_reelect`` reduces to two facts about
:class:`~repro.adversary.QuorumPolicy` + :class:`~repro.adversary.VoteLedger`:
majority quorums intersect, and a voter's vote binds once per epoch.
Hypothesis drives the ledger with adversarial schedules — arbitrary
partitions deciding who can reach whom, slander deciding who *tries* to
vote for whom, Byzantine voters re-voting for every candidate — and the
commit set per epoch must never exceed one.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import QuorumPolicy, VoteLedger


class TestQuorumPolicy:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 9, 100, 101])
    def test_majority_size(self, n):
        policy = QuorumPolicy(n=n)
        assert policy.quorum_size == n // 2 + 1
        assert 2 * policy.quorum_size > n  # two quorums always intersect

    @pytest.mark.parametrize("threshold", [0.5, 0.6, 0.75, 0.99])
    @pytest.mark.parametrize("n", [3, 10, 33])
    def test_threshold_sizes_intersect(self, n, threshold):
        policy = QuorumPolicy(n=n, threshold=threshold)
        assert policy.quorum_size > threshold * n
        assert 2 * policy.quorum_size > n

    def test_rejects_sub_majority_threshold(self):
        with pytest.raises(ValueError, match="majority"):
            QuorumPolicy(n=9, threshold=0.4)

    def test_rejects_empty_membership(self):
        with pytest.raises(ValueError):
            QuorumPolicy(n=0)

    def test_satisfied(self):
        policy = QuorumPolicy(n=9)
        assert not policy.satisfied(4)
        assert not policy.satisfied(policy.quorum_size - 1)
        assert policy.satisfied(policy.quorum_size)
        assert policy.satisfied(9)


class TestVoteLedger:
    def test_vote_once(self):
        ledger = VoteLedger(QuorumPolicy(n=5))
        assert ledger.grant(0, voter=1, candidate="a")
        # A re-vote (equivocated or replayed ack) binds to the first grant.
        assert not ledger.grant(0, voter=1, candidate="b")
        assert ledger.tally(0, "a") == 1
        assert ledger.tally(0, "b") == 0

    def test_votes_are_per_epoch(self):
        ledger = VoteLedger(QuorumPolicy(n=5))
        ledger.grant(0, voter=1, candidate="a")
        assert ledger.grant(1, voter=1, candidate="b")

    def test_commit_requires_quorum(self):
        ledger = VoteLedger(QuorumPolicy(n=5))
        for voter in range(2):
            ledger.grant(0, voter, "a")
        assert not ledger.commit(0, "a")
        ledger.grant(0, 2, "a")
        assert ledger.commit(0, "a")
        assert ledger.commits_in(0) == {"a"}


@st.composite
def vote_schedules(draw):
    """An adversarial grant schedule over one membership.

    Every voter may try to vote many times for many candidates across
    several epochs — modeling slander-driven re-elections, partitioned
    sub-elections, equivocated acks and replayed acks all at once.  The
    ledger's vote-once rule is the only defense in play.
    """
    n = draw(st.integers(min_value=2, max_value=25))
    threshold = draw(st.sampled_from([0.5, 0.6, 2 / 3]))
    grants = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),      # epoch
                st.integers(min_value=0, max_value=n - 1),  # voter
                st.integers(min_value=0, max_value=n - 1),  # candidate
            ),
            max_size=200,
        )
    )
    return n, threshold, grants


class TestSafetyProperty:
    @settings(max_examples=300, deadline=None)
    @given(vote_schedules())
    def test_no_two_leaders_per_epoch(self, schedule):
        n, threshold, grants = schedule
        ledger = VoteLedger(QuorumPolicy(n=n, threshold=threshold))
        for epoch, voter, candidate in grants:
            ledger.grant(epoch, voter, candidate)
            # The adversary tries to commit everyone after every grant.
            for contender in range(n):
                ledger.commit(epoch, contender)
        for epoch in range(4):
            committed = ledger.commits_in(epoch)
            assert len(committed) <= 1, (n, threshold, epoch, committed)

    @settings(max_examples=200, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=31),
        threshold=st.sampled_from([0.5, 0.6, 2 / 3]),
        data=st.data(),
    )
    def test_partitioned_components_cannot_both_commit(self, n, threshold, data):
        """Split the voters; each side votes unanimously for its own
        candidate.  At most one side can ever reach quorum."""
        cut = data.draw(st.integers(min_value=1, max_value=n - 1))
        ledger = VoteLedger(QuorumPolicy(n=n, threshold=threshold))
        for voter in range(cut):
            ledger.grant(0, voter, "left")
        for voter in range(cut, n):
            ledger.grant(0, voter, "right")
        ledger.commit(0, "left")
        ledger.commit(0, "right")
        assert len(ledger.commits_in(0)) <= 1
        # And the arithmetic behind it: both sides holding a quorum would
        # need more voters than exist.
        q = ledger.policy.quorum_size
        assert not (cut >= q and n - cut >= q)

    @settings(max_examples=100, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=25),
        data=st.data(),
    )
    def test_byzantine_double_voters_cannot_double_commit(self, n, data):
        """f < n/2 Byzantine voters vote for *both* candidates; the
        ledger binds each to its first vote, so safety holds."""
        f = data.draw(st.integers(min_value=1, max_value=(n - 1) // 2))
        ledger = VoteLedger(QuorumPolicy(n=n))
        byzantine = list(range(f))
        honest = list(range(f, n))
        half = len(honest) // 2
        for voter in byzantine:
            ledger.grant(0, voter, "a")
            ledger.grant(0, voter, "b")  # the double vote: must not bind
        for voter in honest[:half]:
            ledger.grant(0, voter, "a")
        for voter in honest[half:]:
            ledger.grant(0, voter, "b")
        ledger.commit(0, "a")
        ledger.commit(0, "b")
        assert len(ledger.commits_in(0)) <= 1
