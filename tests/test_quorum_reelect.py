"""The Byzantine-tolerant ``quorum_reelect`` wrapper, on both engines.

Covers the three Byzantine-closing behaviors (abstention below quorum,
ack-gated commits, coord catch-up for slandered stragglers) and the
acceptance bar: convergence under f < n/2 combined crash + slander
adversaries, with the plain wrapper's failure modes pinned alongside.
"""

import pytest

from repro.adversary import (
    AdversaryPlan,
    AsyncQuorumReElectionElection,
    QuorumReElectionElection,
    SlanderWindow,
)
from repro.common import Decision, SimulationLimitExceeded
from repro.faults import (
    CrashFault,
    DetectorSpec,
    FaultPlan,
    PartitionMask,
    ReElectionElection,
    run_failover_trial,
)


def sync_trial(n, plan, seed=0, **params):
    return run_failover_trial(
        "sync", n, lambda: QuorumReElectionElection(**params), plan, seed=seed
    )


def async_trial(n, plan, seed=0, **params):
    return run_failover_trial(
        "async", n, lambda: AsyncQuorumReElectionElection(**params), plan,
        seed=seed, wake_times={u: 0.0 for u in range(n)}, max_events=5_000_000,
    )


def slander_plan(n, f, crash_node=None, crash_at=6.0, start=2.0, end=None):
    """Slander the f top-ID nodes (+ optionally crash one other node)."""
    crashes = () if crash_node is None else (CrashFault(node=crash_node, at=crash_at),)
    return FaultPlan(
        crashes=crashes,
        detector=DetectorSpec(kind="perfect", lag=1.0),
        adversary=AdversaryPlan(
            byzantine=(0,),
            slanders=(
                SlanderWindow(accuser=0, victims=tuple(range(n - f, n)),
                              start=start, end=end),
            ),
        ),
    )


class TestSlanderTolerance:
    @pytest.mark.parametrize("n,f", [(5, 1), (9, 2), (9, 3), (12, 4)])
    def test_sync_survives_slander(self, n, f):
        report = sync_trial(n, slander_plan(n, f))
        assert report.unique_surviving_leader
        # The slandered victims are alive: they must follow, not contest.
        result = report.record.extra["result"]
        assert result.decided_count == n
        leader = report.surviving_leader_id
        for u in range(n - f, n):
            assert result.decisions[u] is Decision.NON_LEADER
            assert result.outputs[u] == leader

    @pytest.mark.parametrize("n,f", [(5, 1), (9, 2)])
    def test_async_survives_slander(self, n, f):
        report = async_trial(n, slander_plan(n, f))
        assert report.unique_surviving_leader
        result = report.record.extra["result"]
        leader = report.surviving_leader_id
        for u in range(n - f, n):
            assert result.decisions[u] is Decision.NON_LEADER
            assert result.outputs[u] == leader

    @pytest.mark.parametrize("engine_trial", [sync_trial, async_trial])
    def test_survives_combined_crash_and_slander(self, engine_trial):
        """The acceptance bar: f < n/2 crash + slander adversaries."""
        n = 9
        for seed in (0, 1, 2):
            report = engine_trial(n, slander_plan(n, 2, crash_node=3), seed=seed)
            assert report.unique_surviving_leader, seed
            assert report.crashes == 1

    def test_slandered_monarch_is_deposed_but_agrees(self):
        """Slander the max-ID node: the quorum elects the runner-up and
        the alive victim adopts it through coord catch-up."""
        n = 7
        report = sync_trial(n, slander_plan(n, 1))
        assert report.surviving_leader_id == n - 1  # runner-up id
        result = report.record.extra["result"]
        assert result.outputs[n - 1] == n - 1  # the victim follows it

    @pytest.mark.parametrize("start", [4.0, 6.0, 7.0, 8.0, 10.0])
    def test_mid_commit_slander_cannot_split_the_brain(self, start):
        """Regression: slander landing *inside* the first leader's commit
        window once produced two committed leaders across epochs (the
        victim committed epoch 0 on stale acks while the majority
        elected epoch 1).  The live-quorum rule — acks expire per commit
        round, and followers only ack their current epoch — makes the
        overtaken commit starve, and the new reign's all-port coord
        sweeps the victim up as a follower."""
        n = 7
        for seed in (0, 1):
            report = sync_trial(
                n, slander_plan(n, 1, start=start), seed=seed
            )
            result = report.record.extra["result"]
            assert len(result.surviving_leaders) == 1, (start, seed)

    def test_plain_reelect_breaks_under_slander(self):
        """The hole the quorum wrapper closes: the plain wrapper leaves
        the victim spinning forever (it is excluded from every coord)."""
        n = 7
        with pytest.raises(SimulationLimitExceeded):
            run_failover_trial(
                "sync", n, lambda: ReElectionElection(), slander_plan(n, 1), seed=0
            )


class TestPartitionAbstention:
    def partition_plan(self, n, minority):
        comps = (tuple(range(minority)), tuple(range(minority, n)))
        return FaultPlan(
            partitions=(PartitionMask(components=comps, start=0.0, end=None),),
            detector=DetectorSpec(kind="perfect", lag=1.0),
        )

    def test_minority_never_elects(self):
        n, minority = 9, 4
        report = sync_trial(n, self.partition_plan(n, minority))
        result = report.record.extra["result"]
        assert result.leader_ids == [n]  # only the majority side elected
        for u in range(minority):
            assert result.decisions[u] is Decision.NON_LEADER
            assert result.outputs[u] is None  # abstained, adopted nobody

    def test_plain_wrapper_split_brains(self):
        n, minority = 9, 4
        report = run_failover_trial(
            "sync", n, lambda: ReElectionElection(),
            self.partition_plan(n, minority), seed=0,
        )
        result = report.record.extra["result"]
        assert len(result.leader_ids) == 2  # one leader per component

    def test_even_split_elects_nobody(self):
        """No component holds a majority: CP semantics, nobody leads."""
        n = 8
        report = sync_trial(n, self.partition_plan(n, 4))
        result = report.record.extra["result"]
        assert result.leader_ids == []
        assert all(d is Decision.NON_LEADER for d in result.decisions)

    def test_async_minority_never_elects(self):
        n, minority = 9, 4
        report = async_trial(n, self.partition_plan(n, minority))
        result = report.record.extra["result"]
        assert len(result.leader_ids) == 1
        for u in range(minority):
            assert result.outputs[u] is None


class TestQuorumMechanics:
    def test_crash_only_behaves_like_reelect(self):
        """Without Byzantine behavior the quorum wrapper elects the same
        survivor the plain wrapper does (it is a strict hardening)."""
        n = 8
        plan = FaultPlan(
            crashes=(CrashFault(node=n - 1, at=4.0),),
            detector=DetectorSpec(kind="perfect", lag=1.0),
        )
        quorum = sync_trial(n, plan)
        plain = run_failover_trial(
            "sync", n, lambda: ReElectionElection(), plan, seed=0
        )
        assert quorum.unique_surviving_leader and plain.unique_surviving_leader
        assert quorum.surviving_leader_id == plain.surviving_leader_id

    def test_majority_crash_means_no_leader(self):
        """f >= n/2 crashes: survivors abstain rather than risk a
        minority reign (the documented CP tradeoff)."""
        n = 7
        plan = FaultPlan(
            crashes=tuple(CrashFault(node=u, at=2.0) for u in range(4)),
            detector=DetectorSpec(kind="perfect", lag=1.0),
        )
        report = sync_trial(n, plan)
        result = report.record.extra["result"]
        assert result.leader_ids == []

    def test_threshold_is_validated_at_construction(self):
        with pytest.raises(ValueError, match="majority"):
            QuorumReElectionElection(threshold=0.3)
        with pytest.raises(ValueError, match="majority"):
            AsyncQuorumReElectionElection(threshold=1.0)

    def test_supermajority_threshold(self):
        """A 2/3 threshold abstains where a majority would elect."""
        n = 9
        plan = FaultPlan(
            partitions=(
                PartitionMask(components=((0, 1, 2, 3), (4, 5, 6, 7, 8)),
                              start=0.0, end=None),
            ),
            detector=DetectorSpec(kind="perfect", lag=1.0),
        )
        report = sync_trial(n, plan, threshold=2 / 3)
        result = report.record.extra["result"]
        # 5 of 9 is a majority but not > 2/3: nobody elects anywhere.
        assert result.leader_ids == []

    def test_single_node_self_elects(self):
        plan = FaultPlan(detector=DetectorSpec(kind="perfect", lag=1.0))
        report = sync_trial(1, plan)
        assert report.surviving_leader_id == 1

    def test_fault_free_equivalence_across_engines(self):
        """Cross-engine validation: both engines converge with explicit
        agreement under the same fault-free plan."""
        n = 6
        plan = FaultPlan(detector=DetectorSpec(kind="perfect", lag=1.0))
        for seed in (0, 1):
            s = sync_trial(n, plan, seed=seed)
            a = async_trial(n, plan, seed=seed)
            assert s.unique_surviving_leader and a.unique_surviving_leader
            for report in (s, a):
                result = report.record.extra["result"]
                leader = report.surviving_leader_id
                for u in range(n):
                    if result.decisions[u] is Decision.NON_LEADER:
                        assert result.outputs[u] == leader
