"""The bounded epoch-restart timeout (the ``reelect`` inner-loss fix).

Regression for the ROADMAP item "loss on *inner* algorithm messages
stalls by design — a retry/timeout epoch restart remains open": a
deterministic ``LinkFaults.max_drops`` schedule that swallows the whole
first inner election used to wedge the epoch forever (the run only
ended at the engine round/event limit).  With the timeout, nodes retry
the inner election in bounded attempts and commit.
"""

import pytest

from repro.analysis.runner import run_async_trial, run_sync_trial
from repro.common import SimulationLimitExceeded
from repro.faults import (
    AsyncReElectionElection,
    DetectorSpec,
    FaultPlan,
    LinkFaults,
    ReElectionElection,
)

# Drop every inner-election message until the budget runs out: the first
# attempt is guaranteed dead, later attempts run on clean links.
INNER_LOSS = FaultPlan(
    links=(LinkFaults(drop_prob=1.0, max_drops=40, kinds=("ree",)),),
    detector=DetectorSpec(kind="perfect", lag=1.0),
)


class TestSyncRestart:
    def test_stalls_with_restart_disabled(self):
        """The pre-fix behavior, pinned: restart_rounds=0 wedges."""
        with pytest.raises(SimulationLimitExceeded):
            run_sync_trial(
                6,
                lambda: ReElectionElection(
                    inner="afek_gafni", commit_rounds=3, restart_rounds=0
                ),
                seed=2,
                faults=INNER_LOSS,
                max_rounds=300,
            )

    def test_bounded_restart_recovers(self):
        record = run_sync_trial(
            6,
            lambda: ReElectionElection(
                inner="afek_gafni", commit_rounds=3, restart_rounds=16
            ),
            seed=2,
            faults=INNER_LOSS,
            max_rounds=300,
        )
        assert record.unique_leader
        assert record.elected_id == 6  # afek_gafni still elects the max ID
        # The retry fired: at least one extra attempt beyond the first.
        assert record.extra["rounds_executed"] > 16

    def test_adaptive_default_recovers_too(self):
        record = run_sync_trial(
            6,
            lambda: ReElectionElection(inner="afek_gafni", commit_rounds=3),
            seed=2,
            faults=INNER_LOSS,
        )
        assert record.unique_leader

    def test_restart_is_deterministic(self):
        records = [
            run_sync_trial(
                6,
                lambda: ReElectionElection(
                    inner="afek_gafni", commit_rounds=3, restart_rounds=16
                ),
                seed=2,
                faults=INNER_LOSS,
                max_rounds=300,
            )
            for _ in range(2)
        ]
        assert records[0].messages == records[1].messages
        assert records[0].elected_id == records[1].elected_id
        assert records[0].time == records[1].time

    def test_no_restart_in_healthy_runs(self):
        """The adaptive timeout never fires when nothing is lost."""
        plan = FaultPlan(detector=DetectorSpec(kind="perfect", lag=1.0))
        algorithms = []

        def factory():
            algorithm = ReElectionElection(inner="afek_gafni", commit_rounds=3)
            algorithms.append(algorithm)
            return algorithm

        record = run_sync_trial(8, factory, seed=1, faults=plan)
        assert record.unique_leader
        assert all(a.attempt == 0 for a in algorithms)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReElectionElection(restart_rounds=-1)


class TestAsyncRestart:
    def test_stalls_with_restart_disabled(self):
        with pytest.raises(SimulationLimitExceeded):
            run_async_trial(
                6,
                lambda: AsyncReElectionElection(
                    inner="async_tradeoff", commit_delay=3.0, restart_delay=0
                ),
                seed=2,
                faults=INNER_LOSS,
                wake_times={u: 0.0 for u in range(6)},
                max_events=40_000,
            )

    def test_bounded_restart_recovers(self):
        record = run_async_trial(
            6,
            lambda: AsyncReElectionElection(
                inner="async_tradeoff", commit_delay=3.0, restart_delay=12.0
            ),
            seed=2,
            faults=INNER_LOSS,
            wake_times={u: 0.0 for u in range(6)},
            max_events=1_000_000,
        )
        assert record.unique_leader
        assert record.decided == 6

    def test_restart_is_deterministic(self):
        records = [
            run_async_trial(
                6,
                lambda: AsyncReElectionElection(
                    inner="async_tradeoff", commit_delay=3.0, restart_delay=12.0
                ),
                seed=2,
                faults=INNER_LOSS,
                wake_times={u: 0.0 for u in range(6)},
                max_events=1_000_000,
            )
            for _ in range(2)
        ]
        assert records[0].messages == records[1].messages
        assert records[0].elected_id == records[1].elected_id

    def test_validation(self):
        with pytest.raises(ValueError):
            AsyncReElectionElection(restart_delay=-0.5)
