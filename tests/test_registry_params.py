"""Registry factories accept their documented parameters end to end."""

import pytest

from repro.asyncnet.engine import AsyncNetwork
from repro.core import get_algorithm
from repro.sync.engine import SyncNetwork


class TestParameterizedFactories:
    def test_improved_tradeoff_ell(self):
        spec = get_algorithm("improved_tradeoff")
        result = SyncNetwork(64, spec.make(ell=7), seed=0).run()
        assert result.unique_leader
        assert result.last_send_round == 7

    def test_afek_gafni_ell(self):
        spec = get_algorithm("afek_gafni")
        result = SyncNetwork(64, spec.make(ell=6), seed=0).run()
        assert result.unique_leader
        assert result.last_send_round == 7  # 2K+1

    def test_small_id_d_and_g(self):
        spec = get_algorithm("small_id")
        ids = list(range(1, 65))
        result = SyncNetwork(64, spec.make(d=16, g=1), ids=ids, seed=0).run()
        assert result.unique_leader and result.elected_id == 1

    def test_kutten16_coefficients(self):
        spec = get_algorithm("kutten16")
        result = SyncNetwork(
            256, spec.make(candidate_coeff=8.0, referee_coeff=3.0), seed=0
        ).run()
        assert len(result.leaders) <= 1

    def test_las_vegas_injection_hook(self):
        spec = get_algorithm("las_vegas")
        result = SyncNetwork(
            32,
            spec.make(candidate_prob_fn=lambda n, p: 0.0 if p == 0 else 1.0),
            seed=0,
        ).run()
        assert result.unique_leader
        assert result.last_send_round == 6  # one forced restart

    def test_adversarial_2round_epsilon(self):
        spec = get_algorithm("adversarial_2round")
        result = SyncNetwork(
            256, spec.make(epsilon=0.01), seed=1, awake=[0]
        ).run()
        assert len(result.leaders) <= 1

    def test_async_tradeoff_full_params(self):
        spec = get_algorithm("async_tradeoff")
        result = AsyncNetwork(
            128,
            spec.make(k=3, gamma=4.0, candidate_coeff=6.0, referee_coeff=3.0),
            seed=2,
            max_events=5_000_000,
        ).run()
        assert len(result.leaders) <= 1

    def test_async_afek_gafni_iterations(self):
        spec = get_algorithm("async_afek_gafni")
        result = AsyncNetwork(
            64,
            spec.make(iterations=3),
            seed=3,
            wake_times={u: 0.0 for u in range(64)},
            max_events=5_000_000,
        ).run()
        assert result.unique_leader

    def test_bad_parameters_surface_at_construction(self):
        spec = get_algorithm("improved_tradeoff")
        factory = spec.make(ell=4)  # even: invalid
        with pytest.raises(ValueError):
            factory()

    def test_cli_param_plumbs_through(self, capsys):
        from repro.__main__ import main

        assert (
            main(
                [
                    "run",
                    "async_afek_gafni",
                    "--n",
                    "32",
                    "--param",
                    "iterations=2",
                ]
            )
            == 0
        )
        assert "yes" in capsys.readouterr().out
