"""Algorithm registry and trace recorders."""

import pytest

from repro.core import ALGORITHMS, get_algorithm
from repro.sync.engine import SyncNetwork
from repro.asyncnet.engine import AsyncNetwork
from repro.trace import CompositeRecorder, MemoryRecorder, PrintRecorder


class TestRegistry:
    def test_all_algorithms_registered(self):
        expected = {
            # the paper's eight
            "improved_tradeoff",
            "afek_gafni",
            "small_id",
            "kutten16",
            "las_vegas",
            "adversarial_2round",
            "async_tradeoff",
            "async_afek_gafni",
            # the fault-tolerant layer
            "monarchical",
            "reelect",
            # the Byzantine adversary layer
            "quorum_reelect",
        }
        assert set(ALGORITHMS) == expected

    def test_lookup(self):
        spec = get_algorithm("improved_tradeoff")
        assert spec.engine == "sync"
        assert spec.deterministic

    def test_unknown_name_helpful_error(self):
        with pytest.raises(KeyError) as excinfo:
            get_algorithm("nope")
        assert "improved_tradeoff" in str(excinfo.value)

    def test_every_sync_spec_runs(self):
        for spec in ALGORITHMS.values():
            if spec.engine != "sync":
                continue
            params = {}
            if spec.name == "improved_tradeoff":
                params = {"ell": 3}
            elif spec.name == "afek_gafni":
                params = {"ell": 4}
            elif spec.name == "small_id":
                params = {"d": 4, "g": 1}
            awake = [0] if spec.wakeup == ("adversarial",) else None
            result = SyncNetwork(32, spec.make(**params), seed=1, awake=awake).run()
            assert len(result.leaders) <= 1, spec.name

    def test_every_async_spec_runs(self):
        for spec in ALGORITHMS.values():
            if spec.engine != "async":
                continue
            params = {"k": 2} if spec.name == "async_tradeoff" else {}
            wake_times = (
                {u: 0.0 for u in range(32)}
                if spec.name == "async_afek_gafni"
                else None
            )
            result = AsyncNetwork(
                32, spec.make(**params), seed=1, wake_times=wake_times
            ).run()
            assert len(result.leaders) <= 1, spec.name

    def test_specs_carry_paper_references(self):
        for spec in ALGORITHMS.values():
            assert spec.paper_ref
            assert spec.messages_formula
            assert spec.time_formula
            assert spec.wakeup


class TestRecorders:
    def test_memory_recorder_filters(self):
        rec = MemoryRecorder()
        rec.on_send(1, 0, 2, 1, 3, ("x",))
        rec.on_wake(1, 0)
        rec.on_decide(2, 0, "leader", 5)
        assert len(rec.events) == 3
        assert len(rec.of_kind("send")) == 1
        assert rec.sends_from(0)[0].detail[1] == 1

    def test_print_recorder_caps_output(self, capsys):
        rec = PrintRecorder(limit=2)
        for i in range(5):
            rec.on_wake(i, i)
        out = capsys.readouterr().out
        assert out.count("wake") == 2
        assert "suppressing" in out

    def test_print_recorder_kind_filter(self, capsys):
        rec = PrintRecorder(limit=10, kinds=["decide"])
        rec.on_wake(1, 0)
        rec.on_decide(1, 0, "leader", None)
        out = capsys.readouterr().out
        assert "wake" not in out
        assert "decide" in out

    def test_composite_fans_out(self):
        a, b = MemoryRecorder(), MemoryRecorder()
        comp = CompositeRecorder(a, b)
        comp.on_send(1, 0, 1, 2, 3, ("m",))
        comp.on_deliver(2.0, 2, 3, ("m",))
        assert len(a.events) == 2
        assert len(b.events) == 2

    def test_composite_in_real_run(self):
        from repro.core import ImprovedTradeoffElection
        from repro.lowerbound import CommGraph, CommGraphRecorder

        n = 32
        graph = CommGraph(n)
        mem = MemoryRecorder()
        net = SyncNetwork(
            n,
            lambda: ImprovedTradeoffElection(ell=3),
            seed=0,
            recorder=CompositeRecorder(mem, CommGraphRecorder(graph)),
        )
        result = net.run()
        assert len(mem.of_kind("send")) == result.messages
        assert graph.largest_component_size() == n

    def test_event_str(self):
        rec = MemoryRecorder()
        rec.on_wake(3, 7)
        assert "wake" in str(rec.events[0])
