"""Ring substrate and classic algorithms (repro.ring)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import ProtocolError, SimulationLimitExceeded
from repro.ring import ChangRoberts, HirschbergSinclair, RingNetwork
from repro.ring.engine import LEFT, RIGHT, RingAlgorithm


class TestRingEngine:
    def test_ring_delivery_directions(self):
        seen = {}

        class Probe(RingAlgorithm):
            def on_round(self, ctx, inbox):
                if ctx.round == 1 and ctx.node == 0:
                    ctx.send(RIGHT, ("r",))
                    ctx.send(LEFT, ("l",))
                for port, payload in inbox:
                    seen[(ctx.node, port)] = payload
                if ctx.round >= 2:
                    ctx.halt()

        RingNetwork(4, Probe).run()
        assert seen == {(1, LEFT): ("r",), (3, RIGHT): ("l",)}

    def test_bad_direction_rejected(self):
        class Bad(RingAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.send(7, ("x",))

        with pytest.raises(ValueError):
            RingNetwork(3, Bad).run()

    def test_too_small_ring_rejected(self):
        with pytest.raises(ValueError):
            RingNetwork(1, ChangRoberts)

    def test_nontermination_guard(self):
        class Forever(RingAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.send(RIGHT, ("spin",))

        with pytest.raises(SimulationLimitExceeded):
            RingNetwork(4, Forever, max_rounds=16).run()

    def test_halted_cannot_send(self):
        class HaltSend(RingAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.halt()
                ctx.send(RIGHT, ("x",))

        with pytest.raises(ProtocolError):
            RingNetwork(3, HaltSend).run()


class TestChangRoberts:
    @pytest.mark.parametrize("n", [2, 3, 10, 64])
    def test_elects_maximum(self, n):
        ids = random.Random(n).sample(range(1, 8 * n), n)
        result = RingNetwork(n, ChangRoberts, ids=ids).run()
        assert result.unique_leader
        assert result.elected_id == max(ids)
        assert result.decided_count == n

    def test_worst_case_quadratic(self):
        # IDs descending clockwise: probe of ID j survives j-1 hops.
        n = 64
        ids = list(range(n, 0, -1))
        result = RingNetwork(n, ChangRoberts, ids=ids).run()
        assert result.messages >= n * (n - 1) // 2

    def test_best_case_linear(self):
        # IDs ascending clockwise: every probe dies after one hop.
        n = 64
        ids = list(range(1, n + 1))
        result = RingNetwork(n, ChangRoberts, ids=ids).run()
        # n probes + n-1 relays of the max's probe + n announcement
        assert result.messages <= 4 * n

    @given(st.integers(2, 48), st.integers(0, 20))
    @settings(max_examples=25, deadline=None)
    def test_unique_max_leader_property(self, n, seed):
        ids = random.Random(seed).sample(range(1, 10 * n), n)
        result = RingNetwork(n, ChangRoberts, ids=ids).run()
        assert result.unique_leader and result.elected_id == max(ids)


class TestHirschbergSinclair:
    @pytest.mark.parametrize("n", [2, 3, 10, 64, 100])
    def test_elects_maximum(self, n):
        ids = random.Random(n * 7).sample(range(1, 8 * n), n)
        result = RingNetwork(n, HirschbergSinclair, ids=ids).run()
        assert result.unique_leader
        assert result.elected_id == max(ids)
        assert result.decided_count == n

    def test_worst_case_n_log_n(self):
        # The adversarial LCR ordering is harmless for HS.
        n = 128
        ids = list(range(n, 0, -1))
        result = RingNetwork(n, HirschbergSinclair, ids=ids).run()
        import math

        assert result.messages <= 12 * n * math.log2(n)

    def test_beats_lcr_on_adversarial_order(self):
        n = 128
        ids = list(range(n, 0, -1))
        lcr = RingNetwork(n, ChangRoberts, ids=ids).run()
        hs = RingNetwork(n, HirschbergSinclair, ids=ids).run()
        assert hs.messages < lcr.messages / 2

    @given(st.integers(2, 48), st.integers(0, 20))
    @settings(max_examples=25, deadline=None)
    def test_unique_max_leader_property(self, n, seed):
        ids = random.Random(seed ^ 99).sample(range(1, 10 * n), n)
        result = RingNetwork(n, HirschbergSinclair, ids=ids).run()
        assert result.unique_leader and result.elected_id == max(ids)


class TestRingVsCliqueContext:
    """§1.2 context: rings pay Ω(n log n); cliques escape Ω(m)."""

    def test_ring_floor_vs_clique_smallid(self):
        # On the clique with a linear ID universe, Algorithm 1 with d=2
        # goes below the ring's n log n floor.
        from repro.core import SmallIdElection
        from repro.ids import assign_random, small_universe
        from repro.sync import SyncNetwork
        import math

        n = 256
        rng = random.Random(0)
        clique_ids = assign_random(small_universe(n, 1), n, rng)
        clique = SyncNetwork(
            n, lambda: SmallIdElection(d=2, g=1), ids=clique_ids, seed=0
        ).run()
        ring = RingNetwork(n, HirschbergSinclair, ids=clique_ids).run()
        assert clique.messages < n * math.log2(n) <= 4 * ring.messages

    def test_clique_escapes_omega_m(self):
        # m = n(n-1)/2 edges in the clique, yet elections cost far less
        # (Korach-Moran-Zaks; here: Theorem 3.10 at ell=5).
        from repro.core import ImprovedTradeoffElection
        from repro.sync import SyncNetwork

        n = 256
        result = SyncNetwork(n, lambda: ImprovedTradeoffElection(ell=5), seed=0).run()
        m_edges = n * (n - 1) // 2
        assert result.messages < m_edges / 4
