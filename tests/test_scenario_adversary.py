"""Adversary integration in the scenario layer.

Slander events, scenario-level Byzantine plans, quorum-gated acts, the
split-brain metric, and the three new library timelines.
"""

import pytest

from repro.adversary import AdversaryPlan, TamperRule
from repro.scenarios import (
    LEADER,
    Scenario,
    crash,
    elect,
    get_scenario,
    run_scenario,
    slander,
)


class TestSlanderEvent:
    def test_validation(self):
        with pytest.raises(ValueError, match="symbolic slander victim"):
            slander(0, "the_king", 10.0)
        with pytest.raises(ValueError, match="slander itself"):
            slander(2, 2, 10.0)
        with pytest.raises(ValueError, match="duration"):
            slander(0, 1, 10.0, duration=0.0)
        event = slander(0, LEADER, 10.0)
        assert event.at == 10.0

    def test_scenario_accepts_adversary_plans_only(self):
        with pytest.raises(ValueError, match="AdversaryPlan"):
            Scenario(name="bad", adversary="evil")


class TestSlanderedLeaderScenario:
    def test_quorum_deposes_and_reconverges(self):
        result = run_scenario(
            get_scenario("slandered_leader", 9), 9, engine="sync", seed=0,
            quorum=True,
        )
        triggers = [e.trigger for e in result.epochs]
        assert triggers == ["initial", "slander", "slander"]
        # Every slander act deposed the sitting leader and elected anew.
        reigns = [e.leader_ids for e in result.epochs]
        assert all(len(r) == 1 for r in reigns)
        assert reigns[0] != reigns[1]
        assert result.metrics.split_brain_acts == 0
        assert result.metrics.final_agreed

    def test_plain_wrapper_stalls_not_crashes(self):
        """Without quorum the slander act wedges; the runner records the
        stall instead of blowing up the scenario."""
        result = run_scenario(
            get_scenario("slandered_leader", 9), 9, engine="sync", seed=0,
        )
        assert any("stalled" in note for note in result.notes)
        stalled = [e for e in result.epochs if e.trigger == "slander"]
        assert stalled and all(e.leader_ids == [] for e in stalled)

    def test_async_quorum_converges(self):
        result = run_scenario(
            get_scenario("slandered_leader", 8), 8, engine="async", seed=1,
            quorum=True,
        )
        assert result.metrics.final_agreed
        assert result.metrics.split_brain_acts == 0


class TestForgedFrontrunnerScenario:
    def test_forger_reigns_then_honest_recovery(self):
        result = run_scenario(
            get_scenario("forged_frontrunner", 9), 9, engine="sync", seed=0,
        )
        # The Byzantine node's forged competes crown it in the initial act
        # (under its real ID — the coord envelope is authenticated) ...
        assert result.epochs[0].leader_ids == [1]
        assert result.epochs[0].tampered_messages > 0
        # ... and the crash hands the reign back to an honest node.
        assert result.epochs[1].trigger == "failover"
        assert result.metrics.final_leader_id != 1
        assert result.metrics.final_agreed
        assert result.metrics.tampered_messages > 0

    def test_quorum_run_also_converges(self):
        result = run_scenario(
            get_scenario("forged_frontrunner", 9), 9, engine="sync", seed=0,
            quorum=True,
        )
        assert result.metrics.final_agreed
        assert result.metrics.tampered_messages > 0


class TestPartitionQuorumAcceptance:
    def test_minority_component_elects_nobody(self):
        """The ISSUE acceptance criterion, at scenario level."""
        result = run_scenario(
            get_scenario("partition_heal", 9), 9, engine="sync", seed=0,
            quorum=True,
        )
        assert result.metrics.split_brain_acts == 0
        partition_epochs = [e for e in result.epochs if e.trigger == "partition"]
        assert partition_epochs
        for epoch in partition_epochs:
            assert len(epoch.leader_ids) == 1  # majority side only
        assert result.metrics.final_agreed

    def test_plain_run_counts_the_split(self):
        result = run_scenario(
            get_scenario("partition_heal", 9), 9, engine="sync", seed=0,
        )
        assert result.metrics.split_brain_acts >= 1

    def test_quorum_metric_survives_json_report(self):
        from repro.scenarios import scenario_report

        result = run_scenario(
            get_scenario("partition_heal", 9), 9, engine="sync", seed=0,
            quorum=True,
        )
        report = scenario_report(result)
        assert report["metrics"]["split_brain_acts"] == 0
        assert all("concurrent_leaders" in e for e in report["epochs"])


class TestPoissonChurn:
    def test_deterministic_per_seed(self):
        a = get_scenario("poisson_churn", 16)
        b = get_scenario("poisson_churn", 16)
        assert a.events == b.events
        c = get_scenario("poisson_churn", 16, seed=7)
        assert c.events != a.events

    def test_rate_and_horizon_shape_the_timeline(self):
        sparse = get_scenario("poisson_churn", 16, rate=0.01, seed=3)
        dense = get_scenario("poisson_churn", 16, rate=0.2, seed=3)
        assert len(dense.events) > len(sparse.events)
        for event in dense.events:
            assert event.at < 240.0 + 25.0 + 1e-9  # horizon + recovery delay

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError, match="rate"):
            get_scenario("poisson_churn", 8, rate=0.0)
        with pytest.raises(ValueError, match="horizon"):
            get_scenario("poisson_churn", 8, horizon=-1.0)

    def test_runs_and_reconverges(self):
        result = run_scenario(
            get_scenario("poisson_churn", 12), 12, engine="sync", seed=2,
        )
        assert result.metrics.final_agreed
        assert result.metrics.crashes >= 1

    def test_listed_in_the_library(self):
        from repro.scenarios import NAMED_SCENARIOS

        for name in ("poisson_churn", "slandered_leader", "forged_frontrunner"):
            assert name in NAMED_SCENARIOS


class TestScenarioAdversaryRemap:
    def test_scenario_plan_remaps_after_crashes(self):
        """After the forger crashes, later acts carry no adversary (its
        tamper rules die with it)."""
        scenario = Scenario(
            name="forge_then_die",
            events=(
                # Crash the forger, then force a fresh election.
                crash(0, 20.0),
                elect(50.0),
            ),
            adversary=AdversaryPlan(
                byzantine=(0,),
                tampers=(TamperRule(mode="forge", kinds=("compete",)),),
            ),
            membership_policy="membership_change",
        )
        result = run_scenario(scenario, 8, engine="sync", seed=0)
        assert result.epochs[0].tampered_messages > 0
        for epoch in result.epochs[1:]:
            assert epoch.tampered_messages == 0
        assert result.metrics.final_agreed

    def test_shrunken_membership_drops_the_adversary(self):
        """When crashes leave the adversary holding f >= n/2 of an act,
        the act runs honestly with a note instead of aborting the whole
        scenario with a validation error."""
        scenario = Scenario(
            name="outnumbered",
            events=(crash(2, 10.0), crash(3, 14.0), slander(0, 1, 40.0)),
            membership_policy="membership_change",
        )
        result = run_scenario(scenario, 4, engine="sync", seed=0, quorum=True)
        assert any("adversary dropped" in note for note in result.notes)

    def test_fast_engine_runs_adversaries(self):
        # Byzantine acts route through the vectorized fault runtime now.
        res = run_scenario(
            get_scenario("forged_frontrunner", 9), 9, engine="fast", seed=0,
        )
        assert res.epochs[0].record.extra["engine"] == "fast"
        assert any(e.tampered_messages > 0 for e in res.epochs)

    def test_fast_engine_runs_quorum(self):
        res = run_scenario(
            get_scenario("election_storm", 8), 8, engine="fast", seed=0,
            quorum=True,
        )
        assert res.metrics.final_agreed
