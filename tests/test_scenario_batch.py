"""The vectorized scenario path: many act seeds batched per timeline.

``run_scenario_batch`` drives one replica :class:`ScenarioRunner` per
seed and collects concurrent fast-engine acts with identical memberships
into single multi-lane engine executions.  Scenario acts run at
``n ≤ exact_limit``, where batched lanes are bit-identical to single
runs — so the batched sweep must reproduce the sequential results
exactly, including when replicas diverge and fall back to single-lane
acts.
"""

import pytest

pytest.importorskip("numpy")

from repro.scenarios import (  # noqa: E402
    NAMED_SCENARIOS,
    ScenarioRunner,
    get_scenario,
    run_scenario_batch,
)

SEEDS = [0, 1, 2]
#: The named scenarios the fast engine supports (no partitions/kill
#: policies/adversaries).
FAST_SCENARIOS = ["rolling_restart", "staggered_joins", "election_storm"]


def assert_results_equal(sequential, batched, label):
    assert len(sequential) == len(batched), label
    for a, b in zip(sequential, batched):
        assert len(a.epochs) == len(b.epochs), label
        for ea, eb in zip(a.epochs, b.epochs):
            assert (
                ea.epoch, ea.trigger, ea.t_start, ea.duration, ea.members,
                ea.leader_ids, ea.messages,
            ) == (
                eb.epoch, eb.trigger, eb.t_start, eb.duration, eb.members,
                eb.leader_ids, eb.messages,
            ), label
        ma, mb = a.metrics, b.metrics
        assert (
            ma.elections, ma.epoch_churn, ma.total_messages,
            ma.mean_failover_latency, ma.final_leader_id, ma.final_agreed,
        ) == (
            mb.elections, mb.epoch_churn, mb.total_messages,
            mb.mean_failover_latency, mb.final_leader_id, mb.final_agreed,
        ), label


@pytest.mark.parametrize("name", FAST_SCENARIOS)
def test_batched_sweep_reproduces_sequential_results(name):
    assert name in NAMED_SCENARIOS
    sequential = [
        ScenarioRunner(get_scenario(name, 24), 24, engine="fast", seed=s).run()
        for s in SEEDS
    ]
    batched = run_scenario_batch(get_scenario(name, 24), 24, SEEDS, engine="fast")
    assert_results_equal(sequential, batched, name)


def test_divergent_replicas_fall_back_to_single_lanes():
    # A randomized inner election (las_vegas) makes crash(LEADER) hit a
    # different node per replica, so memberships diverge mid-timeline
    # and later acts cannot share a batched run — the fallback must
    # still reproduce the sequential results exactly.
    from repro.scenarios import LEADER, Scenario, crash, elect

    scenario = Scenario(
        name="leader_loss_divergence",
        description="crash whoever leads, then force two more elections",
        events=(crash(LEADER, 4.0), elect(10.0), elect(16.0)),
    )
    seeds = [0, 1, 2, 3]
    sequential = [
        ScenarioRunner(scenario, 16, engine="fast", seed=s, inner="las_vegas").run()
        for s in seeds
    ]
    members = {tuple(r.epochs[-1].members) for r in sequential}
    assert len(members) > 1, "want replicas whose memberships diverge"
    batched = run_scenario_batch(
        scenario, 16, seeds, engine="fast", inner="las_vegas"
    )
    assert_results_equal(sequential, batched, "leader_loss_divergence")


def test_non_fast_engines_run_sequentially():
    results = run_scenario_batch(
        get_scenario("election_storm", 8), 8, [0, 1], engine="sync"
    )
    assert len(results) == 2
    assert all(r.engine == "sync" for r in results)


def test_single_seed_skips_the_coordinator():
    results = run_scenario_batch(
        get_scenario("election_storm", 8), 8, [4], engine="fast"
    )
    assert len(results) == 1
    assert results[0].seed == 4


def test_batch_propagates_runner_validation_errors():
    with pytest.raises(ValueError, match="needs n >="):
        run_scenario_batch(
            get_scenario("partition_heal", 16), 1, [0, 1], engine="fast"
        )


def test_faulted_scenarios_batch_equals_sequential():
    # Partition and slander timelines now run on the fast engine; the
    # coordinator serializes their faulted acts (the fault runtime is
    # single-lane) yet the batch must still equal the sequential sweep.
    for name in ("partition_heal", "slandered_leader"):
        scenario = get_scenario(name, 16)
        seeds = [0, 1, 2]
        sequential = [
            ScenarioRunner(scenario, 16, engine="fast", seed=s).run()
            for s in seeds
        ]
        batched = run_scenario_batch(scenario, 16, seeds, engine="fast")
        assert_results_equal(sequential, batched, name)


def test_acts_above_the_exact_limit_fall_back_to_single_lanes():
    # Above n = 2048 acts would run in scale mode, where the batched
    # sampler draws a different stream than single runs — so the
    # coordinator must fall back to single-lane acts and still equal
    # the sequential sweep exactly.
    scenario = get_scenario("election_storm", 2100)
    seeds = [0, 1]
    sequential = [
        ScenarioRunner(scenario, 2100, engine="fast", seed=s).run() for s in seeds
    ]
    batched = run_scenario_batch(scenario, 2100, seeds, engine="fast")
    assert_results_equal(sequential, batched, "election_storm@2100")


def test_coordinator_errors_propagate_instead_of_hanging():
    # An unknown inner algorithm only surfaces when the coordinator
    # dispatches the first act; the error must unblock every replica
    # thread and re-raise (a regression here deadlocks the call).
    with pytest.raises(KeyError, match="no vectorized port"):
        run_scenario_batch(
            get_scenario("election_storm", 16), 16, [0, 1],
            engine="fast", inner="monarchical",
        )
