"""Scenario determinism: identical (scenario, seed) ⇒ identical outcomes.

The hypothesis property samples named scenarios, clique sizes, seeds and
engines, runs each configuration twice, and requires byte-identical
reports — winners, per-epoch metrics, agreement timelines, everything.
This is the scenario-layer extension of the per-run determinism
guarantees in ``tests/test_fault_determinism.py``.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.scenarios import get_scenario, run_scenario, scenario_report

SCENARIO_NAMES = [
    "partition_heal",
    "rolling_restart",
    "flapping_leader",
    "staggered_joins",
    "election_storm",
]


def report_text(name, n, engine, seed):
    scenario = get_scenario(name, n)
    result = run_scenario(scenario, n, engine=engine, seed=seed)
    return json.dumps(scenario_report(result), sort_keys=True)


@given(
    name=st.sampled_from(SCENARIO_NAMES),
    n=st.integers(min_value=6, max_value=16),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    engine=st.sampled_from(["sync", "async"]),
)
@settings(max_examples=12, deadline=None)
def test_identical_runs_identical_reports(name, n, seed, engine):
    first = report_text(name, n, engine, seed)
    second = report_text(name, n, engine, seed)
    assert first == second


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=6, deadline=None)
def test_winners_and_metrics_stable_across_runs(seed):
    """Same inputs, three runs, one winner and one metric dict."""
    scenario = get_scenario("rolling_restart", 8)
    results = [
        run_scenario(scenario, 8, engine="sync", seed=seed) for _ in range(3)
    ]
    leaders = {r.metrics.final_leader_id for r in results}
    assert len(leaders) == 1
    dicts = [json.dumps(r.metrics.to_dict(), sort_keys=True) for r in results]
    assert len(set(dicts)) == 1


def test_different_seeds_may_differ_but_always_converge():
    scenario = get_scenario("election_storm", 8)
    for seed in range(5):
        result = run_scenario(scenario, 8, engine="sync", seed=seed)
        assert result.metrics.final_agreed
