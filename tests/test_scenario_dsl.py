"""The JSON scenario DSL: round-trips, schema errors, CLI file loading."""

import json

import pytest

from repro.scenarios import (
    NAMED_SCENARIOS,
    ScenarioSchemaError,
    get_scenario,
    scenario_from_json,
    scenario_to_json,
)


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(NAMED_SCENARIOS))
    def test_every_library_scenario_round_trips(self, name):
        scenario = get_scenario(name, 16)
        doc = scenario_to_json(scenario)
        # Through a real serialization boundary, not just dict identity.
        rebuilt = scenario_from_json(json.loads(json.dumps(doc)))
        assert rebuilt == scenario

    def test_round_trip_from_raw_json_string(self):
        scenario = get_scenario("partition_heal", 8)
        text = json.dumps(scenario_to_json(scenario))
        assert scenario_from_json(text) == scenario

    def test_round_trip_from_file(self, tmp_path):
        scenario = get_scenario("forged_frontrunner", 9)
        path = tmp_path / "timeline.json"
        path.write_text(json.dumps(scenario_to_json(scenario)))
        assert scenario_from_json(str(path)) == scenario


class TestSchemaErrors:
    def test_missing_name(self):
        with pytest.raises(ScenarioSchemaError, match=r"\$: missing required field 'name'"):
            scenario_from_json({"events": []})

    def test_unknown_top_level_field(self):
        with pytest.raises(ScenarioSchemaError, match=r"\$: unknown field"):
            scenario_from_json({"name": "x", "evnts": []})

    def test_unknown_event_type_names_known_ones(self):
        with pytest.raises(ScenarioSchemaError, match=r"events\[0\].*unknown event type"):
            scenario_from_json({"name": "x", "events": [{"type": "explode", "at": 1}]})

    def test_event_field_typo_carries_path(self):
        with pytest.raises(ScenarioSchemaError, match=r"events\[1\]"):
            scenario_from_json(
                {
                    "name": "x",
                    "events": [
                        {"type": "elect", "at": 5},
                        {"type": "crash", "nod": 3, "at": 10},
                    ],
                }
            )

    def test_domain_errors_carry_path(self):
        with pytest.raises(ScenarioSchemaError, match=r"events\[0\]"):
            scenario_from_json(
                {"name": "x", "events": [{"type": "crash", "node": -1, "at": 5}]}
            )
        with pytest.raises(ScenarioSchemaError, match=r"\$\.adversary"):
            scenario_from_json(
                {"name": "x", "adversary": {"byzantine": [0]}}
            )

    def test_symbolic_targets_parse(self):
        scenario = scenario_from_json(
            {
                "name": "symbols",
                "events": [
                    {"type": "crash", "node": "leader", "at": 5},
                    {"type": "recover", "node": "last_crashed", "at": 25},
                    {"type": "slander", "accuser": 0, "victim": "leader", "at": 40},
                ],
            }
        )
        assert len(scenario.events) == 3

    def test_invalid_json_text(self):
        with pytest.raises(ScenarioSchemaError, match="invalid JSON"):
            scenario_from_json("{not json")

    def test_missing_file(self):
        with pytest.raises(ScenarioSchemaError, match="no such scenario file"):
            scenario_from_json("definitely/not/here.json")

    def test_directory_path_is_a_schema_error(self):
        with pytest.raises(ScenarioSchemaError, match="no such scenario file"):
            scenario_from_json("src")

    def test_bad_membership_policy(self):
        with pytest.raises(ScenarioSchemaError, match="membership_policy"):
            scenario_from_json({"name": "x", "membership_policy": "anarchy"})


class TestCLIFileLoading:
    def test_run_accepts_json_path(self, tmp_path, capsys):
        from repro.__main__ import main

        scenario = get_scenario("rolling_restart", 8)
        path = tmp_path / "restart.json"
        path.write_text(json.dumps(scenario_to_json(scenario)))
        assert main(["scenarios", "run", str(path), "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "rolling_restart" in out
        assert "agreed by all up nodes" in out

    def test_run_reports_schema_errors(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "broken.json"
        path.write_text('{"name": "x", "events": [{"type": "explode"}]}')
        assert main(["scenarios", "run", str(path), "--n", "8"]) == 2
        assert "unknown event type" in capsys.readouterr().err

    def test_quorum_flag_parses_and_runs(self, capsys):
        from repro.__main__ import main

        assert main(
            ["scenarios", "run", "partition_heal", "--n", "9", "--quorum"]
        ) == 0
        out = capsys.readouterr().out
        assert "split_brain_acts=0" in out
