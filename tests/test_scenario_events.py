"""The declarative scenario event model and the named-scenario library."""

import pytest

from repro.faults import LeaderKillPolicy, LinkFaults
from repro.scenarios import (
    LAST_CRASHED,
    LEADER,
    NAMED_SCENARIOS,
    Scenario,
    crash,
    elect,
    get_scenario,
    join,
    partition,
    recover,
)


class TestEventValidation:
    def test_builders_produce_events(self):
        ev = crash(3, 2.0)
        assert (ev.node, ev.at) == (3, 2.0)
        assert recover(LAST_CRASHED, 5.0).node == LAST_CRASHED
        assert crash(LEADER, 1.0).node == LEADER
        assert join(4.0).node_id is None
        assert elect(9.0).at == 9.0
        window = partition(((0, 1), (2, 3)), 1.0, 5.0)
        assert window.at == 1.0 and window.end == 5.0

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            crash(0, -1.0)
        with pytest.raises(ValueError):
            elect(-0.5)

    def test_unknown_symbolic_targets_rejected(self):
        with pytest.raises(ValueError):
            crash("boss", 1.0)
        with pytest.raises(ValueError):
            recover("leader", 1.0)  # leader is a crash target, not a recover one

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            partition(((0, 1),), 0.0, 5.0)  # one component is no partition
        with pytest.raises(ValueError):
            partition(((0, 1), (1, 2)), 0.0, 5.0)  # overlap
        with pytest.raises(ValueError):
            partition(((0,), (1,)), 5.0, 5.0)  # empty window

    def test_join_id_validation(self):
        with pytest.raises(ValueError):
            join(1.0, node_id=0)


class TestScenarioValidation:
    def test_membership_policy_checked(self):
        with pytest.raises(ValueError):
            Scenario(name="x", membership_policy="anarchy")

    def test_link_faults_must_be_wildcard(self):
        with pytest.raises(ValueError):
            Scenario(
                name="x",
                link_faults=(LinkFaults(drop_prob=0.5, dst=3),),
            )

    def test_overlapping_partitions_rejected(self):
        with pytest.raises(ValueError):
            Scenario(
                name="x",
                events=(
                    partition(((0,), (1,)), 0.0, 10.0),
                    partition(((0,), (1,)), 5.0, 15.0),
                ),
            )

    def test_disjoint_windows_accepted_in_any_declaration_order(self):
        # Overlap checking must sort by start time, not declaration order.
        sc = Scenario(
            name="x",
            events=(
                partition(((0,), (1,)), 50.0, 60.0),
                partition(((0,), (1,)), 0.0, 40.0),
            ),
        )
        assert [e.at for e in sc.sorted_events()] == [0.0, 50.0]

    def test_back_to_back_windows_accepted(self):
        # Windows are half-open: [0, 40) and [40, 60) do not overlap.
        Scenario(
            name="x",
            events=(
                partition(((0,), (1,)), 0.0, 40.0),
                partition(((0,), (1,)), 40.0, 60.0),
            ),
        )

    def test_sorted_events(self):
        sc = Scenario(name="x", events=(elect(9.0), crash(0, 1.0)))
        assert [e.at for e in sc.sorted_events()] == [1.0, 9.0]

    def test_summary_mentions_churn(self):
        sc = Scenario(
            name="x",
            events=(crash(0, 1.0), crash(1, 2.0)),
            kill_policy=LeaderKillPolicy(max_kills=2),
        )
        assert "2x crash" in sc.summary()
        assert "kill-leader" in sc.summary()


class TestLibrary:
    def test_named_scenarios(self):
        assert sorted(NAMED_SCENARIOS) == [
            "election_storm",
            "flapping_leader",
            "forged_frontrunner",
            "partition_heal",
            "poisson_churn",
            "rolling_restart",
            "slandered_leader",
            "staggered_joins",
        ]

    @pytest.mark.parametrize("name", sorted(NAMED_SCENARIOS))
    def test_builders_return_scenarios(self, name):
        sc = get_scenario(name, 32)
        assert isinstance(sc, Scenario)
        assert sc.name == name
        assert sc.description

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="partition_heal"):
            get_scenario("partition_hell", 32)

    def test_partition_heal_halves_cover_the_clique(self):
        sc = get_scenario("partition_heal", 10)
        window = sc.events[0]
        members = sorted(u for comp in window.components for u in comp)
        assert members == list(range(10))
