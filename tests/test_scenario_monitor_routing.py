"""The scenario split-brain metric is the monitor's verdict — regression pin.

``ScenarioRunner._run_act`` routes its ``concurrent_leaders`` epoch
metric through ``unique_leader_per_epoch`` over the act's event stream,
replacing the old ad-hoc ``len(result.surviving_leaders)`` computation.
These tests monkeypatch :func:`repro.faults.run_failover_trial` to
capture every act's raw engine artifacts and pin that the monitor's
count equals the engine's survivor accounting on every act of
``partition_heal`` and ``slandered_leader`` — the two scenarios where
the numbers could plausibly diverge (partition masks, quorum deposals).
"""

import pytest

import repro.faults as faults
from repro.monitor import MonitorSuite, UniqueLeaderMonitor
from repro.scenarios import get_scenario, run_scenario


@pytest.fixture
def captured(monkeypatch):
    """Capture (events, result) per act before the runner sanitizes them."""
    acts = []
    original = faults.run_failover_trial

    def wrapper(*args, **kwargs):
        report = original(*args, **kwargs)
        acts.append((list(report.events), report.record.extra["result"]))
        return report

    monkeypatch.setattr(faults, "run_failover_trial", wrapper)
    return acts


def monitor_count(events, result):
    monitor = UniqueLeaderMonitor()
    MonitorSuite(monitors=[monitor], n=len(result.ids)).replay(events).finish(
        result
    )
    return monitor.concurrent_leaders


class TestMonitorMatchesEngineAccounting:
    @pytest.mark.parametrize(
        "name,cfg",
        [
            ("partition_heal", {}),
            ("slandered_leader", {"quorum": True}),
        ],
    )
    def test_every_act_agrees(self, name, cfg, captured):
        run_scenario(get_scenario(name, 9), 9, engine="sync", seed=0, **cfg)
        assert captured  # the seam actually ran through run_failover_trial
        for events, result in captured:
            assert monitor_count(events, result) == len(
                result.surviving_leaders
            ), (name, result.leader_ids)


class TestPartitionHealSplitBrain:
    def test_partition_epoch_counts_both_component_leaders(self, captured):
        res = run_scenario(
            get_scenario("partition_heal", 9), 9, engine="sync", seed=0
        )
        part = next(e for e in res.epochs if e.trigger == "partition")
        assert part.concurrent_leaders == 2  # the split brain, per monitor
        heal = next(e for e in res.epochs if e.trigger == "heal")
        assert heal.concurrent_leaders == 1
        assert res.metrics.split_brain_acts == sum(
            1 for e in res.epochs if e.concurrent_leaders > 1
        )
        # At least one captured act really held two live leaders.
        assert any(
            len(result.surviving_leaders) == 2 for _, result in captured
        )


class TestSlanderedLeaderNoSplitBrain:
    def test_quorum_deposals_never_overlap(self, captured):
        res = run_scenario(
            get_scenario("slandered_leader", 9), 9, engine="sync", seed=0,
            quorum=True,
        )
        assert res.metrics.split_brain_acts == 0
        assert all(e.concurrent_leaders <= 1 for e in res.epochs)
        assert captured
