"""Fixed-case scenario executions on every engine.

Each named scenario runs at small ``n`` with a pinned seed; the
assertions pin the *semantics* (who leads, how many epochs, agreement
intervals) rather than raw counters, so they hold on any engine.
"""

import pytest

from repro.scenarios import (
    Scenario,
    ScenarioRunner,
    crash,
    get_scenario,
    join,
    partition,
    recover,
    run_scenario,
    scenario_report,
)

ENGINES = ["sync", "async"]


def run(name, n=10, engine="sync", seed=3, **cfg):
    return run_scenario(get_scenario(name, n), n, engine=engine, seed=seed, **cfg)


class TestNamedScenarios:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_partition_heal_reconverges(self, engine):
        # lag=2 leaves a pre-detection window in which nodes still try
        # to reach the other side, so the partition mask itself (not
        # just the partition-aware detector) is exercised on both
        # engines.
        res = run("partition_heal", engine=engine, lag=2.0)
        m = res.metrics
        # Split: the partition act mints one leader per component.
        part = next(e for e in res.epochs if e.trigger == "partition")
        assert len(part.leader_ids) == 2
        assert part.partition_blocked > 0  # cross-component traffic died
        # Heal: one full-clique re-election, one agreed leader.
        heal = next(e for e in res.epochs if e.trigger == "heal")
        assert len(heal.leader_ids) == 1
        assert m.final_agreed and m.final_leader_id == heal.leader_ids[0]
        # Re-convergence metrics are reported.
        assert m.mean_failover_latency is not None and m.mean_failover_latency > 0
        assert m.epoch_churn >= 4
        assert m.message_overhead > 1.0
        # The partition window shows up as a disagreement interval.
        assert any(not iv.agreed and len(iv.leaders) == 2 for iv in m.agreement_intervals)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_rolling_restart_elect_lower_epoch(self, engine):
        res = run("rolling_restart", engine=engine)
        m = res.metrics
        assert m.final_agreed
        assert m.crashes == 3 and m.recoveries == 3
        assert m.elections == 4  # initial + one failover per leader crash
        # Every recovered node rejoined with a stale persisted epoch and
        # deferred to the sitting leader instead of reclaiming power.
        rejoins = [note for note in res.notes if "persisted epoch" in note]
        assert len(rejoins) == 3
        for st in res.states:
            assert st.up
        # Failover latency composes lag + measured election time.
        for e in res.epochs:
            if e.trigger == "failover":
                assert e.failover_latency >= 1.0  # at least the detector lag

    @pytest.mark.parametrize("engine", ENGINES)
    def test_flapping_leader_burns_epochs(self, engine):
        res = run("flapping_leader", engine=engine)
        m = res.metrics
        assert m.final_agreed
        assert m.elections == 1           # all churn happens inside one act
        assert m.epoch_churn >= 4         # three kills + the survivor
        assert m.crashes == 3
        act = res.epochs[0]
        assert act.in_act_crashes == 3
        assert act.reelection_time is not None and act.reelection_time > 0
        # The killed frontrunners stay down.
        down = [st for st in res.states if not st.up]
        assert len(down) == 3
        assert m.final_leader_id not in {st.node_id for st in down}

    @pytest.mark.parametrize("engine", ENGINES)
    def test_staggered_joins_grow_the_clique(self, engine):
        res = run("staggered_joins", engine=engine)
        m = res.metrics
        assert m.final_agreed
        assert m.joins == 3
        assert len(res.states) == 13      # n=10 plus three joiners
        assert m.elections == 4           # membership_change policy re-elects
        # Members per act grow monotonically.
        sizes = [len(e.members) for e in res.epochs]
        assert sizes == [10, 11, 12, 13]
        # Joined nodes carry fresh distinct IDs.
        ids = [st.node_id for st in res.states]
        assert len(set(ids)) == len(ids)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_election_storm_keeps_agreement(self, engine):
        res = run("election_storm", engine=engine)
        m = res.metrics
        assert m.final_agreed
        assert m.elections == 5
        assert m.epoch_churn == 5
        assert m.crashes == 0
        # Re-elections on a healthy clique never break agreement: the
        # only disagreement window is the initial election.
        disagreement = [iv for iv in m.agreement_intervals if not iv.agreed]
        assert len(disagreement) == 1 and disagreement[0].start == 0.0
        assert m.agreed_fraction > 0.8


class TestFastEngineSubset:
    @pytest.mark.parametrize(
        "name", ["rolling_restart", "staggered_joins", "election_storm"]
    )
    def test_crash_subset_runs_fast(self, name):
        pytest.importorskip("numpy")
        res = run(name, engine="fast", seed=3)
        assert res.metrics.final_agreed
        assert res.epochs[0].record.extra["engine"] == "fast"

    @pytest.mark.parametrize("name", ["partition_heal", "flapping_leader"])
    def test_faulted_scenarios_run_fast(self, name):
        # Partitions, link faults and kill policies route through the
        # vectorized fault runtime instead of refusing the fast engine.
        pytest.importorskip("numpy")
        res = run(name, engine="fast", seed=3)
        assert res.metrics.final_agreed
        assert res.epochs[0].record.extra["engine"] == "fast"

    def test_partition_act_blocks_traffic_on_fast(self):
        # The partition window runs as one full-membership fast act under
        # the mask.  The bare vectorized election is not partition-
        # tolerant (per-component leaders are a property of the object
        # engines' detector-driven re-election wrapper), so the act
        # commits nobody — and the heal act restores agreement.
        pytest.importorskip("numpy")
        res = run("partition_heal", engine="fast", seed=3)
        split = [e for e in res.epochs if e.trigger == "partition"]
        assert split and split[0].partition_blocked > 0
        assert split[0].leader_ids == []
        heal = [e for e in res.epochs if e.trigger == "heal"]
        assert heal and len(heal[0].leader_ids) == 1
        assert res.metrics.final_agreed

    def test_fast_agrees_with_sync_on_final_leader(self):
        pytest.importorskip("numpy")
        fast = run("rolling_restart", engine="fast", seed=3, inner="improved_tradeoff")
        sync = run("rolling_restart", engine="sync", seed=3)
        # Both engines elect max-ID leaders act for act, so the scenario
        # endings agree even though the acts run different code paths.
        assert fast.metrics.final_leader_id == sync.metrics.final_leader_id
        assert [len(e.members) for e in fast.epochs] == [
            len(e.members) for e in sync.epochs
        ]


class TestRunnerSemantics:
    def test_non_leader_crash_needs_no_election_under_leader_loss(self):
        sc = Scenario(name="quiet", events=(crash(0, 20.0),))
        res = run_scenario(sc, 8, engine="sync", seed=1)
        assert res.metrics.elections == 1
        assert res.metrics.crashes == 1
        assert res.metrics.final_agreed

    def test_non_leader_crash_reelects_under_membership_change(self):
        sc = Scenario(
            name="strict",
            events=(crash(0, 20.0),),
            membership_policy="membership_change",
        )
        res = run_scenario(sc, 8, engine="sync", seed=1)
        assert res.metrics.elections == 2

    def test_symbolic_leader_crash_hits_the_actual_leader(self):
        sc = Scenario(name="regicide", events=(crash("leader", 20.0),))
        res = run_scenario(sc, 8, engine="sync", seed=1)
        initial_leader = res.epochs[0].leader_ids[0]
        assert res.metrics.elections == 2
        dead = [st for st in res.states if not st.up]
        assert [st.node_id for st in dead] == [initial_leader]
        assert res.metrics.final_leader_id != initial_leader

    def test_recover_into_leaderless_is_safe(self):
        # Crash a follower, recover it later: no elections beyond the first.
        sc = Scenario(name="nap", events=(crash(2, 20.0), recover(2, 40.0)))
        res = run_scenario(sc, 6, engine="sync", seed=1)
        assert res.metrics.elections == 1
        assert all(st.up for st in res.states)
        assert res.states[2].leader == res.metrics.final_leader_id
        assert res.states[2].epoch == res.epochs[0].epochs_minted

    def test_joining_node_adopts_the_leader_without_election(self):
        sc = Scenario(name="tagalong", events=(join(20.0),))
        res = run_scenario(sc, 6, engine="sync", seed=1)
        assert res.metrics.elections == 1
        joined = res.states[-1]
        assert joined.node_id == 7
        assert joined.leader == res.metrics.final_leader_id

    def test_duplicate_join_id_rejected(self):
        sc = Scenario(name="clash", events=(join(20.0, node_id=3),))
        with pytest.raises(ValueError, match="already in use"):
            run_scenario(sc, 6, engine="sync", seed=1)

    def test_back_to_back_partitions_both_execute(self):
        # A window starting exactly at the previous window's end must
        # run: heals process before same-timestamp events (half-open
        # windows), so the second split is not swallowed.
        halves = ((0, 1, 2), (3, 4, 5))
        sc = Scenario(
            name="double_split",
            events=(
                partition(halves, 20.0, 80.0),
                partition(halves, 80.0, 140.0),
            ),
        )
        res = run_scenario(sc, 6, engine="sync", seed=1)
        triggers = [e.trigger for e in res.epochs]
        assert triggers == ["initial", "partition", "heal", "partition", "heal"]
        assert res.metrics.final_agreed

    def test_custom_partition_isolates_unlisted_nodes(self):
        # Node 5 is listed in no component: it is isolated and elects
        # itself; the two components elect their own leaders.
        sc = Scenario(
            name="quarantine",
            events=(partition(((0, 1, 2), (3, 4)), 20.0, 80.0),),
        )
        res = run_scenario(sc, 6, engine="sync", seed=1)
        part = next(e for e in res.epochs if e.trigger == "partition")
        assert sorted(part.leader_ids) == [3, 5, 6]
        assert res.metrics.final_agreed  # heal reconverges

    def test_report_is_json_safe(self):
        import json

        res = run("partition_heal", engine="sync", seed=3)
        report = scenario_report(res)
        text = json.dumps(report)
        assert "failover_latency" in text
        assert report["metrics"]["epoch_churn"] >= 4
        assert report["metrics"]["message_overhead"] > 1.0
        assert len(report["records"]) == res.metrics.elections

    def test_small_n_guard(self):
        with pytest.raises(ValueError, match="needs n >="):
            run_scenario(get_scenario("flapping_leader", 4), 4, engine="sync")

    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            ScenarioRunner(get_scenario("election_storm", 8), 8, engine="warp")
