"""Property: random DSL timelines agree across the fast and sync engines.

Hypothesis builds random :class:`~repro.scenarios.Scenario` timelines
from the DSL primitives — crashes and recoveries, a partition window
with its heal, slander rumors — and replays each one on the vectorized
engine and on the object engine.  The two executions run different act
code (the object engines wrap every act in the detector-driven
re-election election; the fast engine runs the bare vectorized inner
under the act's fault plan), so the property pins the *timeline-level*
invariants that must match anyway:

* identical act structure — one act per triggering event, with the same
  trigger labels, the same participating node indices and the same
  member IDs (``membership_policy="membership_change"`` makes every
  membership transition mint an act, independent of leader beliefs);
* identical churn accounting (crashes / recoveries / joins) and final
  up/down pattern;
* after the closing ``elect`` on the healed clique, both engines agree
  on the same final leader.

Crashes are generated *outside* the partition window on purpose: while
a split is active the engines legitimately disagree about who leads
(the object wrapper elects per component, the bare vectorized election
starves across the cut), so a mid-partition ``crash`` could resolve
``failover`` vs ``membership`` differently.  That divergence is a
documented semantic, not a bug — see DESIGN.md.

A failing (shrunk) timeline is dumped as replayable JSON via
:func:`~repro.scenarios.scenario_to_json` so it can be re-run with
``repro scenarios run`` or :func:`~repro.scenarios.scenario_from_json`.
"""

import json
import os
import tempfile

import pytest

pytest.importorskip("numpy")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.scenarios import (  # noqa: E402
    Scenario,
    crash,
    elect,
    partition,
    recover,
    run_scenario,
    scenario_from_json,
    scenario_to_json,
    slander,
)

FAILED_TIMELINE_PATH = os.path.join(
    tempfile.gettempdir(), "repro_failed_timeline.json"
)


@st.composite
def timelines(draw):
    """A random scenario plus the clique size it expects.

    Shape: a churn phase (crashes/recoveries at t=10,20,...), then an
    optional partition window [100, 160) over the quiet network, then a
    slander phase (t=200,210,...), closed by a full-clique ``elect`` at
    t=300.  The generator tracks the up-set so every event is legal
    (no double crashes, no last-node kills, live accusers and victims).
    """
    n = draw(st.integers(min_value=6, max_value=10))
    up = set(range(n))
    down = set()
    events = []

    for step in range(draw(st.integers(min_value=0, max_value=3))):
        at = 10.0 + 10.0 * step
        if down and draw(st.booleans()):
            node = draw(st.sampled_from(sorted(down)))
            events.append(recover(node, at))
            down.discard(node)
            up.add(node)
        elif len(up) > 4:
            node = draw(st.sampled_from(sorted(up)))
            events.append(crash(node, at))
            up.discard(node)
            down.add(node)

    if draw(st.booleans()):
        cut = draw(st.integers(min_value=1, max_value=n - 1))
        halves = (tuple(range(cut)), tuple(range(cut, n)))
        events.append(partition(halves, 100.0, 160.0))

    for step in range(draw(st.integers(min_value=0, max_value=2))):
        accuser = draw(st.sampled_from(sorted(up)))
        victims = sorted(up - {accuser})
        events.append(slander(accuser, draw(st.sampled_from(victims)),
                              200.0 + 10.0 * step))

    events.append(elect(300.0))
    scenario = Scenario(
        name="twin_property",
        events=tuple(events),
        membership_policy="membership_change",
    )
    return scenario, n, draw(st.integers(min_value=0, max_value=3))


def _assert_timeline_twins(scenario, n, seed):
    fast = run_scenario(scenario, n, engine="fast", seed=seed,
                        inner="improved_tradeoff")
    sync = run_scenario(scenario, n, engine="sync", seed=seed)

    assert [e.trigger for e in fast.epochs] == [e.trigger for e in sync.epochs]
    assert [e.members for e in fast.epochs] == [e.members for e in sync.epochs]
    assert [e.member_ids for e in fast.epochs] == [
        e.member_ids for e in sync.epochs
    ]
    assert [e.t_event for e in fast.epochs] == [e.t_event for e in sync.epochs]
    for name in ("crashes", "recoveries", "joins"):
        assert getattr(fast.metrics, name) == getattr(sync.metrics, name)
    assert [st_.up for st_ in fast.states] == [st_.up for st_ in sync.states]
    assert [st_.node_id for st_ in fast.states] == [
        st_.node_id for st_ in sync.states
    ]
    # The closing elect runs on the healed, rumor-free clique: both
    # engines elect the maximum live ID and everybody adopts it.
    assert fast.final_agreed and sync.final_agreed
    assert fast.final_leader_id == sync.final_leader_id


@given(timelines())
@settings(max_examples=10, deadline=None)
def test_random_timelines_agree_across_engines(case):
    scenario, n, seed = case
    try:
        _assert_timeline_twins(scenario, n, seed)
    except AssertionError as exc:
        replay = {
            "scenario": scenario_to_json(scenario),
            "n": n,
            "seed": seed,
            "engines": ["fast", "sync"],
        }
        with open(FAILED_TIMELINE_PATH, "w") as fh:
            json.dump(replay, fh, indent=2)
        raise AssertionError(
            f"fast/sync divergence on a random timeline; replayable JSON "
            f"dumped to {FAILED_TIMELINE_PATH}:\n"
            f"{json.dumps(replay, indent=2)}"
        ) from exc


@given(timelines())
@settings(max_examples=10, deadline=None)
def test_random_timelines_round_trip_through_json(case):
    scenario, _, _ = case
    assert scenario_from_json(scenario_to_json(scenario)) == scenario
