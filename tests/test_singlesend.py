"""Lemma 3.12's multicast -> single-send transformation."""

import pytest

from repro.common import ProtocolError
from repro.core import ImprovedTradeoffElection, SmallIdElection
from repro.lowerbound import single_send_factory
from repro.net.ports import CanonicalPortMap
from repro.sync.algorithm import SyncAlgorithm
from repro.sync.engine import SyncNetwork

from tests.helpers import run_sync


def run_pair(n, inner_factory, max_inner_rounds=64):
    """Run an algorithm directly and through the transformation with the
    same deterministic port mapping; return both results."""
    direct = SyncNetwork(
        n, inner_factory, seed=7, port_map=CanonicalPortMap(n)
    ).run()
    wrapped = SyncNetwork(
        n,
        single_send_factory(inner_factory),
        seed=7,
        port_map=CanonicalPortMap(n),
        max_rounds=n * max_inner_rounds,
    ).run()
    return direct, wrapped


class TestLemma312Guarantees:
    @pytest.mark.parametrize("ell", [3, 5])
    def test_same_leader_same_messages(self, ell):
        n = 32
        direct, wrapped = run_pair(n, lambda: ImprovedTradeoffElection(ell=ell))
        assert wrapped.leaders == direct.leaders
        assert wrapped.messages == direct.messages

    def test_time_dilated_by_n(self):
        n = 16
        direct, wrapped = run_pair(n, lambda: ImprovedTradeoffElection(ell=3))
        # Round r of A runs at outer round (r-1)n + 1; the last inner
        # round T implies outer time in ((T-1)·n, T·n].
        t_inner = direct.rounds_executed
        assert (t_inner - 1) * n < wrapped.rounds_executed <= t_inner * n + n

    def test_single_send_property_holds(self):
        """At most one message per node per round — the defining property."""
        n = 16

        class CountingRecorder:
            def __init__(self):
                self.per_round_sender = {}

            def on_send(self, rnd, u, port, v, j, payload):
                key = (rnd, u)
                self.per_round_sender[key] = self.per_round_sender.get(key, 0) + 1

            def on_wake(self, *a):
                pass

            def on_decide(self, *a):
                pass

        rec = CountingRecorder()
        SyncNetwork(
            n,
            single_send_factory(lambda: ImprovedTradeoffElection(ell=3)),
            seed=7,
            port_map=CanonicalPortMap(n),
            max_rounds=n * 64,
            recorder=rec,
        ).run()
        assert rec.per_round_sender  # something was sent
        assert max(rec.per_round_sender.values()) == 1

    def test_works_for_small_id_algorithm(self):
        n = 16
        direct, wrapped = run_pair(n, lambda: SmallIdElection(d=4, g=1))
        assert wrapped.leaders == direct.leaders
        assert wrapped.messages == direct.messages

    def test_decisions_complete(self):
        n = 16
        _, wrapped = run_pair(n, lambda: ImprovedTradeoffElection(ell=3))
        assert wrapped.decided_count == n
        assert wrapped.explicit_agreement()


class TestAdapterEdgeCases:
    def test_rejects_overfull_round(self):
        class Blaster(SyncAlgorithm):
            """Sends 2 messages over the same port in one round: more
            than n-1 total for n=2."""

            def on_round(self, ctx, inbox):
                if ctx.round == 1:
                    ctx.send(0, ("a",))
                    ctx.send(0, ("b",))
                ctx.halt()

        with pytest.raises(ProtocolError):
            run_sync(
                2,
                single_send_factory(Blaster),
                port_map=CanonicalPortMap(2),
                max_rounds=64,
            )

    def test_inner_rng_stream_preserved(self):
        """The wrapped algorithm sees the same per-node RNG stream, so
        randomized inner algorithms behave identically under a fixed
        port mapping."""
        from repro.core import Kutten16Election

        n = 64
        direct = SyncNetwork(
            n, Kutten16Election, seed=3, port_map=CanonicalPortMap(n)
        ).run()
        wrapped = SyncNetwork(
            n,
            single_send_factory(Kutten16Election),
            seed=3,
            port_map=CanonicalPortMap(n),
            max_rounds=n * 16,
        ).run()
        assert wrapped.leaders == direct.leaders
        assert wrapped.messages == direct.messages

    def test_halt_waits_for_outbox_drain(self):
        class SendAndHalt(SyncAlgorithm):
            def on_round(self, ctx, inbox):
                if ctx.round == 1:
                    for port in range(3):
                        ctx.send(port, ("bye",))
                ctx.decide_follower()
                ctx.halt()

        result = run_sync(
            8,
            single_send_factory(SendAndHalt),
            port_map=CanonicalPortMap(8),
            max_rounds=256,
        )
        # All 3 queued messages leave even though the inner halted at once.
        assert result.messages == 8 * 3
