"""Algorithm 1 / Theorem 3.15 (repro.core.small_id)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SmallIdElection
from repro.ids import assign_random, small_universe
from repro.lowerbound import bounds
from repro.net.ports import CanonicalPortMap

from tests.helpers import run_sync


def small_ids(n, g, seed):
    return assign_random(small_universe(n, g), n, random.Random(seed))


class TestParameters:
    def test_rejects_bad_d(self):
        with pytest.raises(ValueError):
            SmallIdElection(d=0)

    def test_rejects_bad_g(self):
        with pytest.raises(ValueError):
            SmallIdElection(d=2, g=0)

    def test_window_computation(self):
        algo = SmallIdElection(d=4, g=2)  # width 8
        assert algo.my_window(1) == 1
        assert algo.my_window(8) == 1
        assert algo.my_window(9) == 2

    def test_rejects_oversized_ids(self):
        with pytest.raises(ValueError):
            run_sync(8, lambda: SmallIdElection(d=2, g=1), ids=[1, 2, 3, 4, 5, 6, 7, 100])

    def test_rejects_d_above_n(self):
        with pytest.raises(ValueError):
            run_sync(4, lambda: SmallIdElection(d=8, g=1))


class TestCorrectness:
    @pytest.mark.parametrize("d", [1, 2, 8, 16])
    @pytest.mark.parametrize("g", [1, 3])
    def test_min_id_elected(self, d, g):
        n = 32
        ids = small_ids(n, g, seed=d * 10 + g)
        result = run_sync(n, lambda: SmallIdElection(d=d, g=g), ids=ids, seed=1)
        assert result.unique_leader
        assert result.elected_id == min(ids)
        assert result.decided_count == n
        assert result.explicit_agreement()

    def test_identity_assignment_one_round(self):
        # IDs 1..n with any d: ID 1 is in window 1, election ends round 1.
        result = run_sync(20, lambda: SmallIdElection(d=4, g=1), seed=0)
        assert result.unique_leader and result.elected_id == 1
        assert result.last_send_round == 1

    def test_late_window_workload(self):
        # All IDs packed into the top windows: the election ends exactly
        # in the window of the minimum ID, within the ceil(n/d) worst
        # case of Theorem 3.15.
        n, d, g = 16, 4, 2
        width = d * g
        ids = list(range(n * g - n + 1, n * g + 1))  # the top n IDs
        result = run_sync(n, lambda: SmallIdElection(d=d, g=g), ids=ids, seed=0)
        assert result.unique_leader and result.elected_id == min(ids)
        expected_round = -(-min(ids) // width)
        assert result.last_send_round == expected_round
        assert result.last_send_round <= bounds.thm315_rounds(n, d)

    def test_single_broadcaster_becomes_leader_alone(self):
        # Exactly one ID (the 1) falls in the first nonempty window, so
        # exactly one node broadcasts: n-1 messages total.
        n, d, g = 8, 1, 2  # window width 2: windows {1,2}, {3,4}, ...
        ids = [1, 16, 15, 14, 13, 12, 11, 10]
        result = run_sync(n, lambda: SmallIdElection(d=d, g=g), ids=ids, seed=0)
        assert result.unique_leader
        assert result.leaders == [0]
        assert result.messages == n - 1

    @given(st.integers(2, 48), st.integers(1, 4), st.integers(0, 30))
    @settings(max_examples=30, deadline=None)
    def test_unique_min_leader_property(self, n, g, seed):
        d = random.Random(seed).randint(1, n)
        ids = small_ids(n, g, seed)
        result = run_sync(n, lambda: SmallIdElection(d=d, g=g), ids=ids, seed=seed)
        assert result.unique_leader
        assert result.elected_id == min(ids)


class TestComplexity:
    @pytest.mark.parametrize("d", [2, 4, 8])
    def test_message_bound_n_d_g(self, d):
        n, g = 64, 2
        ids = small_ids(n, g, seed=d)
        result = run_sync(n, lambda: SmallIdElection(d=d, g=g), ids=ids, seed=0)
        assert result.messages <= bounds.thm315_messages(n, d, g)

    @pytest.mark.parametrize("d", [2, 4, 8])
    def test_round_bound(self, d):
        n, g = 64, 1
        ids = small_ids(n, g, seed=d)
        result = run_sync(n, lambda: SmallIdElection(d=d, g=g), ids=ids, seed=0)
        assert result.last_send_round <= bounds.thm315_rounds(n, d)

    def test_tradeoff_direction(self):
        """Larger d: fewer rounds possible, more messages allowed."""
        n, g = 64, 1
        ids = small_ids(n, g, seed=9)
        small_d = run_sync(n, lambda: SmallIdElection(d=1, g=g), ids=ids, seed=0)
        large_d = run_sync(n, lambda: SmallIdElection(d=32, g=g), ids=ids, seed=0)
        assert large_d.last_send_round <= small_d.last_send_round
        assert large_d.messages >= small_d.messages

    def test_sublinear_messages_beats_nlogn(self):
        """The Theorem 3.15 point: with g=O(1) and d = o(log n), message
        complexity o(n log n) — beating the Theorem 3.11 bound, which is
        only possible because the universe is linear in size."""
        n, d, g = 256, 2, 1
        ids = small_ids(n, g, seed=1)
        result = run_sync(n, lambda: SmallIdElection(d=d, g=g), ids=ids, seed=0)
        assert result.messages < bounds.thm311_message_lb(n)


class TestPortIndependence:
    def test_canonical_ports(self):
        n = 24
        ids = small_ids(n, 2, seed=4)
        result = run_sync(
            n, lambda: SmallIdElection(d=4, g=2), ids=ids, port_map=CanonicalPortMap(n)
        )
        assert result.unique_leader and result.elected_id == min(ids)
