"""Bootstrap confidence intervals (repro.analysis.stats)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import bootstrap_mean_ci


class TestBootstrapCI:
    def test_contains_true_mean_for_clean_data(self):
        ci = bootstrap_mean_ci([10.0] * 20, seed=0)
        assert ci.mean == 10.0
        assert ci.low == ci.high == 10.0
        assert ci.contains(10.0)

    def test_interval_ordering(self):
        ci = bootstrap_mean_ci([1, 5, 9, 2, 8, 3, 7], seed=1)
        assert ci.low <= ci.mean <= ci.high

    def test_wider_at_higher_confidence(self):
        data = list(range(30))
        narrow = bootstrap_mean_ci(data, confidence=0.5, seed=2)
        wide = bootstrap_mean_ci(data, confidence=0.99, seed=2)
        assert (wide.high - wide.low) >= (narrow.high - narrow.low)

    def test_deterministic_given_seed(self):
        data = [3, 1, 4, 1, 5, 9, 2, 6]
        assert bootstrap_mean_ci(data, seed=7) == bootstrap_mean_ci(data, seed=7)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], confidence=1.0)

    def test_str_format(self):
        text = str(bootstrap_mean_ci([1.0, 2.0], seed=0))
        assert "95% CI" in text

    @given(st.lists(st.floats(0, 100), min_size=5, max_size=40), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_interval_well_formed(self, data, seed):
        ci = bootstrap_mean_ci(data, seed=seed, resamples=300)
        assert ci.low <= ci.high
        # Resampled means cannot leave the sample's range.
        assert min(data) - 1e-9 <= ci.low and ci.high <= max(data) + 1e-9
