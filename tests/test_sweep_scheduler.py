"""The sharded sweep scheduler: bit-identity, stealing, degradation."""

import pickle

import pytest

from repro.analysis import RunSpec, canonical_record, execute_spec, sweep
from repro.core import ImprovedTradeoffElection
from repro.faults import CrashFault, DetectorSpec, FaultPlan
from repro.sweep import SweepCell, run_cells
from repro.sweep.worker import run_spec_cell
from repro.telemetry.metrics import MetricsRegistry

pytest.importorskip("numpy")


def mixed_grid():
    """Sync, async, fast (plain + batched) and a faulted cell."""
    return [
        RunSpec(algorithm="improved_tradeoff", n=64, engine="sync", seeds=(0, 1, 2)),
        RunSpec(
            algorithm="async_tradeoff",
            n=32,
            engine="async",
            seeds=(0, 1),
            params={"k": 2},
        ),
        RunSpec(algorithm="improved_tradeoff", n=512, engine="fast", seeds=(0, 1, 2, 3)),
        RunSpec(
            algorithm="improved_tradeoff",
            n=256,
            engine="fast",
            seeds=(0, 1, 2, 3),
            batch=2,
        ),
        RunSpec(
            algorithm="monarchical",
            n=16,
            engine="sync",
            seeds=(5,),
            faults=FaultPlan(
                crashes=(CrashFault(node=0, at=2.0),),
                detector=DetectorSpec(kind="perfect", lag=1.0),
            ),
        ),
    ]


def canon(records):
    return [canonical_record(r) for r in records]


class TestBitIdentity:
    def test_sharded_sweep_matches_sequential_and_legacy(self):
        grid = mixed_grid()
        sequential = sweep(grid, workers=1)
        sharded = sweep(grid, workers=4)
        assert canon(sharded) == canon(sequential)
        # ... and both match the in-process executor spec-by-spec.
        direct = [record for spec in grid for record in execute_spec(spec)]
        assert canon(sequential) == canon(direct)

    def test_sharded_sweep_matches_the_legacy_entrypoints(self):
        import warnings

        from repro.analysis import run_sync_trial, sweep_fast

        grid = [
            RunSpec(algorithm="improved_tradeoff", n=64, engine="sync", seeds=(0, 1)),
            RunSpec(algorithm="improved_tradeoff", n=256, engine="fast", seeds=(0, 1)),
        ]
        sharded = sweep(grid, workers=4)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = [
                run_sync_trial(64, ImprovedTradeoffElection, seed=s) for s in (0, 1)
            ] + sweep_fast([256], "improved_tradeoff", seeds=[0, 1])
        assert canon(sharded) == canon(legacy)

    def test_merged_metrics_are_identical_across_worker_counts(self):
        grid = mixed_grid()
        counters = {}
        for workers in (1, 2, 4):
            registry = MetricsRegistry()
            sweep(grid, workers=workers, registry=registry)
            payload = registry.as_dict()
            counters[workers] = payload["counters"]
        assert counters[1] == counters[2] == counters[4]
        assert counters[1]["sweep.records"] == 14
        assert counters[1]["sweep.records[fast]"] == 8

    def test_seed_block_boundaries_never_leak_into_results(self):
        # Many seeds across few workers forces multi-seed blocks; every
        # record must still match its single-seed run.
        spec = RunSpec(
            algorithm="improved_tradeoff", n=64, engine="sync", seeds=tuple(range(12))
        )
        sharded = sweep([spec], workers=2)
        singles = [
            record
            for s in range(12)
            for record in execute_spec(
                RunSpec(algorithm="improved_tradeoff", n=64, engine="sync", seeds=(s,))
            )
        ]
        assert canon(sharded) == canon(singles)


class TestSchedulerGauges:
    def test_scheduler_reports_workers_cells_steals_and_utilization(self):
        registry = MetricsRegistry()
        sweep(mixed_grid(), workers=2, registry=registry)
        gauges = registry.as_dict()["gauges"]
        assert gauges["sweep.workers"] == 2
        assert gauges["sweep.cells"] >= len(mixed_grid())
        assert gauges["sweep.steals"] >= 0
        assert gauges["sweep.elapsed_s"] > 0
        utilization = [v for k, v in gauges.items() if k.startswith("sweep.worker_utilization[")]
        assert utilization and all(0.0 <= u <= 1.0 for u in utilization)

    def test_inline_runs_count_their_cells(self):
        registry = MetricsRegistry()
        sweep(mixed_grid(), workers=1, registry=registry)
        gauges = registry.as_dict()["gauges"]
        assert gauges["sweep.inline_cells"] == gauges["sweep.cells"]
        assert gauges["sweep.steals"] == 0


class TestGracefulDegradation:
    def test_non_picklable_cells_run_in_the_parent(self):
        grid = [
            RunSpec(algorithm=lambda: ImprovedTradeoffElection(), n=32, engine="sync"),
            RunSpec(algorithm="improved_tradeoff", n=64, engine="sync", seeds=(0, 1)),
        ]
        with pytest.raises(Exception):
            pickle.dumps(grid[0])
        registry = MetricsRegistry()
        records = sweep(grid, workers=2, registry=registry)
        assert canon(records) == canon(
            [record for spec in grid for record in execute_spec(spec)]
        )
        assert registry.as_dict()["gauges"]["sweep.inline_cells"] >= 1

    def test_unconstructible_pool_degrades_to_in_process(self):
        def broken_factory(workers):
            raise OSError("no processes for you")

        grid = mixed_grid()
        records = sweep(grid, workers=4, executor_factory=broken_factory)
        assert canon(records) == canon(sweep(grid, workers=1))

    def test_pool_that_dies_mid_sweep_falls_back_inline(self):
        from concurrent.futures.process import BrokenProcessPool

        class DyingExecutor:
            """Accepts submissions, then breaks on result collection."""

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, *args):
                from concurrent.futures import Future

                future = Future()
                future.set_exception(BrokenProcessPool("worker died"))
                return future

        grid = mixed_grid()
        records = sweep(grid, workers=4, executor_factory=lambda w: DyingExecutor())
        assert canon(records) == canon(sweep(grid, workers=1))

    def test_genuine_cell_exceptions_propagate(self):
        grid = [RunSpec(algorithm="async_tradeoff", n=16, engine="sync")]
        with pytest.raises(ValueError, match="engine"):
            sweep(grid, workers=1)


class TestRunCells:
    def test_values_return_in_index_order_despite_cost_ordering(self):
        cells = [
            SweepCell(index=i, cost=cost, payload=spec)
            for i, (cost, spec) in enumerate(
                (n, RunSpec(algorithm="improved_tradeoff", n=n, engine="sync"))
                for n in (8, 64, 16)
            )
        ]
        values = run_cells(cells, run_spec_cell, workers=1)
        assert [records[0].n for records in values] == [8, 64, 16]

    def test_single_cell_never_builds_a_pool(self):
        def exploding_factory(workers):  # pragma: no cover - must not run
            raise AssertionError("pool built for a single cell")

        cells = [
            SweepCell(
                index=0,
                cost=1.0,
                payload=RunSpec(algorithm="improved_tradeoff", n=16, engine="sync"),
            )
        ]
        values = run_cells(
            cells, run_spec_cell, workers=4, executor_factory=exploding_factory
        )
        assert values[0][0].unique_leader
