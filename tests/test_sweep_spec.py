"""RunSpec: validation, normalization, pickling, and the legacy shims."""

import dataclasses
import pickle

import pytest

from repro.adversary import AdversaryPlan, TamperRule
from repro.analysis import RunSpec, canonical_record, execute_spec, run, sweep
from repro.core import ImprovedTradeoffElection
from repro.faults import CrashFault, DetectorSpec, FaultPlan


class TestValidation:
    def test_rejects_empty_clique(self):
        with pytest.raises(ValueError, match="n >= 1"):
            RunSpec(algorithm="improved_tradeoff", n=0)

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            RunSpec(algorithm="improved_tradeoff", n=8, engine="gpu")

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="port-model mode"):
            RunSpec(algorithm="improved_tradeoff", n=8, mode="approximate")

    def test_rejects_empty_seed_axis(self):
        with pytest.raises(ValueError, match="at least one seed"):
            RunSpec(algorithm="improved_tradeoff", n=8, seeds=())

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ValueError, match="batch >= 1"):
            RunSpec(algorithm="improved_tradeoff", n=8, batch=0)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="array backend"):
            RunSpec(algorithm="improved_tradeoff", n=8, backend="fortran")

    def test_rejects_untyped_fault_plan(self):
        with pytest.raises(ValueError, match="FaultPlan"):
            RunSpec(algorithm="monarchical", n=8, faults={"crashes": []})

    def test_rejects_untyped_adversary_plan(self):
        with pytest.raises(ValueError, match="AdversaryPlan"):
            RunSpec(algorithm="quorum_reelect", n=9, adversary="forge")

    def test_rejects_doubly_attached_adversary(self):
        adversary = AdversaryPlan(byzantine=(0,), tampers=(TamperRule(mode="forge"),))
        with pytest.raises(ValueError, match="one place"):
            RunSpec(
                algorithm="quorum_reelect",
                n=9,
                faults=FaultPlan(adversary=adversary),
                adversary=adversary,
            )

    def test_trace_wants_exactly_one_seed(self):
        with pytest.raises(ValueError, match="exactly one seed"):
            RunSpec(algorithm="improved_tradeoff", n=8, seeds=(0, 1), trace="t.jsonl")

    def test_trace_with_batch_wants_one_engine_run(self):
        # One batched engine run traces every lane; a second chunk would
        # overwrite the file.
        spec = RunSpec(
            algorithm="improved_tradeoff", n=8, engine="fast",
            seeds=(0, 1), batch=2, trace="t.jsonl",
        )
        assert spec.trace == "t.jsonl"
        with pytest.raises(ValueError, match="at most batch seeds"):
            RunSpec(
                algorithm="improved_tradeoff", n=8, engine="fast",
                seeds=(0, 1, 2), batch=2, trace="t.jsonl",
            )

    def test_run_wants_a_single_seed_spec(self):
        with pytest.raises(ValueError, match="exactly one seed"):
            run(RunSpec(algorithm="improved_tradeoff", n=8, seeds=(0, 1)))

    def test_sweep_rejects_non_spec_items(self):
        with pytest.raises(ValueError, match="RunSpec items"):
            sweep([{"algorithm": "improved_tradeoff", "n": 8}])


class TestNormalization:
    def test_sequences_become_int_tuples(self):
        spec = RunSpec(
            algorithm="improved_tradeoff",
            n=8,
            seeds=[0, 1],
            ids=[5, 4, 3, 2, 1, 0, 7, 6],
            awake=[0, 1],
            wake_times={"3": "0.5"},
        )
        assert spec.seeds == (0, 1)
        assert spec.ids == (5, 4, 3, 2, 1, 0, 7, 6)
        assert spec.awake == (0, 1)
        assert spec.wake_times == {3: 0.5}

    def test_algorithm_name_distinguishes_names_from_factories(self):
        assert RunSpec(algorithm="small_id", n=8).algorithm_name == "small_id"
        spec = RunSpec(algorithm=ImprovedTradeoffElection, n=8)
        assert spec.algorithm_name is None

    def test_specs_are_frozen_but_replaceable(self):
        spec = RunSpec(algorithm="improved_tradeoff", n=8)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.n = 16
        assert dataclasses.replace(spec, n=16).n == 16


class TestEngineResolution:
    def test_auto_uses_the_registry_engine(self):
        assert RunSpec(algorithm="improved_tradeoff", n=8).resolved_engine() == "sync"
        assert RunSpec(algorithm="async_tradeoff", n=8).resolved_engine() == "async"

    def test_auto_upgrades_large_fault_free_runs_to_fast(self):
        assert RunSpec(algorithm="improved_tradeoff", n=4096).resolved_engine() == "fast"

    def test_fault_plans_pin_the_object_engine(self):
        spec = RunSpec(
            algorithm="monarchical",
            n=4096,
            faults=FaultPlan(crashes=(CrashFault(node=0, at=2.0),)),
        )
        assert spec.resolved_engine() == "sync"

    def test_factories_default_to_sync(self):
        assert RunSpec(algorithm=ImprovedTradeoffElection, n=8).resolved_engine() == "sync"

    def test_explicit_engine_wins(self):
        spec = RunSpec(algorithm="improved_tradeoff", n=4096, engine="sync")
        assert spec.resolved_engine() == "sync"

    def test_effective_faults_attaches_the_adversary(self):
        adversary = AdversaryPlan(byzantine=(0,), tampers=(TamperRule(mode="forge"),))
        spec = RunSpec(
            algorithm="quorum_reelect",
            n=9,
            faults=FaultPlan(detector=DetectorSpec(lag=2.0)),
            adversary=adversary,
        )
        plan = spec.effective_faults()
        assert plan.adversary is adversary
        assert plan.detector.lag == 2.0


class TestPickleRoundTrips:
    def test_runspec_round_trips(self):
        spec = RunSpec(
            algorithm="monarchical",
            n=16,
            seeds=(0, 1, 2),
            params={"heartbeat_every": 1.0},
            faults=FaultPlan(
                crashes=(CrashFault(node=3, at=2.0),),
                detector=DetectorSpec(kind="perfect", lag=1.0),
            ),
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_adversary_specs_round_trip(self):
        spec = RunSpec(
            algorithm="quorum_reelect",
            n=9,
            adversary=AdversaryPlan(
                byzantine=(0,), tampers=(TamperRule(mode="forge"),)
            ),
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.effective_faults().adversary.byzantine == (0,)

    def test_run_records_round_trip(self):
        record = run(RunSpec(algorithm="improved_tradeoff", n=64, seeds=(3,)))
        clone = pickle.loads(pickle.dumps(record))
        assert canonical_record(clone) == canonical_record(record)

    def test_factory_valued_specs_do_not_pickle(self):
        spec = RunSpec(algorithm=lambda: ImprovedTradeoffElection(), n=8)
        with pytest.raises(Exception):
            pickle.dumps(spec)


class TestCanonicalRecord:
    def test_strips_volatile_extras_only(self):
        record = run(
            RunSpec(algorithm="improved_tradeoff", n=64, engine="fast", profile=True),
            keep_result=True,
        )
        assert "wall_time_s" in record.extra and "profile" in record.extra
        canon = canonical_record(record)
        for key in ("wall_time_s", "profile", "result", "trace"):
            assert key not in canon["extra"]
        assert canon["messages"] == record.messages
        assert canon["extra"].get("mode") == record.extra["mode"]


class TestLegacyShims:
    """The seven deprecated entrypoints still work, and say so."""

    def test_run_sync_trial_warns_and_matches_runspec(self):
        from repro.analysis import run_sync_trial

        with pytest.warns(DeprecationWarning, match="run_sync_trial"):
            legacy = run_sync_trial(64, ImprovedTradeoffElection, seed=1)
        modern = run(
            RunSpec(algorithm="improved_tradeoff", n=64, engine="sync", seeds=(1,))
        )
        assert canonical_record(legacy) == canonical_record(modern)

    def test_run_async_trial_warns_and_matches_runspec(self):
        from repro.analysis import run_async_trial
        from repro.core import AsyncTradeoffElection

        with pytest.warns(DeprecationWarning, match="run_async_trial"):
            legacy = run_async_trial(
                32, lambda: AsyncTradeoffElection(k=2), seed=1, params={"k": 2}
            )
        modern = run(
            RunSpec(
                algorithm="async_tradeoff",
                n=32,
                engine="async",
                seeds=(1,),
                params={"k": 2},
            )
        )
        assert canonical_record(legacy) == canonical_record(modern)

    def test_run_fast_trial_warns_and_matches_runspec(self):
        from repro.analysis import run_fast_trial

        with pytest.warns(DeprecationWarning, match="run_fast_trial"):
            legacy = run_fast_trial(256, "improved_tradeoff", seed=2)
        modern = run(
            RunSpec(algorithm="improved_tradeoff", n=256, engine="fast", seeds=(2,))
        )
        assert canonical_record(legacy) == canonical_record(modern)

    def test_run_fast_batch_warns_and_matches_runspec(self):
        from repro.analysis import run_fast_batch

        with pytest.warns(DeprecationWarning, match="run_fast_batch"):
            legacy = run_fast_batch(256, "improved_tradeoff", seeds=[0, 1, 2])
        modern = execute_spec(
            RunSpec(
                algorithm="improved_tradeoff",
                n=256,
                engine="fast",
                seeds=(0, 1, 2),
                batch=3,
            )
        )
        assert [canonical_record(r) for r in legacy] == [
            canonical_record(r) for r in modern
        ]

    def test_sweep_sync_warns_and_matches_sweep(self):
        from repro.analysis import sweep_sync

        with pytest.warns(DeprecationWarning, match="sweep_sync"):
            legacy = sweep_sync(
                [16, 32], lambda n: ImprovedTradeoffElection, seeds=[0, 1]
            )
        modern = sweep(
            [
                RunSpec(
                    algorithm="improved_tradeoff", n=n, engine="sync", seeds=(s,)
                )
                for n in (16, 32)
                for s in (0, 1)
            ]
        )
        assert [canonical_record(r) for r in legacy] == [
            canonical_record(r) for r in modern
        ]

    def test_sweep_fast_warns_and_keeps_its_validation(self):
        from repro.analysis import sweep_fast

        with pytest.warns(DeprecationWarning, match="sweep_fast"):
            legacy = sweep_fast([256], "improved_tradeoff", seeds=[0, 1], batch=2)
        modern = sweep(
            [
                RunSpec(
                    algorithm="improved_tradeoff",
                    n=256,
                    engine="fast",
                    seeds=(0, 1),
                    batch=2,
                )
            ]
        )
        assert [canonical_record(r) for r in legacy] == [
            canonical_record(r) for r in modern
        ]
        with pytest.warns(DeprecationWarning), pytest.raises(
            ValueError, match="drop one of the two"
        ):
            sweep_fast(
                [256], "improved_tradeoff", batch=2, ids_for_n=lambda n, rng: range(n)
            )

    def test_sweep_async_warns(self):
        from repro.analysis import sweep_async
        from repro.core import AsyncTradeoffElection

        with pytest.warns(DeprecationWarning, match="sweep_async"):
            records = sweep_async(
                [16], lambda n: lambda: AsyncTradeoffElection(k=2), seeds=[0]
            )
        assert len(records) == 1 and records[0].unique_leader
