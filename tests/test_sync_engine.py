"""The synchronous round engine (repro.sync.engine)."""

import pytest

from repro.common import ProtocolError, SimulationLimitExceeded
from repro.net.ports import CanonicalPortMap
from repro.sync.algorithm import SyncAlgorithm
from repro.sync.engine import SyncNetwork
from repro.trace import MemoryRecorder


class Silent(SyncAlgorithm):
    """Decides follower instantly."""

    def on_round(self, ctx, inbox):
        ctx.decide_follower()
        ctx.halt()


class PingOnce(SyncAlgorithm):
    """Node 0-like behaviour: send one message on port 0 in round 1."""

    def on_round(self, ctx, inbox):
        if ctx.round == 1 and ctx.my_id == 1:
            ctx.send(0, ("ping",))
        if inbox:
            self.got = inbox
            ctx.decide_leader()
        if ctx.round >= 2:
            ctx.halt()


class EchoForever(SyncAlgorithm):
    """Bounces every message back; never halts by itself."""

    def on_round(self, ctx, inbox):
        if ctx.round == 1 and ctx.my_id == 1:
            ctx.send(0, ("ball",))
        for port, payload in inbox:
            ctx.send(port, payload)


class TestDeliverySemantics:
    def test_round_r_sends_arrive_round_r_plus_1(self):
        events = []

        class Probe(SyncAlgorithm):
            def on_round(self, ctx, inbox):
                if inbox:
                    events.append(("recv", ctx.my_id, ctx.round))
                if ctx.round == 1 and ctx.my_id == 1:
                    ctx.send(0, ("x",))
                    events.append(("send", ctx.my_id, ctx.round))
                if ctx.round == 3:
                    ctx.halt()

        SyncNetwork(3, Probe, port_map=CanonicalPortMap(3)).run()
        assert ("send", 1, 1) in events
        recvs = [e for e in events if e[0] == "recv"]
        assert recvs == [("recv", 2, 2)]  # canonical: node 0 port 0 -> node 1

    def test_reply_port_reaches_sender(self):
        outcome = {}

        class Reply(SyncAlgorithm):
            def on_round(self, ctx, inbox):
                if ctx.round == 1 and ctx.my_id == 1:
                    ctx.send(0, ("ask",))
                for port, payload in inbox:
                    if payload[0] == "ask":
                        ctx.send(port, ("answer",))
                    if payload[0] == "answer":
                        outcome["who"] = ctx.my_id
                if ctx.round == 3:
                    ctx.halt()

        SyncNetwork(4, Reply, seed=7).run()
        assert outcome["who"] == 1

    def test_broadcast_reaches_everyone(self):
        seen = set()

        class Broadcast(SyncAlgorithm):
            def on_round(self, ctx, inbox):
                if ctx.round == 1 and ctx.my_id == 1:
                    ctx.broadcast(("hello",))
                if inbox:
                    seen.add(ctx.my_id)
                if ctx.round == 2:
                    ctx.halt()

        result = SyncNetwork(10, Broadcast, seed=1).run()
        assert seen == set(range(2, 11))
        assert result.messages == 9


class TestWakeup:
    def test_simultaneous_default(self):
        result = SyncNetwork(5, Silent).run()
        assert result.awake_count == 5
        assert result.rounds_executed == 1

    def test_adversarial_subset_only_roots_run(self):
        acted = []

        class Mark(SyncAlgorithm):
            def on_round(self, ctx, inbox):
                acted.append(ctx.node)
                ctx.halt()

        result = SyncNetwork(6, Mark, awake=[2, 4]).run()
        assert sorted(acted) == [2, 4]
        assert result.awake_count == 2

    def test_message_wakes_sleeper_same_round_inbox(self):
        wake_info = {}

        class Waker(SyncAlgorithm):
            def on_wake(self, ctx):
                wake_info[ctx.node] = ctx.wake_round

            def on_round(self, ctx, inbox):
                if ctx.round == 1 and ctx.wake_round == 1:
                    ctx.send(0, ("wake",))
                if inbox:
                    assert inbox[0][1] == ("wake",)
                ctx.halt() if ctx.round >= 2 else None

        net = SyncNetwork(3, Waker, awake=[0], port_map=CanonicalPortMap(3))
        net.run()
        assert wake_info[0] == 1
        assert wake_info[1] == 2  # woken by node 0's port 0 message

    def test_empty_wake_set_rejected(self):
        with pytest.raises(ValueError):
            SyncNetwork(3, Silent, awake=[])


class TestDecisions:
    def test_decision_is_irrevocable(self):
        class Flip(SyncAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.decide_leader()
                ctx.decide_follower()

        with pytest.raises(ProtocolError):
            SyncNetwork(2, Flip).run()

    def test_same_decision_twice_is_noop(self):
        class Twice(SyncAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.decide_follower(None)
                ctx.decide_follower(None)
                ctx.halt()

        result = SyncNetwork(2, Twice).run()
        assert result.decided_count == 2

    def test_leader_list_and_ids(self):
        class LeaderIfMax(SyncAlgorithm):
            def on_round(self, ctx, inbox):
                if ctx.my_id == ctx.n:
                    ctx.decide_leader()
                else:
                    ctx.decide_follower(ctx.n)
                ctx.halt()

        result = SyncNetwork(5, LeaderIfMax).run()
        assert result.unique_leader
        assert result.elected_id == 5
        assert result.explicit_agreement()

    def test_halted_node_cannot_send(self):
        class SendAfterHalt(SyncAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.halt()
                ctx.send(0, ("x",))

        with pytest.raises(ProtocolError):
            SyncNetwork(2, SendAfterHalt).run()


class TestTermination:
    def test_max_rounds_guard(self):
        with pytest.raises(SimulationLimitExceeded):
            SyncNetwork(2, EchoForever, max_rounds=20).run()

    def test_dropped_deliveries_counted(self):
        class HaltThenReceive(SyncAlgorithm):
            def on_round(self, ctx, inbox):
                if ctx.round == 1:
                    if ctx.my_id == 1:
                        ctx.send(0, ("late",))
                    else:
                        ctx.halt()
                if ctx.round >= 2:
                    ctx.halt()

        result = SyncNetwork(2, HaltThenReceive, port_map=CanonicalPortMap(2)).run()
        assert result.dropped_deliveries == 1

    def test_engine_stops_on_quiescence(self):
        result = SyncNetwork(4, Silent).run()
        assert result.rounds_executed == 1


class TestDeterminism:
    def test_same_seed_same_run(self):
        from repro.core import Kutten16Election

        r1 = SyncNetwork(128, Kutten16Election, seed=42).run()
        r2 = SyncNetwork(128, Kutten16Election, seed=42).run()
        assert r1.messages == r2.messages
        assert r1.leaders == r2.leaders

    def test_different_seed_differs(self):
        from repro.core import Kutten16Election

        r1 = SyncNetwork(256, Kutten16Election, seed=1).run()
        r2 = SyncNetwork(256, Kutten16Election, seed=2).run()
        # Message counts are random; identical runs would be a (tiny)
        # coincidence — the leaders' identities differ with near
        # certainty.
        assert (r1.messages, r1.leaders) != (r2.messages, r2.leaders)


class TestMetrics:
    def test_message_count_and_kinds(self):
        class TwoKinds(SyncAlgorithm):
            def on_round(self, ctx, inbox):
                if ctx.round == 1 and ctx.my_id == 1:
                    ctx.send(0, ("a",))
                    ctx.send(1, ("b", 1))
                ctx.halt() if ctx.round >= 2 else None

        result = SyncNetwork(3, TwoKinds, seed=0).run()
        assert result.messages == 2
        assert result.metrics.messages_by_kind == {"a": 1, "b": 1}

    def test_last_send_round(self):
        class LateSend(SyncAlgorithm):
            def on_round(self, ctx, inbox):
                if ctx.round == 3 and ctx.my_id == 1:
                    ctx.send(0, ("late",))
                if ctx.round >= 4:
                    ctx.halt()

        result = SyncNetwork(2, LateSend).run()
        assert result.last_send_round == 3

    def test_port_opens_counts_first_use_only(self):
        class Resend(SyncAlgorithm):
            def on_round(self, ctx, inbox):
                if ctx.my_id == 1 and ctx.round <= 3:
                    ctx.send(0, ("x",))
                if ctx.round >= 4:
                    ctx.halt()

        result = SyncNetwork(2, Resend).run()
        assert result.messages == 3
        assert result.metrics.port_opens == 1

    def test_recorder_hooks(self):
        rec = MemoryRecorder()

        class One(SyncAlgorithm):
            def on_round(self, ctx, inbox):
                if ctx.round == 1 and ctx.my_id == 1:
                    ctx.send(0, ("x",))
                ctx.decide_follower()
                if ctx.round >= 2:
                    ctx.halt()

        SyncNetwork(2, One, recorder=rec).run()
        assert len(rec.of_kind("send")) == 1
        assert len(rec.of_kind("wake")) == 2
        assert len(rec.of_kind("decide")) == 2


class TestValidation:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            SyncNetwork(3, Silent, ids=[1, 1, 2])

    def test_wrong_id_count_rejected(self):
        with pytest.raises(ValueError):
            SyncNetwork(3, Silent, ids=[1, 2])

    def test_n_zero_rejected(self):
        with pytest.raises(ValueError):
            SyncNetwork(0, Silent)
