"""Fast-engine telemetry: aggregate counters, lane tracing, profiling."""

import pytest

pytest.importorskip("numpy")

from repro.fastsync import FastSyncNetwork, get_fast_algorithm  # noqa: E402
from repro.telemetry import (  # noqa: E402
    AGGREGATE_NODE,
    FastTelemetry,
    PhaseProfiler,
    trace_fast_lane,
)


def _run(n=64, algorithm="improved_tradeoff", seed=0, **net_kwargs):
    telemetry = FastTelemetry()
    net = FastSyncNetwork(n, seed=seed, mode="exact", telemetry=telemetry,
                          **net_kwargs)
    result = net.run(get_fast_algorithm(algorithm)())
    return result, telemetry


class TestAggregateCounters:
    """Telemetry tallies equal the engine's own result counters, exactly."""

    def test_totals_match_result(self):
        result, telemetry = _run()
        assert sum(telemetry.sends_by_round().values()) == result.messages
        assert telemetry.sends_by_round() == result.sends_by_round
        assert telemetry.messages_by_kind() == dict(result.messages_by_kind)

    def test_decide_round_and_survivors(self):
        result, telemetry = _run()
        assert telemetry.decide_round() == result.rounds_executed
        # No crash schedule: every round reports the full clique alive.
        assert set(telemetry.survivors_by_round().values()) == {result.n}

    def test_batched_lanes_record_independent_streams(self):
        telemetry = FastTelemetry()
        net = FastSyncNetwork(48, seeds=[3, 4, 5], mode="exact",
                              telemetry=telemetry)
        results = net.run(get_fast_algorithm("las_vegas")())
        assert telemetry.lanes == [0, 1, 2]
        for lane, result in enumerate(results):
            assert sum(telemetry.sends_by_round(lane).values()) == result.messages
            assert telemetry.messages_by_kind(lane) == dict(result.messages_by_kind)

    def test_events_are_aggregate_trace_events(self):
        result, telemetry = _run()
        events = telemetry.events()
        rounds = [e for e in events if e.kind == "round"]
        assert all(e.node == AGGREGATE_NODE for e in events)
        assert sum(e.detail[0] for e in rounds) == result.messages
        decide = [e for e in events if e.kind == "decide"]
        assert len(decide) == 1
        assert decide[0].detail[0] == tuple(result.leaders)

    def test_telemetry_is_single_use(self):
        _result, telemetry = _run(n=16)
        with pytest.raises(RuntimeError, match="single-use"):
            FastSyncNetwork(16, seed=0, telemetry=telemetry)

    def test_crash_schedule_shrinks_survivors(self):
        result, telemetry = _run(n=32, algorithm="las_vegas",
                                 crashes=[(0, 2.0), (1, 2.0), (2, 2.0)])
        survivors = telemetry.survivors_by_round()
        assert min(survivors.values()) <= 29
        assert max(survivors.values()) == 32


class TestLaneTracer:
    """One lane replayed on the object engine agrees bit-exactly."""

    def test_single_run_matches(self):
        lane = trace_fast_lane(48, "improved_tradeoff", seed=11)
        assert lane.matches, lane.mismatches
        assert lane.fast_result.messages == lane.sync_result.messages
        assert any(e.kind == "send" for e in lane.events)

    def test_batched_lane_matches(self):
        lane = trace_fast_lane(48, "improved_tradeoff", seeds=[5, 6, 7], lane=1)
        assert lane.matches, lane.mismatches
        assert lane.lane == 1

    def test_lane_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            trace_fast_lane(16, "las_vegas", seeds=[0, 1], lane=5)

    def test_single_run_rejects_nonzero_lane(self):
        with pytest.raises(ValueError, match="exactly one lane"):
            trace_fast_lane(16, "las_vegas", seed=0, lane=1)

    def test_recorder_fans_in(self):
        import io

        from repro.telemetry import JsonlRecorder, load_trace

        sink = io.StringIO()
        rec = JsonlRecorder(sink)
        lane = trace_fast_lane(32, "las_vegas", seed=2, recorder=rec)
        rec.close()
        sink.seek(0)
        trace = load_trace(sink)
        assert trace.events == lane.events


class TestProfiler:
    def test_kernel_phases_are_timed(self):
        profiler = PhaseProfiler()
        net = FastSyncNetwork(256, seed=0, mode="exact", profiler=profiler)
        net.run(get_fast_algorithm("improved_tradeoff")())
        phases = profiler.as_dict()
        for phase in ("sampling", "scatter", "compaction"):
            assert phase in phases, phases
            assert phases[phase]["calls"] >= 1
            assert phases[phase]["total_s"] >= 0.0

    def test_disabled_profiling_uses_null_context(self):
        from repro.telemetry import NULL_PROFILE

        net = FastSyncNetwork(16, seed=0)
        assert net.profile("sampling") is NULL_PROFILE

    def test_run_fast_trial_profile_flag(self):
        from repro.analysis import run_fast_trial

        record = run_fast_trial(64, "improved_tradeoff", seed=0, profile=True)
        profile = record.extra["profile"]
        assert "sampling" in profile
        assert profile["sampling"]["calls"] >= 1
