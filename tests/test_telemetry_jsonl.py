"""JSONL trace export: schema, round-trip fidelity, golden file."""

import io
import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import Decision
from repro.telemetry import (
    SCHEMA,
    JsonlRecorder,
    RunContext,
    TraceSchemaError,
    dump_events,
    load_trace,
)
from repro.trace.events import EVENT_KINDS, TraceEvent

GOLDEN = os.path.join(os.path.dirname(__file__), "data",
                      "golden_trace_improved_tradeoff_n16.jsonl")

# Payload values the recorder hooks actually see: message dataclass
# fields flattened into tuples, Decision enums, dicts, plain scalars.
_scalars = (
    st.none()
    | st.booleans()
    | st.integers(-(10**9), 10**9)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=8)
    | st.sampled_from(list(Decision))
)
_values = st.recursive(
    _scalars,
    lambda inner: (
        st.lists(inner, max_size=3)
        | st.lists(inner, max_size=3).map(tuple)
        | st.dictionaries(st.text(max_size=5), inner, max_size=3)
    ),
    max_leaves=8,
)
_events = st.lists(
    st.builds(
        TraceEvent,
        kind=st.sampled_from(EVENT_KINDS + ("round",)),
        when=st.floats(min_value=0, max_value=1e9, allow_nan=False),
        node=st.integers(-1, 10**6),
        detail=st.lists(_values, max_size=4).map(tuple),
    ),
    max_size=20,
)


class TestRoundTrip:
    @given(events=_events)
    @settings(max_examples=60, deadline=None)
    def test_dump_load_roundtrip_is_exact(self, events):
        sink = io.StringIO()
        written = dump_events(sink, events, context={"n": 4, "seed": 0})
        assert written == len(events)
        sink.seek(0)
        trace = load_trace(sink)
        assert trace.schema == SCHEMA
        assert trace.context == {"n": 4, "seed": 0}
        assert trace.events == events

    def test_run_context_header_roundtrip(self):
        sink = io.StringIO()
        ctx = RunContext(algorithm="improved_tradeoff", n=8, seed=3,
                         engine="sync", params={"ell": 3})
        dump_events(sink, [], context=ctx)
        sink.seek(0)
        trace = load_trace(sink)
        assert trace.run_context.algorithm == "improved_tradeoff"
        assert trace.run_context.params == {"ell": 3}
        # Fields left unset are dropped from the header entirely.
        assert "scenario" not in trace.context

    def test_decision_and_tuple_payloads_roundtrip(self):
        events = [
            TraceEvent("decide", 4.0, 1, (Decision.LEADER, 780)),
            TraceEvent("send", 1.0, 0, (2, 5, 1, ("compete", 780, 3))),
        ]
        sink = io.StringIO()
        dump_events(sink, events)
        sink.seek(0)
        loaded = load_trace(sink).events
        assert loaded == events
        assert loaded[0].detail[0] is Decision.LEADER
        assert isinstance(loaded[1].detail[3], tuple)

    def test_unknown_objects_degrade_to_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        sink = io.StringIO()
        dump_events(sink, [TraceEvent("send", 1.0, 0, (Opaque(),))])
        sink.seek(0)
        assert load_trace(sink).events[0].detail == ("<opaque>",)


class TestRecorder:
    def test_hooks_write_events(self):
        sink = io.StringIO()
        with JsonlRecorder(sink) as rec:
            rec.on_wake(0, 3)
            rec.on_send(1, 0, 2, 5, 1, ("compete", 7))
            rec.on_decide(2, 5, Decision.LEADER, 7)
        sink.seek(0)
        trace = load_trace(sink)
        assert [e.kind for e in trace.events] == ["wake", "send", "decide"]
        assert rec.events_written == 3

    def test_kinds_filter(self):
        sink = io.StringIO()
        rec = JsonlRecorder(sink, kinds=["decide"])
        rec.on_send(1, 0, 2, 5, 1, ("compete", 7))
        rec.on_decide(2, 5, Decision.LEADER, 7)
        rec.close()
        sink.seek(0)
        assert [e.kind for e in load_trace(sink).events] == ["decide"]

    def test_annotations_attach_and_clear(self):
        sink = io.StringIO()
        rec = JsonlRecorder(sink)
        rec.annotate(act=2, epoch=1)
        rec.on_wake(0, 0)
        rec.annotate(act=None)
        rec.on_wake(0, 1)
        rec.close()
        sink.seek(0)
        trace = load_trace(sink)
        assert trace.annotations == [{"act": 2, "epoch": 1}, {"epoch": 1}]

    def test_writes_to_path(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlRecorder(path, context={"n": 2}) as rec:
            rec.on_wake(0, 0)
        trace = load_trace(path)
        assert trace.context == {"n": 2}
        assert len(trace.events) == 1


class TestSchemaErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text("")
        with pytest.raises(TraceSchemaError, match="empty"):
            load_trace(str(path))

    def test_missing_header(self):
        with pytest.raises(TraceSchemaError, match="schema"):
            load_trace(io.StringIO('{"k": "send"}\n'))

    def test_foreign_schema(self):
        with pytest.raises(TraceSchemaError, match="unknown schema"):
            load_trace(io.StringIO('{"schema": "other/1"}\n'))

    def test_newer_version_rejected(self):
        with pytest.raises(TraceSchemaError, match="newer"):
            load_trace(io.StringIO('{"schema": "repro.trace/999"}\n'))

    def test_malformed_event_line(self):
        data = json.dumps({"schema": SCHEMA}) + '\n{"k": "send"}\n'
        with pytest.raises(TraceSchemaError, match="malformed"):
            load_trace(io.StringIO(data))

    def test_non_json_event_line(self):
        data = json.dumps({"schema": SCHEMA}) + "\nnot json\n"
        with pytest.raises(TraceSchemaError, match="not JSON"):
            load_trace(io.StringIO(data))


class TestGoldenTrace:
    """A recorded sync run must reproduce the committed golden file."""

    def test_improved_tradeoff_n16_matches_golden(self, tmp_path):
        from repro.__main__ import main

        out = str(tmp_path / "fresh.jsonl")
        assert main(["trace", "record", "improved_tradeoff", "--n", "16",
                     "--seed", "0", "--engine", "sync", "-o", out]) == 0
        with open(out) as fh:
            fresh = fh.read()
        with open(GOLDEN) as fh:
            golden = fh.read()
        assert fresh == golden

    def test_golden_is_loadable_and_sane(self):
        trace = load_trace(GOLDEN)
        assert trace.schema == SCHEMA
        assert trace.run_context.algorithm == "improved_tradeoff"
        assert trace.run_context.n == 16
        decides = trace.of_kind("decide")
        assert len(decides) == 16
        assert sum(d.detail[0] is Decision.LEADER for d in decides) == 1
