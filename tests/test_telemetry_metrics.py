"""Metrics registry: primitives and RunRecord consistency across engines."""

import pytest

from repro.analysis import run_async_trial, run_sync_trial
from repro.core import get_algorithm
from repro.telemetry import Counter, Histogram, MetricsRegistry, run_metrics


class TestPrimitives:
    def test_counter_is_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_histogram_summary(self):
        h = Histogram()
        h.observe_many([1, 3, 8])
        assert h.count == 3
        assert h.min == 1 and h.max == 8
        assert h.mean == 4.0
        assert h.as_dict()["total"] == 12.0

    def test_registry_creates_on_first_use(self):
        reg = MetricsRegistry()
        reg.counter("x").inc(2)
        reg.gauge("y").set(1.5)
        reg.histogram("z").observe(3)
        d = reg.as_dict()
        assert d["counters"] == {"x": 2}
        assert d["gauges"] == {"y": 1.5}
        assert d["histograms"]["z"]["count"] == 1


class TestRunRecordConsistency:
    """The ``messages`` counter equals ``RunRecord.messages``, per engine."""

    def test_sync_trial(self):
        spec = get_algorithm("improved_tradeoff")
        record = run_sync_trial(32, spec.make(), seed=0)
        metrics = record.extra["metrics"]
        assert metrics["counters"]["messages"] == record.messages
        assert metrics["gauges"]["leaders"] == 1
        assert metrics["gauges"]["decided"] == 32

    def test_async_trial(self):
        spec = get_algorithm("async_tradeoff")
        record = run_async_trial(32, spec.make(k=2), seed=0)
        metrics = record.extra["metrics"]
        assert metrics["counters"]["messages"] == record.messages
        assert metrics["gauges"]["time_span"] == record.time

    def test_fast_trial(self):
        pytest.importorskip("numpy")
        from repro.analysis import run_fast_trial

        record = run_fast_trial(64, "improved_tradeoff", seed=0)
        metrics = record.extra["metrics"]
        assert metrics["counters"]["messages"] == record.messages
        assert metrics["gauges"]["rounds_to_decide"] == record.extra["rounds_executed"]

    def test_per_kind_counters_sum_to_messages(self):
        spec = get_algorithm("improved_tradeoff")
        record = run_sync_trial(32, spec.make(), seed=1)
        counters = record.extra["metrics"]["counters"]
        by_kind = {k: v for k, v in counters.items() if k.startswith("messages[")}
        assert by_kind
        assert sum(by_kind.values()) == counters["messages"]

    def test_messages_per_round_histogram(self):
        spec = get_algorithm("improved_tradeoff")
        record = run_sync_trial(32, spec.make(), seed=0)
        hist = record.extra["metrics"]["histograms"]["messages_per_round"]
        assert hist["total"] == record.messages


class TestFailoverLatencyGauge:
    def test_failover_trial_reports_latency(self):
        from repro.faults import CrashFault, DetectorSpec, FaultPlan
        from repro.faults import run_failover_trial

        spec = get_algorithm("reelect")
        plan = FaultPlan(
            crashes=(CrashFault(node=7, at=6.0),),
            detector=DetectorSpec(kind="perfect", lag=1.0),
        )
        report = run_failover_trial(
            "sync", 8, spec.make(), plan, seed=0, max_rounds=400,
        )
        gauges = report.record.extra["metrics"]["gauges"]
        if report.reelection_time is not None:
            assert gauges["failover_latency"] == report.reelection_time
        # Crash accounting flows through the same registry.
        assert report.record.extra["metrics"]["counters"]["crashes"] == report.crashes

    def test_run_metrics_failover_kwarg(self):
        spec = get_algorithm("improved_tradeoff")
        record = run_sync_trial(16, spec.make(), seed=0, keep_result=True)
        reg = run_metrics(record.extra["result"], failover_latency=3.5)
        assert reg.as_dict()["gauges"]["failover_latency"] == 3.5
