"""Definition 3.5 executable search (repro.lowerbound.terminating)."""

import pytest

from repro.core import AfekGafniElection, ImprovedTradeoffElection
from repro.lowerbound.terminating import (
    forms_terminating_components,
    isolated_execution,
)
from repro.sync.algorithm import SyncAlgorithm


class SilentFollower(SyncAlgorithm):
    """Decides instantly; trivially forms terminating components.

    (Not a correct election — exactly what Lemma 3.6 exploits: if too
    many sets terminate on their own, gluing them yields two leaders.)
    """

    def on_round(self, ctx, inbox):
        ctx.decide_follower()
        ctx.halt()


class PairPing(SyncAlgorithm):
    """Sends one ping over port 0, halts after one reply round."""

    def on_round(self, ctx, inbox):
        if ctx.round == 1:
            ctx.send(0, ("ping",))
        if ctx.round == 2:
            ctx.halt()


class TriplePing(SyncAlgorithm):
    """Opens three ports in round 1 — escapes any set of size <= 3."""

    def on_round(self, ctx, inbox):
        if ctx.round == 1:
            for port in range(3):
                ctx.send(port, ("ping",))
        ctx.halt()


class TestIsolatedExecution:
    def test_silent_terminates(self):
        outcome = isolated_execution(SilentFollower, 8, [1, 2])
        assert outcome.terminated and not outcome.escaped
        assert outcome.messages == 0

    def test_pair_ping_terminates_in_pairs(self):
        outcome = isolated_execution(PairPing, 8, [5, 9])
        assert outcome.terminated and not outcome.escaped
        assert outcome.messages == 2

    def test_single_node_ping_escapes(self):
        outcome = isolated_execution(PairPing, 8, [5])
        assert outcome.escaped

    def test_triple_ping_escapes_small_sets(self):
        outcome = isolated_execution(TriplePing, 8, [1, 2, 3])
        assert outcome.escaped

    def test_triple_ping_contained_by_four(self):
        outcome = isolated_execution(TriplePing, 8, [1, 2, 3, 4])
        assert outcome.terminated and not outcome.escaped

    def test_set_size_validation(self):
        with pytest.raises(ValueError):
            isolated_execution(SilentFollower, 8, [1, 2, 3, 4, 5])

    def test_nontermination_detected(self):
        class Chatter(SyncAlgorithm):
            def on_round(self, ctx, inbox):
                if ctx.round == 1 and ctx.node == 0:
                    ctx.send(0, ("ball",))
                for port, payload in inbox:
                    ctx.send(port, payload)

        outcome = isolated_execution(Chatter, 8, [1, 2], max_rounds=16)
        assert not outcome.terminated and not outcome.escaped
        assert outcome.rounds == 16


class TestFormsTerminatingComponents:
    def test_silent_protocol_terminating(self):
        ok, explored = forms_terminating_components(SilentFollower, 8, [1, 2])
        assert ok
        assert explored >= 1

    def test_pair_ping_terminating_all_routings(self):
        ok, explored = forms_terminating_components(PairPing, 8, [3, 4])
        assert ok
        # both nodes open port 0; the only in-set routing target is the
        # other node, so the tree is small but branched at least once.
        assert explored >= 1

    def test_branching_explored(self):
        ok, explored = forms_terminating_components(PairPing, 8, [3, 4, 5])
        assert ok
        assert explored >= 3  # several in-set routings for the pings

    def test_improved_tradeoff_sets_always_expand(self):
        """Corollary 3.7's situation for our algorithm: no small ID set
        can terminate on its own — the final broadcast escapes."""
        for size in (2, 3):
            ok, _ = forms_terminating_components(
                lambda: ImprovedTradeoffElection(ell=3), 8, list(range(1, size + 1))
            )
            assert not ok

    def test_afek_gafni_sets_always_expand(self):
        ok, _ = forms_terminating_components(
            lambda: AfekGafniElection(ell=2), 8, [1, 2, 3, 4]
        )
        assert not ok

    def test_exploration_budget_enforced(self):
        class WideFanout(SyncAlgorithm):
            def on_round(self, ctx, inbox):
                if ctx.round <= 3:
                    ctx.send_many(range(3), ("x", ctx.round))
                else:
                    ctx.halt()

        with pytest.raises(RuntimeError):
            forms_terminating_components(
                WideFanout, 16, [1, 2, 3, 4, 5, 6, 7], max_explorations=10
            )
