"""Differential twin harness: every algorithm × every fault feature.

The proof layer of the vectorized fault runtime
(:class:`repro.fastsync.faults.FastFaultRuntime`): each case builds one
exact-mode :class:`~repro.sweep.RunSpec` and hands it to
:func:`tests.helpers.assert_twin_run`, which executes the spec on the
fast engine and on the object engine over the *same* port matrix and
asserts bit-identical decisions, per-node outputs, message/round
counters and the full fault-metrics ledger — crashes, partitions (with
auto-heal), stochastic and budgeted link faults, kill policies and all
four Byzantine tamper modes.  A hypothesis property then searches the
plan space at random (with shrinking) for divergences the fixed matrix
misses.
"""

import pytest
from hypothesis import given, settings, strategies as st

pytest.importorskip("numpy")

from repro.adversary.plan import AdversaryPlan, TamperRule  # noqa: E402
from repro.faults import (  # noqa: E402
    CrashFault,
    FaultPlan,
    LeaderKillPolicy,
    LinkFaults,
    PartitionMask,
)
from repro.sweep import RunSpec  # noqa: E402

from tests.helpers import assert_twin_run, make_ids  # noqa: E402

#: Every fault-capable vectorized port, with twin-safe parameters.
ALGOS = {
    "improved_tradeoff": {"ell": 5},
    "afek_gafni": {"ell": 4},
    "las_vegas": {},
    "small_id": {"d": 2},
    "kutten16": {},
    "adversarial_2round": {},
}

#: Announcement vocabulary across the six ports (kill-policy triggers).
KILL_KINDS = ("final", "elected", "announce", "ballot", "rank")


def fault_features(n):
    """The per-feature plan matrix for an ``n``-clique."""
    half = tuple(range(n // 2))
    rest = tuple(range(n // 2, n))
    return {
        "crashes": FaultPlan(
            crashes=(CrashFault(node=n - 1, at=1), CrashFault(node=0, at=3))
        ),
        "partition_heal": FaultPlan(
            partitions=(PartitionMask(components=(half, rest), start=2, end=4),)
        ),
        "partition_forever": FaultPlan(
            partitions=(PartitionMask(components=(half, rest), start=1),)
        ),
        "isolate_node": FaultPlan(
            partitions=(
                PartitionMask(components=(tuple(range(1, n)),), start=2, end=5),
            )
        ),
        "drops": FaultPlan(links=(LinkFaults(drop_prob=0.3),)),
        "drop_budget": FaultPlan(links=(LinkFaults(drop_prob=1.0, max_drops=3),)),
        "duplicates": FaultPlan(links=(LinkFaults(duplicate_prob=0.4),)),
        "kill_policy": FaultPlan(
            policies=(
                LeaderKillPolicy(kinds=KILL_KINDS, delay=1.0, max_kills=1),
            ),
            protect=(0,),
        ),
        "tamper_corrupt": FaultPlan(
            adversary=AdversaryPlan(
                byzantine=(1,),
                tampers=(TamperRule(mode="corrupt", magnitude=3, prob=0.7),),
            )
        ),
        "tamper_forge": FaultPlan(
            adversary=AdversaryPlan(
                byzantine=(1,), tampers=(TamperRule(mode="forge", prob=0.7),)
            )
        ),
        "tamper_replay": FaultPlan(
            adversary=AdversaryPlan(
                byzantine=(1,), tampers=(TamperRule(mode="replay", prob=0.7),)
            )
        ),
        "tamper_equivocate": FaultPlan(
            adversary=AdversaryPlan(
                byzantine=(1,),
                tampers=(TamperRule(mode="equivocate", magnitude=2, prob=0.7),),
            )
        ),
        "mixed": FaultPlan(
            crashes=(CrashFault(node=n - 1, at=2),),
            links=(LinkFaults(drop_prob=0.2, kinds=("response",)),),
            partitions=(PartitionMask(components=(half, rest), start=3, end=5),),
        ),
    }


FEATURES = sorted(fault_features(8))


@pytest.mark.parametrize("algorithm", sorted(ALGOS))
@pytest.mark.parametrize("feature", FEATURES)
def test_twin_bit_identity(algorithm, feature):
    for n, seed in [(5, 1), (8, 2), (16, 3)]:
        plan = fault_features(n)[feature]
        spec = RunSpec(
            algorithm=algorithm,
            n=n,
            seeds=(seed,),
            params=ALGOS[algorithm],
            faults=plan,
            max_rounds=150,
        )
        assert_twin_run(spec)


@pytest.mark.parametrize("algorithm", sorted(ALGOS))
def test_twin_with_scrambled_ids_and_protection(algorithm):
    n = 12
    plan = FaultPlan(
        crashes=(CrashFault(node=7, at=2),),
        links=(LinkFaults(drop_prob=0.25, duplicate_prob=0.25),),
        protect=(3,),
    )
    params = dict(ALGOS[algorithm])
    if algorithm == "small_id":
        params["g"] = 8  # make_ids draws from [1, 8n]: Algorithm 1's universe
    spec = RunSpec(
        algorithm=algorithm,
        n=n,
        seeds=(4,),
        params=params,
        ids=make_ids(n, seed=5),
        faults=plan,
        max_rounds=150,
    )
    assert_twin_run(spec)


def test_twin_adversarial_roots_under_faults():
    # The wake-up-aware port honors roots= under a plan (roots map to
    # the object engine's awake= schedule inside assert_twin_run).
    for roots in [(0,), (2, 5), tuple(range(6))]:
        spec = RunSpec(
            algorithm="adversarial_2round",
            n=9,
            seeds=(6,),
            roots=roots,
            faults=FaultPlan(links=(LinkFaults(drop_prob=0.4),)),
            max_rounds=100,
        )
        assert_twin_run(spec)


def test_twin_stalls_match():
    # Cutting every announcement can stall afek_gafni's followers; the
    # helper accepts the case only when BOTH engines hit the limit.
    spec = RunSpec(
        algorithm="afek_gafni",
        n=4,
        seeds=(0,),
        params={"ell": 4},
        faults=FaultPlan(links=(LinkFaults(drop_prob=1.0, kinds=("elected",)),)),
        max_rounds=40,
    )
    fast, obj = assert_twin_run(spec)
    assert fast is None and obj is None  # stalled on both engines


@st.composite
def random_plans(draw):
    """A random FaultPlan over ``n`` nodes: the shrink-friendly generator."""
    n = draw(st.integers(min_value=4, max_value=12))
    crashes = []
    for node in draw(
        st.lists(st.integers(1, n - 1), max_size=2, unique=True)
    ):  # node 0 is protected below, so it never crashes
        crashes.append(CrashFault(node=node, at=draw(st.integers(1, 6))))
    links = []
    if draw(st.booleans()):
        drop = draw(st.sampled_from([0.0, 0.3, 1.0]))
        dup = draw(st.sampled_from([0.4] if drop == 0.0 else [0.0, 0.4]))
        max_drops = None
        if drop > 0.0:
            max_drops = draw(st.one_of(st.none(), st.integers(1, 4)))
        links.append(
            LinkFaults(
                drop_prob=drop,
                duplicate_prob=dup,
                dst=draw(st.one_of(st.none(), st.integers(0, n - 1))),
                max_drops=max_drops,
            )
        )
    partitions = []
    if draw(st.booleans()):
        cut = draw(st.integers(1, n - 1))
        start = draw(st.integers(1, 5))
        end = draw(st.one_of(st.none(), st.integers(start + 1, start + 4)))
        partitions.append(
            PartitionMask(
                components=(tuple(range(cut)), tuple(range(cut, n))),
                start=start,
                end=end,
            )
        )
    policies = []
    if draw(st.booleans()):
        policies.append(
            LeaderKillPolicy(kinds=KILL_KINDS, delay=1.0, max_kills=1)
        )
    adversary = None
    if draw(st.booleans()):
        adversary = AdversaryPlan(
            byzantine=(draw(st.integers(0, n - 1)),),
            tampers=(
                TamperRule(
                    mode=draw(
                        st.sampled_from(
                            ["corrupt", "forge", "replay", "equivocate"]
                        )
                    ),
                    magnitude=draw(st.integers(1, 5)),
                    prob=draw(st.sampled_from([0.5, 1.0])),
                ),
            ),
        )
    plan = FaultPlan(
        crashes=tuple(crashes),
        links=tuple(links),
        partitions=tuple(partitions),
        policies=tuple(policies),
        protect=(0,),  # keep one node alive so crash lists stay legal
        adversary=adversary,
    )
    return n, plan


@pytest.mark.parametrize("algorithm", sorted(ALGOS))
@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_random_fault_plans_stay_bit_identical(algorithm, data):
    n, plan = data.draw(random_plans(), label="plan")
    seed = data.draw(st.integers(min_value=0, max_value=2**16), label="seed")
    spec = RunSpec(
        algorithm=algorithm,
        n=n,
        seeds=(seed,),
        params=ALGOS[algorithm],
        faults=plan,
        max_rounds=120,
    )
    assert_twin_run(spec)
