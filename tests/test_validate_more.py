"""Additional validation-helper coverage (repro.analysis.validate)."""

from repro.analysis import election_valid


class FakeResult:
    def __init__(self, leaders, decided, awake, n=8):
        self.leaders = leaders
        self.decided_count = decided
        self.awake_count = awake
        self.n = n
        self.leader_ids = leaders


class TestElectionValid:
    def test_valid(self):
        assert election_valid(FakeResult([3], decided=8, awake=8))

    def test_zero_leaders_invalid(self):
        assert not election_valid(FakeResult([], decided=8, awake=8))

    def test_two_leaders_invalid(self):
        assert not election_valid(FakeResult([1, 2], decided=8, awake=8))

    def test_undecided_awake_nodes_invalid_by_default(self):
        assert not election_valid(FakeResult([3], decided=5, awake=8))

    def test_undecided_ok_when_relaxed(self):
        assert election_valid(
            FakeResult([3], decided=5, awake=8), require_all_decided=False
        )
