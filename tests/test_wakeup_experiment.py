"""The Section 4.2 wake-up experiment (repro.lowerbound.wakeup_experiment)."""

import math

import pytest

from repro.lowerbound import (
    TwoRoundWakeupSpray,
    run_wakeup_trial,
    wakeup_success_rate,
)
from repro.lowerbound.wakeup_experiment import spray_message_bound


class TestProtocol:
    def test_rejects_bad_exponents(self):
        with pytest.raises(ValueError):
            TwoRoundWakeupSpray(-0.1, 0.5)
        with pytest.raises(ValueError):
            TwoRoundWakeupSpray(0.5, 1.5)
        with pytest.raises(ValueError):
            TwoRoundWakeupSpray(0.5, 0.5, boost=0)

    def test_fanouts(self):
        p = TwoRoundWakeupSpray(0.5, 1.0, boost=2.0)
        assert p.root_fanout(100) == 10
        assert p.child_fanout(100) == 99  # capped at n-1

    def test_trial_counts_messages_and_awake(self):
        out = run_wakeup_trial(64, 0.5, 0.5, boost=1.0, root_count=1, seed=0)
        assert out.n == 64
        assert out.root_count == 1
        assert 1 <= out.awake <= 64
        assert out.messages >= 8  # the root's ceil(sqrt(64)) sprays

    def test_full_budget_always_succeeds(self):
        # beta = 1: children broadcast; any root set covers everyone.
        out = run_wakeup_trial(128, 0.5, 1.0, root_count=1, seed=1)
        assert out.success

    def test_explicit_roots_accepted(self):
        out = run_wakeup_trial(32, 0.5, 1.0, roots=[3, 7], seed=0)
        assert out.success
        assert out.root_count == 2


@pytest.mark.slow
class TestTheorem42Shape:
    N = 512

    def test_underprovisioned_budgets_fail(self):
        """alpha + beta < 1: even with the log boost, a single root
        cannot cover the clique in two rounds."""
        rate, _ = wakeup_success_rate(
            self.N, 0.5, 0.3, boost=2 * math.log(self.N), root_count=1, trials=5
        )
        assert rate <= 0.2

    def test_calibrated_budgets_succeed(self):
        """alpha + beta = 1 with the coupon-collector boost succeeds."""
        for alpha in (0.3, 0.5, 0.7):
            rate, _ = wakeup_success_rate(
                self.N,
                alpha,
                1 - alpha,
                boost=2 * math.log(self.N),
                root_count=1,
                trials=5,
            )
            assert rate >= 0.8, alpha

    def test_sqrt_n_roots_cost_at_least_n_to_3_2(self):
        """The theorem's core: any successful calibration pays
        ~n^(3/2) (or more) against a Θ(√n)-size root set."""
        n = self.N
        boost = 2 * math.log(n)
        for alpha in (0.3, 0.5, 0.7):
            _, msgs = wakeup_success_rate(
                n, alpha, 1 - alpha, boost=boost, root_count=int(n**0.5), trials=3
            )
            assert msgs >= n**1.5, (alpha, msgs)

    def test_closed_form_matches_measured_order(self):
        n = self.N
        boost = 2 * math.log(n)
        alpha = 0.5
        predicted = spray_message_bound(n, alpha, 1 - alpha, int(n**0.5), boost)
        _, measured = wakeup_success_rate(
            n, alpha, 1 - alpha, boost=boost, root_count=int(n**0.5), trials=3
        )
        assert 0.3 * predicted <= measured <= 1.2 * predicted

    def test_thm41_style_thinning_is_what_saves_messages(self):
        """Context check: the spray protocol's √n-roots cost exceeds the
        Theorem 4.1 algorithm's cost, because Thm 4.1 thins the children
        via candidacy instead of letting all of them spray."""
        from repro.core import AdversarialTwoRoundElection
        from tests.helpers import run_sync

        n = self.N
        boost = 2 * math.log(n)
        _, spray_msgs = wakeup_success_rate(
            n, 0.5, 0.5, boost=boost, root_count=int(n**0.5), trials=3
        )
        algo_msgs = run_sync(
            n,
            lambda: AdversarialTwoRoundElection(epsilon=0.05),
            awake=list(range(int(n**0.5))),
            seed=0,
        ).messages
        assert algo_msgs < spray_msgs
