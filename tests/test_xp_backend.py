"""The fastsync array-namespace seam (``repro.fastsync.xp``)."""

import importlib
import importlib.util

import pytest

np = pytest.importorskip("numpy")

# ``repro.fastsync`` re-exports the *proxy* under the name ``xp``, which
# shadows the submodule as a package attribute — import the module itself.
xp_module = importlib.import_module("repro.fastsync.xp")
from repro.fastsync.xp import (
    BACKEND_ENV_VAR,
    SUPPORTED_BACKENDS,
    BackendUnavailable,
    available_backends,
    backend_name,
    set_backend,
    xp,
)


@pytest.fixture(autouse=True)
def clean_backend_state(monkeypatch):
    """Each test starts (and leaves the process) unresolved + env-free."""
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    xp_module._reset_for_tests()
    yield
    xp_module._reset_for_tests()


class TestResolution:
    def test_default_backend_is_numpy(self):
        assert backend_name() == "numpy"

    def test_proxy_hands_back_real_numpy_attributes(self):
        assert xp.arange is np.arange
        assert xp.int64 is np.int64

    def test_attribute_access_is_cached_on_the_proxy(self):
        # First access resolves + caches; later lookups never re-enter
        # __getattr__ (kernel hot loops see a plain instance attribute).
        assert "cumsum" not in vars(xp)
        first = xp.cumsum
        assert vars(xp)["cumsum"] is first

    def test_kernels_import_through_the_seam(self):
        from repro.fastsync import engine

        assert engine.np is xp

    def test_env_var_selects_the_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert backend_name() == "numpy"

    def test_env_var_naming_a_missing_backend_raises_guidance(self, monkeypatch):
        if importlib.util.find_spec("cupy") is not None:
            pytest.skip("cupy installed; the missing-backend path is moot")
        monkeypatch.setenv(BACKEND_ENV_VAR, "cupy")
        with pytest.raises(BackendUnavailable, match="cupy"):
            backend_name()


class TestSetBackend:
    def test_unknown_backend_is_rejected(self):
        with pytest.raises(BackendUnavailable, match="supported"):
            set_backend("fortran")

    def test_set_before_resolution_wins(self):
        set_backend("numpy")
        assert backend_name() == "numpy"

    def test_idempotent_for_the_active_backend(self):
        assert backend_name() == "numpy"
        set_backend("numpy")  # no error

    def test_reselection_after_resolution_raises(self):
        assert backend_name() == "numpy"
        with pytest.raises(RuntimeError, match="already resolved"):
            set_backend("cupy")

    def test_missing_optional_backend_error_names_the_install(self):
        for name, hint in (("cupy", "cupy-cuda"), ("torch", "torch")):
            if importlib.util.find_spec(name) is not None:
                continue
            xp_module._reset_for_tests()
            set_backend(name)
            with pytest.raises(BackendUnavailable, match=hint):
                backend_name()


class TestAvailableBackends:
    def test_numpy_is_probed_available(self):
        assert "numpy" in available_backends()

    def test_probe_matches_find_spec(self):
        expected = [
            name
            for name in SUPPORTED_BACKENDS
            if importlib.util.find_spec(name) is not None
        ]
        assert available_backends() == expected

    def test_runspec_backend_names_are_the_seam_names(self):
        from repro.sweep.spec import _BACKENDS

        assert _BACKENDS == SUPPORTED_BACKENDS


class TestBitIdentityThroughSeam:
    def test_fast_engine_results_match_known_run(self):
        # The seam must be invisible: a fast run through xp produces the
        # same record the hard-imported numpy engine always produced.
        from repro.analysis import RunSpec, run

        record = run(RunSpec(algorithm="improved_tradeoff", n=512, engine="fast"))
        assert record.unique_leader
        assert record.decided == 512
